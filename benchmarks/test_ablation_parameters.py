"""Ablation benches: the Table 2 parameters the paper fixes but never
sweeps — PongSize and IntroProb.

DESIGN.md §5 calls these out as design-choice ablations: PongSize
drives how far one query can chain beyond the link cache; IntroProb is
the only path by which newcomers enter existing caches.
"""

from __future__ import annotations

from benchmarks.conftest import run_and_report
from repro.experiments.ablations import (
    run_intro_prob_ablation,
    run_pong_size_ablation,
)


def test_pong_size_sharing_matters(benchmark, bench_profile):
    results = run_and_report(benchmark, run_pong_size_ablation, bench_profile)
    rows = {size: row for size, *row in results[0].rows}
    # No sharing (PongSize 0) leaves far more queries unsatisfied than
    # the spec's PongSize 5.
    assert rows[0][1] > rows[5][1] + 0.1
    # Beyond a handful the returns diminish: 10 is within a few points
    # of 5 on satisfaction.
    assert abs(rows[10][1] - rows[5][1]) < 0.12


def test_intro_prob_populates_caches(benchmark, bench_profile):
    results = run_and_report(benchmark, run_intro_prob_ablation, bench_profile)
    rows = {p: row for p, *row in results[0].rows}
    # More introduction means fuller caches under churn...
    assert rows[0.5][2] >= rows[0.0][2]
    # ...and the network functions across the whole sweep.
    assert all(row[1] < 0.6 for row in rows.values())
