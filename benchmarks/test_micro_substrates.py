"""Microbenchmarks for the hot substrate paths.

Unlike the figure benches (one expensive round each), these measure the
per-operation cost of the data structures the simulator leans on, with
proper statistical repetition — the part of pytest-benchmark that genuinely
needs many rounds.
"""

from __future__ import annotations

import random

from repro.core.entry import CacheEntry
from repro.core.link_cache import LinkCache
from repro.core.policies import get_ordering_policy, get_replacement_policy
from repro.network.unionfind import UnionFind
from repro.sim.engine import Simulator
from repro.sim.windows import BucketedRateLimiter


def test_engine_event_throughput(benchmark):
    """Schedule + fire 10k no-op events."""

    def run():
        sim = Simulator()
        for i in range(10_000):
            sim.schedule(float(i % 100), lambda: None)
        sim.run_until(101.0)
        return sim.events_executed

    executed = benchmark(run)
    assert executed == 10_000


def test_link_cache_insert_churn(benchmark):
    """Policy-evicted inserts into a full cache."""
    policy = get_replacement_policy("LFS")
    rng = random.Random(0)
    entries = [
        CacheEntry(address=i, num_files=rng.randrange(1000))
        for i in range(1, 2001)
    ]

    def run():
        cache = LinkCache(capacity=100, owner=0)
        for entry in entries:
            cache.insert(entry, policy, 0.0, rng)
        return len(cache)

    size = benchmark(run)
    assert size == 100


def test_policy_ordering_cost(benchmark):
    """Ordering 1000 entries under MFS."""
    policy = get_ordering_policy("MFS")
    rng = random.Random(0)
    entries = [
        CacheEntry(address=i, num_files=rng.randrange(10_000))
        for i in range(1000)
    ]
    ordered = benchmark(policy.order, entries, 0.0, rng)
    assert len(ordered) == 1000


def test_unionfind_component_merge(benchmark):
    """Union 5k random edges over 2k nodes and read the LCC."""
    rng = random.Random(0)
    edges = [(rng.randrange(2000), rng.randrange(2000)) for _ in range(5000)]

    def run():
        uf = UnionFind(range(2000))
        for a, b in edges:
            uf.union(a, b)
        return uf.largest_component_size()

    lcc = benchmark(run)
    assert lcc > 1000  # 5k random edges connect most of 2k nodes


def test_rate_limiter_throughput(benchmark):
    """Out-of-order bucket recording."""
    rng = random.Random(0)
    times = [rng.uniform(0, 1000) for _ in range(20_000)]

    def run():
        limiter = BucketedRateLimiter(window=1.0, limit=100)
        admitted = 0
        for t in times:
            if limiter.try_record(t):
                admitted += 1
        return admitted

    admitted = benchmark(run)
    assert 0 < admitted <= 20_000
