"""Bench: regenerate Figure 9 (probes/query per QueryProbe policy)."""

from __future__ import annotations

from benchmarks.conftest import run_and_report
from repro.experiments.policy_comparison import run_fig9


def test_fig9_query_probe_policy_sweep(benchmark, bench_profile):
    results = run_and_report(benchmark, run_fig9, bench_profile)
    rows = {row[0]: row for row in results[0].rows}
    assert set(rows) == {"Random", "MRU", "LRU", "MFS", "MR"}
    # Paper shape: MRU (freshest-first) wastes fewer probes on corpses
    # than LRU (stalest-first).
    assert rows["MRU"][2] <= rows["LRU"][2]
