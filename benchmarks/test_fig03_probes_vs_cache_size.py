"""Bench: regenerate Figure 3 (probes/query vs CacheSize per NetworkSize)."""

from __future__ import annotations

from benchmarks.conftest import run_and_report
from repro.experiments.cache_size import run_fig3


def test_fig3_probes_grow_with_cache_size(benchmark, bench_profile):
    results = run_and_report(benchmark, run_fig3, bench_profile)
    for label, points in results[0].series.items():
        costs = [cost for _, cost in points]
        # Paper shape: larger caches mean more probes per query.
        assert costs[-1] > costs[0], f"series {label} should rise"
