"""Bench: regenerate Table 3 (live cache-entry breakdown vs CacheSize)."""

from __future__ import annotations

from benchmarks.conftest import run_and_report
from repro.experiments.cache_size import run_table3


def test_table3_live_entry_breakdown(benchmark, bench_profile):
    results = run_and_report(benchmark, run_table3, bench_profile)
    rows = results[0].rows
    assert rows, "Table 3 must produce rows"
    # Paper shape: the fraction of live entries falls as CacheSize grows.
    fractions = [fraction for _, fraction, _ in rows]
    assert fractions[0] > fractions[-1]
