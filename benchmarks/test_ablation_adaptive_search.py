"""Ablation bench: adaptive k-parallel probing (paper §6.2 future work).

Compares three probing disciplines on the same workload: the spec's
strictly serial mode, fixed k=10 walkers, and adaptive escalation
(start serial, double on dry spells).  Adaptive should approach the
serial probe cost on popular items while crushing the worst-case
response time on rare ones.
"""

from __future__ import annotations

from benchmarks.conftest import run_and_report
from repro.experiments.ablations import run_adaptive_search_ablation


def test_adaptive_search_tradeoff(benchmark, bench_profile):
    results = run_and_report(
        benchmark, run_adaptive_search_ablation, bench_profile
    )
    rows = {label: row for label, *row in results[0].rows}
    serial_probes, _, serial_p95 = rows["serial (k=1)"]
    adaptive_probes, _, adaptive_p95 = rows["adaptive"]
    fixed_probes, _, _ = rows["fixed k=10"]
    # Adaptive's probe bill sits below fixed k=10's...
    assert adaptive_probes <= fixed_probes + 1.0
    # ...while its tail response time beats strictly serial probing.
    assert adaptive_p95 < serial_p95
