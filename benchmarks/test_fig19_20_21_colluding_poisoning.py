"""Bench: regenerate Figures 19-21 (colluding cache poisoning).

Same CacheSize scaling note as the Figures 16-18 bench.  Poisoning
accumulates over time (each probed attacker imports PongSize accomplices),
so this bench runs longer and slightly larger than the shared profile —
a short window understates the collapse the paper reports.
"""

from __future__ import annotations

from dataclasses import replace

from benchmarks.conftest import run_and_report
from repro.experiments.malicious import run_fig19_21

BENCH_CACHE = 30


def test_fig19_20_21_colluding_attack(benchmark, bench_profile):
    profile = replace(
        bench_profile, duration=700.0, warmup=200.0, reference_size=300
    )
    results = run_and_report(benchmark, run_fig19_21, profile, BENCH_CACHE)
    fig20 = results[1]
    unsat = {
        policy: dict(points) for policy, points in fig20.series.items()
    }
    # Paper shape: under collusion BOTH MFS and MR collapse, while MR*
    # (first-hand NumRes only) and Random remain robust.
    assert unsat["MFS"][20.0] > unsat["MFS"][0.0] + 0.25
    assert unsat["MR"][20.0] > unsat["MR"][0.0] + 0.25
    assert unsat["MR*"][20.0] < unsat["MR*"][0.0] + 0.15
    assert unsat["Random"][20.0] < unsat["Random"][0.0] + 0.15

    fig21 = results[2]
    good = {policy: dict(points) for policy, points in fig21.series.items()}
    assert good["MR"][20.0] < good["MR"][0.0] / 2.0
