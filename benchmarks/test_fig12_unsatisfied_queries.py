"""Bench: regenerate Figure 12 (unsatisfied queries per QueryPong policy)."""

from __future__ import annotations

from benchmarks.conftest import run_and_report
from repro.experiments.policy_comparison import run_fig12


def test_fig12_unsatisfaction_band(benchmark, bench_profile):
    results = run_and_report(benchmark, run_fig12, bench_profile)
    rates = {policy: unsat for policy, unsat in results[0].rows}
    # Valid probabilities for every policy, and no policy pushes
    # unsatisfaction anywhere near total failure in a healthy network.
    assert all(0.0 <= rate <= 0.6 for rate in rates.values())
