"""Bench: regenerate Figure 8 (cost/unsatisfaction tradeoff of mechanisms)."""

from __future__ import annotations

from benchmarks.conftest import run_and_report
from repro.experiments.flexible_extent import run_fig8


def test_fig8_guess_dominates_fixed_extent(benchmark, bench_profile):
    results = run_and_report(benchmark, run_fig8, bench_profile)
    series = results[0].series
    fixed = series["FixedExtent(Gnutella)"]
    guess_cost, guess_unsat = series["GUESS QueryPong=MFS"][0]
    # Find the cheapest fixed extent that matches GUESS's quality; it
    # must cost several times more probes (paper: >10x at full scale).
    matching = [cost for cost, unsat in fixed if unsat <= guess_unsat + 0.02]
    assert matching, "some fixed extent should reach GUESS quality"
    assert min(matching) > 2.0 * guess_cost
