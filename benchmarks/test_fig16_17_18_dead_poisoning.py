"""Bench: regenerate Figures 16-18 (non-colluding cache poisoning).

CacheSize is shrunk to 30 at this reduced scale so the 20% attacker
population can displace a full cache, matching the paper's
attackers-vs-capacity ratio at NetworkSize 1000 / CacheSize 100.
"""

from __future__ import annotations

from dataclasses import replace

from benchmarks.conftest import run_and_report
from repro.experiments.malicious import run_fig16_18

BENCH_CACHE = 30


def test_fig16_17_18_dead_pong_attack(benchmark, bench_profile):
    profile = replace(
        bench_profile, duration=700.0, warmup=200.0, reference_size=300
    )
    results = run_and_report(benchmark, run_fig16_18, profile, BENCH_CACHE)
    fig17 = results[1]
    unsat = {
        policy: dict(points) for policy, points in fig17.series.items()
    }
    # Paper shape: MFS collapses with dead-IP poisoning; Random and MR
    # stay close to their clean-network levels.
    assert unsat["MFS"][20.0] > unsat["MFS"][0.0] + 0.25
    assert unsat["Random"][20.0] < unsat["Random"][0.0] + 0.15
    assert unsat["MR"][20.0] < unsat["MR"][0.0] + 0.15

    fig18 = results[2]
    good = {policy: dict(points) for policy, points in fig18.series.items()}
    assert good["MFS"][20.0] < good["MFS"][0.0] / 2.0
