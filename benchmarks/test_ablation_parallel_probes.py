"""Ablation bench: parallel probing (paper §6.2, response-time analysis).

The paper argues k parallel walkers cost at most k-1 extra probes while
dividing response time by ~k, and leaves adaptive-k to future work.
This bench regenerates that tradeoff as a table over k.
"""

from __future__ import annotations

from benchmarks.conftest import run_and_report
from repro.experiments.ablations import run_parallel_ablation


def test_parallel_probe_tradeoff(benchmark, bench_profile):
    results = run_and_report(benchmark, run_parallel_ablation, bench_profile)
    rows = {k: row for k, *row in results[0].rows}
    # Cost overhead bounded by roughly k-1 extra probes.
    assert rows[10][0] <= rows[1][0] + 10
    # Response time improves substantially with 10 walkers.
    assert rows[10][2] < rows[1][2] / 2.0
