"""Bench: regenerate Figure 10 (probes/query per QueryPong policy)."""

from __future__ import annotations

from benchmarks.conftest import run_and_report
from repro.experiments.policy_comparison import run_fig10


def test_fig10_mfs_pongs_cut_cost(benchmark, bench_profile):
    results = run_and_report(benchmark, run_fig10, bench_profile)
    rows = {row[0]: row for row in results[0].rows}
    # Paper shape: MFS pongs cut total cost by a large factor vs Random.
    assert rows["MFS"][3] < rows["Random"][3] / 1.5
