"""Bench: regenerate Figure 6 (largest component vs PingInterval per CacheSize)."""

from __future__ import annotations

from benchmarks.conftest import run_and_report
from repro.experiments.ping_interval import run_fig6


def test_fig6_long_intervals_fragment_overlay(benchmark, bench_profile):
    results = run_and_report(benchmark, run_fig6, bench_profile)
    series = results[0].series
    assert series
    for label, points in series.items():
        lccs = dict(points)
        # Paper shape: tighter maintenance keeps the overlay at least as
        # connected as sloppy maintenance.
        tightest = lccs[min(lccs)]
        loosest = lccs[max(lccs)]
        assert tightest >= loosest, label
