"""Ablation bench: selfish peers vs probe payments (paper §3.3).

The paper argues selfish peers can game GUESS by probing everyone at
once and proposes per-probe payments as the deterrent; this bench
measures both sides of that argument.
"""

from __future__ import annotations

from benchmarks.conftest import run_and_report
from repro.experiments.ablations import run_selfish_ablation


def test_selfish_payments_tradeoff(benchmark, bench_profile):
    results = run_and_report(benchmark, run_selfish_ablation, bench_profile)
    rows = {label: row for label, *row in results[0].rows}
    free = rows["20% selfish, free probes"]
    paying = rows["20% selfish, paying"]
    # Free-probing cheats fire far more probes per query than paying ones.
    assert free[2] > 2.0 * paying[2]
    # Honest peers stay functional in every scenario.
    assert all(row[0] < 0.6 for row in rows.values())
