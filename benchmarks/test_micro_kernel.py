"""Kernel hot-path microbenchmarks, persisted to ``BENCH_kernel.json``.

These pin the throughput of the paths PR 2 optimized — the event loop's
args-based dispatch, ``GuessSimulation``'s friend sampling and health
snapshots, and ``LinkCache``'s full-cache insert contest — plus the
parallel trial executor's end-to-end speedup.  Each test folds its
measured rate into a module-level result dict; a module-scoped fixture
merges the dict into ``BENCH_kernel.json`` at the repo root so the
numbers are diffable across commits.

Scale is controlled by ``REPRO_BENCH_SCALE``:

* ``bench`` (default) — the committed-baseline scale; takes ~a minute.
* ``tiny`` — CI smoke scale; seconds, numbers only sanity-checked.

Speedup numbers are recorded honestly: ``cpu_count`` is stored next to
them, and on a single-core runner the parallel sweep is *expected* to
show speedup <= 1 (process spawn overhead with no parallelism to win).
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import random
import subprocess
import sys
import time

import pytest

import repro
from repro.core.entry import CacheEntry
from repro.core.link_cache import LinkCache
from repro.core.network_sim import GuessSimulation
from repro.core.params import ProtocolParams, SystemParams
from repro.core.policies import get_replacement_policy
from repro.experiments.runner import run_guess_config
from repro.sim.engine import EventHandle, Simulator
from repro.sim.wheel import HeapScheduler, TimingWheel

RESULTS_PATH = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_kernel.json"
)

SCALE = os.environ.get("REPRO_BENCH_SCALE", "bench")
if SCALE not in ("bench", "tiny"):
    raise RuntimeError(f"REPRO_BENCH_SCALE must be bench or tiny, not {SCALE!r}")

#: (engine events, sim size, sim duration, insert count, sweep size).
_KNOBS = {
    "bench": dict(
        engine_events=50_000,
        sim_size=100,
        sim_cache=30,
        sim_duration=400.0,
        inserts=5_000,
        sweep_size=60,
        sweep_duration=120.0,
        sweep_trials=4,
        timer_population=1_000_000,
        timer_rounds=3,
        scaling_cells=((1_000, 120.0), (10_000, 120.0), (100_000, 60.0)),
    ),
    "tiny": dict(
        engine_events=5_000,
        sim_size=40,
        sim_cache=10,
        sim_duration=60.0,
        inserts=1_000,
        sweep_size=25,
        sweep_duration=40.0,
        sweep_trials=2,
        timer_population=20_000,
        timer_rounds=3,
        scaling_cells=((200, 30.0), (1_000, 30.0)),
    ),
}[SCALE]

#: Memory ceiling for the scaling curve's largest population.  The
#: measured footprint is ~23 KiB/peer at 100k peers (two per-peer RNG
#: streams dominate); the budget leaves ~40% headroom so the assertion
#: catches regressions, not allocator noise.
_RSS_BUDGET_BYTES_PER_PEER = 32 * 1024

#: Rates accumulated by the tests in this module, merged into
#: RESULTS_PATH when the module finishes.
_RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def _persist_results():
    """Merge this module's measured rates into ``BENCH_kernel.json``."""
    yield
    if not _RESULTS:
        return
    payload = {
        "schema": "repro-bench-kernel/1",
        "scale": SCALE,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "metrics": {},
    }
    if RESULTS_PATH.exists():
        try:
            previous = json.loads(RESULTS_PATH.read_text(encoding="utf-8"))
            if previous.get("scale") == SCALE:
                payload["metrics"] = previous.get("metrics", {})
        except (ValueError, OSError):
            pass
    payload["metrics"].update(
        {
            key: round(value, 2) if isinstance(value, float) else value
            for key, value in sorted(_RESULTS.items())
        }
    )
    tmp = RESULTS_PATH.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    os.replace(tmp, RESULTS_PATH)


def _mean_seconds(benchmark) -> float:
    return benchmark.stats.stats.mean


def test_engine_events_per_sec(benchmark):
    """Schedule + fire no-op events through the args-based dispatch."""
    count = _KNOBS["engine_events"]

    def noop(tag):
        return tag

    def run():
        sim = Simulator()
        for i in range(count):
            sim.schedule(float(i % 100), noop, args=(i,))
        sim.run_until(101.0)
        return sim.events_executed

    executed = benchmark(run)
    assert executed == count
    _RESULTS["engine_events_per_sec"] = count / _mean_seconds(benchmark)


def test_sim_events_per_sec(benchmark):
    """Whole-simulation throughput: events/sec and sim-seconds/sec."""
    duration = _KNOBS["sim_duration"]

    def run():
        sim = GuessSimulation(
            SystemParams(network_size=_KNOBS["sim_size"]),
            ProtocolParams(cache_size=_KNOBS["sim_cache"]),
            seed=7,
        )
        sim.run(duration)
        return sim.engine.events_executed

    executed = benchmark(run)
    assert executed > 0
    mean = _mean_seconds(benchmark)
    _RESULTS["sim_events_per_sec"] = executed / mean
    _RESULTS["sim_seconds_per_sec"] = duration / mean


def test_link_cache_inserts_per_sec(benchmark):
    """Full-cache inserts: every one runs the no-copy eviction contest."""
    policy = get_replacement_policy("LFS")
    rng = random.Random(0)
    count = _KNOBS["inserts"]
    entries = [
        CacheEntry(address=i, num_files=rng.randrange(1000))
        for i in range(1, count + 1)
    ]

    def run():
        cache = LinkCache(capacity=100, owner=0)
        for entry in entries:
            cache.insert(entry, policy, 0.0, rng)
        return len(cache)

    size = benchmark(run)
    assert size == 100
    _RESULTS["link_cache_inserts_per_sec"] = count / _mean_seconds(benchmark)


def _drive_scheduler(sched, population: int, rounds: int) -> float:
    """Pump self-rescheduling timers through one scheduler, directly.

    Bypasses the ``Simulator`` so handle allocation and action dispatch
    (identical for both schedulers) don't dilute the measured quantity:
    the scheduler's own push/pop cost with ``population`` timers
    pending.  Each pop reschedules the same handle one interval later,
    so the pending set stays at ``population`` for the whole run —
    exactly the engine's steady-state ping/death workload shape.
    """
    interval = 30.0
    rng = random.Random(1234)
    for seq in range(population):
        when = rng.random() * interval
        handle = EventHandle(when, 0, seq, None, "", (), None)
        sched.push((when, 0, seq, handle))
    seq = population
    pops = population * rounds
    horizon = float("inf")
    started = time.perf_counter()  # repro: allow-wallclock (benchmark timing)
    for _ in range(pops):
        handle = sched.pop_next(horizon)
        when = handle.time + interval
        handle.time = when
        sched.push((when, 0, seq, handle))
        seq += 1
    elapsed = time.perf_counter() - started  # repro: allow-wallclock
    return pops / elapsed


def test_scheduler_wheel_vs_heap_events_per_sec():
    """The tentpole claim: >= 2x scheduler throughput at timer scale.

    The heap pays O(log n) comparisons per operation with n timers
    pending; the wheel pays O(1) bucket appends and tail pops.  At the
    bench scale's million-timer population the wheel must clear twice
    the heap's events/s; the tiny (CI) scale only sanity-checks that
    both run and records the numbers.
    """
    population = _KNOBS["timer_population"]
    rounds = _KNOBS["timer_rounds"]
    heap_rate = _drive_scheduler(HeapScheduler(), population, rounds)
    wheel_rate = _drive_scheduler(TimingWheel(), population, rounds)
    speedup = wheel_rate / heap_rate
    _RESULTS["scheduler_heap_events_per_sec"] = heap_rate
    _RESULTS["scheduler_wheel_events_per_sec"] = wheel_rate
    _RESULTS["scheduler_wheel_speedup"] = speedup
    _RESULTS["scheduler_timer_population"] = population
    assert heap_rate > 0 and wheel_rate > 0
    if SCALE == "bench":
        assert speedup >= 2.0, (
            f"wheel speedup {speedup:.2f}x below the 2x bar "
            f"({wheel_rate:,.0f} vs {heap_rate:,.0f} ev/s)"
        )


#: Runs one scaling cell in a fresh interpreter and prints a JSON line:
#: the child's RSS is then that cell's population alone, not whatever
#: the benchmark process accumulated before it.
_SCALING_CELL_SCRIPT = """
import json, resource, sys, time
network_size, duration, scheduler = (
    int(sys.argv[1]), float(sys.argv[2]), sys.argv[3]
)
from repro.core.network_sim import GuessSimulation
from repro.core.params import ProtocolParams, SystemParams

def rss_bytes():
    # Current (not peak) resident size, so the import-time high-water
    # mark can't mask small populations; ru_maxrss is the fallback.
    try:
        with open("/proc/self/status", encoding="ascii") as status:
            for line in status:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024

baseline = rss_bytes()
sim = GuessSimulation(
    SystemParams(network_size=network_size, query_rate=0.0),
    ProtocolParams(cache_size=10),
    seed=7,
    scheduler=scheduler,
)
started = time.perf_counter()
sim.run(duration)
elapsed = time.perf_counter() - started
print(json.dumps({
    "events_per_sec": sim.engine.events_executed / elapsed,
    "rss_bytes": rss_bytes() - baseline,
}))
"""


def _run_scaling_cell(
    network_size: int, duration: float, scheduler: str
) -> dict:
    src = pathlib.Path(repro.__file__).resolve().parents[1]
    env = dict(os.environ, PYTHONPATH=str(src))
    proc = subprocess.run(
        [
            sys.executable,
            "-c",
            _SCALING_CELL_SCRIPT,
            str(network_size),
            str(duration),
            scheduler,
        ],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(proc.stdout.splitlines()[-1])


def test_peer_scaling_curve():
    """Peers-vs-RSS and peers-vs-events/s across the population sweep.

    A churn-only workload (``query_rate=0``) isolates the kernel paths
    this module pins — timers, peer store, link-cache maintenance —
    from the protocol's probe fan-out, whose per-query cost grows with
    network size by design (flexible extent).  Each cell runs in its
    own interpreter so RSS is attributable to that population.  At
    bench scale the largest population must stay inside the per-peer
    memory budget.
    """
    largest = 0
    for network_size, duration in _KNOBS["scaling_cells"]:
        wheel = _run_scaling_cell(network_size, duration, "wheel")
        heap = _run_scaling_cell(network_size, duration, "heap")
        bytes_per_peer = wheel["rss_bytes"] / network_size
        _RESULTS[f"scale_n{network_size}_wheel_events_per_sec"] = (
            wheel["events_per_sec"]
        )
        _RESULTS[f"scale_n{network_size}_heap_events_per_sec"] = (
            heap["events_per_sec"]
        )
        _RESULTS[f"scale_n{network_size}_rss_mb"] = (
            wheel["rss_bytes"] / (1024 * 1024)
        )
        _RESULTS[f"scale_n{network_size}_rss_bytes_per_peer"] = bytes_per_peer
        assert wheel["events_per_sec"] > 0
        assert heap["events_per_sec"] > 0
        if network_size > largest:
            largest = network_size
            if SCALE == "bench":
                assert bytes_per_peer < _RSS_BUDGET_BYTES_PER_PEER, (
                    f"{bytes_per_peer:,.0f} B/peer at n={network_size} "
                    f"blows the {_RSS_BUDGET_BYTES_PER_PEER} B budget"
                )


def test_parallel_sweep_speedup():
    """Serial vs 2-worker executor on one multi-trial configuration.

    Not a pytest-benchmark test: the two variants must run in a fixed
    order within a single test so their ratio is meaningful.  The wall
    times and the ratio land in BENCH_kernel.json alongside cpu_count
    and an explicit ``parallel_insufficient_cores`` flag — on a
    single-core runner the ratio is expected to be <= 1 (process spawn
    overhead with no parallelism to win), and the flag says so instead
    of leaving a mysteriously sub-1 "speedup" in the baseline.
    """
    system = SystemParams(network_size=_KNOBS["sweep_size"])
    protocol = ProtocolParams(cache_size=10)
    kwargs = dict(
        duration=_KNOBS["sweep_duration"],
        warmup=0.0,
        trials=_KNOBS["sweep_trials"],
        base_seed=99,
    )

    started = time.perf_counter()  # repro: allow-wallclock (benchmark timing)
    serial = run_guess_config(system, protocol, workers=1, **kwargs)
    serial_sec = time.perf_counter() - started  # repro: allow-wallclock

    started = time.perf_counter()  # repro: allow-wallclock
    parallel = run_guess_config(system, protocol, workers=2, **kwargs)
    parallel_sec = time.perf_counter() - started  # repro: allow-wallclock

    assert [r.queries for r in serial] == [r.queries for r in parallel]
    cores = os.cpu_count() or 1
    _RESULTS["parallel_serial_sec"] = serial_sec
    _RESULTS["parallel_workers2_sec"] = parallel_sec
    _RESULTS["parallel_speedup_workers2"] = (
        serial_sec / parallel_sec if parallel_sec > 0 else 0.0
    )
    _RESULTS["parallel_cpu_count"] = cores
    _RESULTS["parallel_insufficient_cores"] = cores < 2
    if cores >= 2:
        # Only meaningful with real parallelism available: two workers
        # on two cores must beat serial (modulo spawn overhead).
        assert parallel_sec < serial_sec * 1.2
