"""Kernel hot-path microbenchmarks, persisted to ``BENCH_kernel.json``.

These pin the throughput of the paths PR 2 optimized — the event loop's
args-based dispatch, ``GuessSimulation``'s friend sampling and health
snapshots, and ``LinkCache``'s full-cache insert contest — plus the
parallel trial executor's end-to-end speedup.  Each test folds its
measured rate into a module-level result dict; a module-scoped fixture
merges the dict into ``BENCH_kernel.json`` at the repo root so the
numbers are diffable across commits.

Scale is controlled by ``REPRO_BENCH_SCALE``:

* ``bench`` (default) — the committed-baseline scale; takes ~a minute.
* ``tiny`` — CI smoke scale; seconds, numbers only sanity-checked.

Speedup numbers are recorded honestly: ``cpu_count`` is stored next to
them, and on a single-core runner the parallel sweep is *expected* to
show speedup <= 1 (process spawn overhead with no parallelism to win).
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import random
import time

import pytest

from repro.core.entry import CacheEntry
from repro.core.link_cache import LinkCache
from repro.core.network_sim import GuessSimulation
from repro.core.params import ProtocolParams, SystemParams
from repro.core.policies import get_replacement_policy
from repro.experiments.runner import run_guess_config
from repro.sim.engine import Simulator

RESULTS_PATH = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_kernel.json"
)

SCALE = os.environ.get("REPRO_BENCH_SCALE", "bench")
if SCALE not in ("bench", "tiny"):
    raise RuntimeError(f"REPRO_BENCH_SCALE must be bench or tiny, not {SCALE!r}")

#: (engine events, sim size, sim duration, insert count, sweep size).
_KNOBS = {
    "bench": dict(
        engine_events=50_000,
        sim_size=100,
        sim_cache=30,
        sim_duration=400.0,
        inserts=5_000,
        sweep_size=60,
        sweep_duration=120.0,
        sweep_trials=4,
    ),
    "tiny": dict(
        engine_events=5_000,
        sim_size=40,
        sim_cache=10,
        sim_duration=60.0,
        inserts=1_000,
        sweep_size=25,
        sweep_duration=40.0,
        sweep_trials=2,
    ),
}[SCALE]

#: Rates accumulated by the tests in this module, merged into
#: RESULTS_PATH when the module finishes.
_RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def _persist_results():
    """Merge this module's measured rates into ``BENCH_kernel.json``."""
    yield
    if not _RESULTS:
        return
    payload = {
        "schema": "repro-bench-kernel/1",
        "scale": SCALE,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "metrics": {},
    }
    if RESULTS_PATH.exists():
        try:
            previous = json.loads(RESULTS_PATH.read_text(encoding="utf-8"))
            if previous.get("scale") == SCALE:
                payload["metrics"] = previous.get("metrics", {})
        except (ValueError, OSError):
            pass
    payload["metrics"].update(
        {key: round(value, 2) for key, value in sorted(_RESULTS.items())}
    )
    tmp = RESULTS_PATH.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    os.replace(tmp, RESULTS_PATH)


def _mean_seconds(benchmark) -> float:
    return benchmark.stats.stats.mean


def test_engine_events_per_sec(benchmark):
    """Schedule + fire no-op events through the args-based dispatch."""
    count = _KNOBS["engine_events"]

    def noop(tag):
        return tag

    def run():
        sim = Simulator()
        for i in range(count):
            sim.schedule(float(i % 100), noop, args=(i,))
        sim.run_until(101.0)
        return sim.events_executed

    executed = benchmark(run)
    assert executed == count
    _RESULTS["engine_events_per_sec"] = count / _mean_seconds(benchmark)


def test_sim_events_per_sec(benchmark):
    """Whole-simulation throughput: events/sec and sim-seconds/sec."""
    duration = _KNOBS["sim_duration"]

    def run():
        sim = GuessSimulation(
            SystemParams(network_size=_KNOBS["sim_size"]),
            ProtocolParams(cache_size=_KNOBS["sim_cache"]),
            seed=7,
        )
        sim.run(duration)
        return sim.engine.events_executed

    executed = benchmark(run)
    assert executed > 0
    mean = _mean_seconds(benchmark)
    _RESULTS["sim_events_per_sec"] = executed / mean
    _RESULTS["sim_seconds_per_sec"] = duration / mean


def test_link_cache_inserts_per_sec(benchmark):
    """Full-cache inserts: every one runs the no-copy eviction contest."""
    policy = get_replacement_policy("LFS")
    rng = random.Random(0)
    count = _KNOBS["inserts"]
    entries = [
        CacheEntry(address=i, num_files=rng.randrange(1000))
        for i in range(1, count + 1)
    ]

    def run():
        cache = LinkCache(capacity=100, owner=0)
        for entry in entries:
            cache.insert(entry, policy, 0.0, rng)
        return len(cache)

    size = benchmark(run)
    assert size == 100
    _RESULTS["link_cache_inserts_per_sec"] = count / _mean_seconds(benchmark)


def test_parallel_sweep_speedup():
    """Serial vs 2-worker executor on one multi-trial configuration.

    Not a pytest-benchmark test: the two variants must run in a fixed
    order within a single test so their ratio is meaningful.  The wall
    times and the ratio land in BENCH_kernel.json alongside cpu_count —
    on a single-core runner the ratio is expected to be <= 1.
    """
    system = SystemParams(network_size=_KNOBS["sweep_size"])
    protocol = ProtocolParams(cache_size=10)
    kwargs = dict(
        duration=_KNOBS["sweep_duration"],
        warmup=0.0,
        trials=_KNOBS["sweep_trials"],
        base_seed=99,
    )

    started = time.perf_counter()  # repro: allow-wallclock (benchmark timing)
    serial = run_guess_config(system, protocol, workers=1, **kwargs)
    serial_sec = time.perf_counter() - started  # repro: allow-wallclock

    started = time.perf_counter()  # repro: allow-wallclock
    parallel = run_guess_config(system, protocol, workers=2, **kwargs)
    parallel_sec = time.perf_counter() - started  # repro: allow-wallclock

    assert [r.queries for r in serial] == [r.queries for r in parallel]
    _RESULTS["parallel_serial_sec"] = serial_sec
    _RESULTS["parallel_workers2_sec"] = parallel_sec
    _RESULTS["parallel_speedup_workers2"] = (
        serial_sec / parallel_sec if parallel_sec > 0 else 0.0
    )
