"""Shared scaffolding for the benchmark harness.

Each benchmark module regenerates one of the paper's tables or figures
(DESIGN.md §4 maps them) at ``BENCH`` scale — big enough that every
qualitative shape is visible, small enough that the whole harness runs
in a few minutes — and prints the regenerated rows/series so a
``pytest benchmarks/ --benchmark-only`` run doubles as a results report.

Benchmarks wrap whole simulation sweeps, so every one uses
``benchmark.pedantic(rounds=1, iterations=1)``: the quantity being
"benchmarked" is the wall-clock cost of regenerating the artifact, and
re-running a multi-second sweep five times would add nothing.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.profiles import Profile

#: Rendered artifacts are also appended here (pytest captures stdout for
#: passing tests, so the printed tables would otherwise be lost).
ARTIFACTS_PATH = pathlib.Path(__file__).resolve().parent.parent / (
    "bench_artifacts.txt"
)

#: The benchmark-scale profile (between the test "micro" and "smoke").
BENCH = Profile(
    name="bench",
    duration=300.0,
    warmup=100.0,
    trials=1,
    network_sizes=(100, 200),
    reference_size=200,
    cache_sizes=(5, 10, 20, 50, 100),
    ping_intervals=(10.0, 60.0, 240.0, 480.0),
    baseline_queries=400,
    max_extent=200,
)


@pytest.fixture(scope="session")
def bench_profile() -> Profile:
    return BENCH


@pytest.fixture(scope="session", autouse=True)
def _fresh_artifacts_file():
    """Start each benchmark session with an empty artifacts file."""
    ARTIFACTS_PATH.write_text(
        "Regenerated artifacts from `pytest benchmarks/ --benchmark-only`\n"
        f"(profile: {BENCH.name}; see benchmarks/conftest.py)\n\n"
    )
    yield


def run_and_report(benchmark, producer, *args):
    """Benchmark ``producer(*args)`` once and report what it regenerated.

    ``producer`` returns an ExperimentResult or a list of them.  The
    rendering is printed (visible with ``-s``) and appended to
    ``bench_artifacts.txt`` (always), so a plain captured run still
    leaves the regenerated tables on disk.
    """
    results = benchmark.pedantic(producer, args=args, rounds=1, iterations=1)
    if not isinstance(results, list):
        results = [results]
    print()
    with ARTIFACTS_PATH.open("a", encoding="utf-8") as sink:
        for result in results:
            rendered = result.render()
            print(rendered)
            sink.write(rendered + "\n\n")
    return results
