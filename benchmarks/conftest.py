"""Shared scaffolding for the benchmark harness.

Each benchmark module regenerates one of the paper's tables or figures
(DESIGN.md §4 maps them) at ``BENCH`` scale — big enough that every
qualitative shape is visible, small enough that the whole harness runs
in a few minutes — and prints the regenerated rows/series so a
``pytest benchmarks/ --benchmark-only`` run doubles as a results report.

Benchmarks wrap whole simulation sweeps, so every one uses
``benchmark.pedantic(rounds=1, iterations=1)``: the quantity being
"benchmarked" is the wall-clock cost of regenerating the artifact, and
re-running a multi-second sweep five times would add nothing.

Artifact collection is parallel-safe: each pytest process appends to its
own part file under ``bench_artifacts.d/`` (keyed by xdist worker id and
pid), and the controller process merges the parts into
``bench_artifacts.txt`` at session finish.  Concurrent workers therefore
never interleave writes inside one file, and a plain serial run still
produces the same single merged artifact file.
"""

from __future__ import annotations

import os
import pathlib
import shutil

import pytest

from repro.experiments.profiles import Profile

#: Final merged artifacts file (pytest captures stdout for passing
#: tests, so the printed tables would otherwise be lost).
ARTIFACTS_PATH = pathlib.Path(__file__).resolve().parent.parent / (
    "bench_artifacts.txt"
)

#: Per-process part files live here until the controller merges them.
PARTS_DIR = ARTIFACTS_PATH.parent / "bench_artifacts.d"

#: The benchmark-scale profile (between the test "micro" and "smoke").
BENCH = Profile(
    name="bench",
    duration=300.0,
    warmup=100.0,
    trials=1,
    network_sizes=(100, 200),
    reference_size=200,
    cache_sizes=(5, 10, 20, 50, 100),
    ping_intervals=(10.0, 60.0, 240.0, 480.0),
    baseline_queries=400,
    max_extent=200,
)


def _sink_path() -> pathlib.Path:
    """This process's private part file.

    The name embeds the xdist worker id (``gw0``, ``gw1``, ... — or
    ``main`` when not under xdist) and the pid, so two processes can
    never share a sink even across unusual spawn configurations.
    """
    worker = os.environ.get("PYTEST_XDIST_WORKER", "main")
    return PARTS_DIR / f"{worker}-{os.getpid()}.part"


@pytest.fixture(scope="session")
def bench_profile() -> Profile:
    return BENCH


@pytest.fixture(scope="session", autouse=True)
def _fresh_artifacts_sink():
    """Start each process's session with an empty part file."""
    PARTS_DIR.mkdir(exist_ok=True)
    _sink_path().write_text("")
    yield


def pytest_sessionfinish(session, exitstatus):
    """Merge part files into ``bench_artifacts.txt`` (controller only).

    xdist workers carry a ``workerinput`` attribute on their config; they
    skip the merge and leave it to the controller, which runs last.
    """
    if hasattr(session.config, "workerinput"):
        return
    if not PARTS_DIR.is_dir():
        return
    parts = sorted(PARTS_DIR.glob("*.part"))
    body = "".join(part.read_text(encoding="utf-8") for part in parts)
    if body:
        ARTIFACTS_PATH.write_text(
            "Regenerated artifacts from `pytest benchmarks/ "
            "--benchmark-only`\n"
            f"(profile: {BENCH.name}; see benchmarks/conftest.py)\n\n"
            + body
        )
    shutil.rmtree(PARTS_DIR, ignore_errors=True)


def run_and_report(benchmark, producer, *args):
    """Benchmark ``producer(*args)`` once and report what it regenerated.

    ``producer`` returns an ExperimentResult or a list of them.  The
    rendering is printed (visible with ``-s``) and appended to this
    process's artifact sink (always), so a plain captured run still
    leaves the regenerated tables on disk after the session merge.
    """
    results = benchmark.pedantic(producer, args=args, rounds=1, iterations=1)
    if not isinstance(results, list):
        results = [results]
    print()
    with _sink_path().open("a", encoding="utf-8") as sink:
        for result in results:
            rendered = result.render()
            print(rendered)
            sink.write(rendered + "\n\n")
    return results
