"""Bench: regenerate Figure 11 (probes/query per CacheReplacement policy)."""

from __future__ import annotations

from benchmarks.conftest import run_and_report
from repro.experiments.policy_comparison import run_fig11


def test_fig11_lfs_replacement_wins(benchmark, bench_profile):
    results = run_and_report(benchmark, run_fig11, bench_profile)
    rows = {row[0]: row for row in results[0].rows}
    assert set(rows) == {"Random", "LRU", "MRU", "LFS", "LR"}
    # Paper shape: LFS (retain big sharers) is the cheapest policy.
    assert rows["LFS"][3] == min(row[3] for row in rows.values())
