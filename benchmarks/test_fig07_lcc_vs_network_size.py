"""Bench: regenerate Figure 7 (relative LCC vs PingInterval per NetworkSize)."""

from __future__ import annotations

from benchmarks.conftest import run_and_report
from repro.experiments.ping_interval import run_fig7


def test_fig7_relative_connectivity_scale_free(benchmark, bench_profile):
    results = run_and_report(benchmark, run_fig7, bench_profile)
    series = results[0].series
    assert len(series) == len(bench_profile.network_sizes)
    # Paper shape: at a common (tight) ping interval, relative LCC is
    # high for every network size — connectivity does not depend on N.
    tight = min(bench_profile.ping_intervals)
    for label, points in series.items():
        relative = dict(points)[tight]
        assert relative > 0.9, f"{label} should stay connected when maintained"
