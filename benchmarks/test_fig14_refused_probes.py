"""Bench: regenerate Figure 14 (probe breakdown vs capacity, MR policies)."""

from __future__ import annotations

from benchmarks.conftest import run_and_report
from repro.experiments.capacity import run_fig14


def test_fig14_tight_capacity_refuses_probes(benchmark, bench_profile):
    results = run_and_report(benchmark, run_fig14, bench_profile)
    rows = results[0].rows
    by_key = {(n, cap): refused for n, cap, _, refused, _ in rows}
    largest = max(n for n, _ in by_key)
    # Paper shape: at the largest network, capacity 1 refuses more
    # probes than capacity 50.
    assert by_key[(largest, 1)] >= by_key[(largest, 50)]
