"""Bench: regenerate Figure 4 (unsatisfaction vs CacheSize per NetworkSize)."""

from __future__ import annotations

from benchmarks.conftest import run_and_report
from repro.experiments.cache_size import run_fig4


def test_fig4_unsat_minimum_at_moderate_cache(benchmark, bench_profile):
    results = run_and_report(benchmark, run_fig4, bench_profile)
    for label, points in results[0].series.items():
        rates = [rate for _, rate in points]
        # Paper shape: the extremes are not the minimum — a moderate
        # cache size beats the tiniest cache.
        assert min(rates) < rates[0], f"series {label}: tiny cache should lose"
