"""Bench: regenerate Figure 5 (dead vs good probes vs CacheSize)."""

from __future__ import annotations

from benchmarks.conftest import run_and_report
from repro.experiments.cache_size import run_fig5


def test_fig5_dead_probes_grow_good_probes_plateau(benchmark, bench_profile):
    results = run_and_report(benchmark, run_fig5, bench_profile)
    series = results[0].series
    dead = [v for _, v in series["Dead"]]
    good = [v for _, v in series["Good"]]
    # Paper shape: dead probes rise with cache size; good probes do NOT
    # keep rising proportionally (they peak at a moderate size).
    assert dead[-1] > dead[0]
    assert max(good) < 3 * max(1e-9, good[0]) or max(good) != good[-1]
