"""Ablation bench: pong-provenance defense vs the colluding attack.

The paper leaves malicious-peer *detection* to future work (§6.4); this
bench measures the implemented heuristics (repro.extensions.detection)
against the attack that defeats MR — colluding Bad-pong poisoning.
"""

from __future__ import annotations

from benchmarks.conftest import run_and_report
from repro.experiments.ablations import run_detection_ablation


def test_detection_restores_mr(benchmark, bench_profile):
    results = run_and_report(benchmark, run_detection_ablation, bench_profile)
    rows = {flag: row for flag, *row in results[0].rows}
    undefended_unsat = rows[False][1]
    defended_unsat = rows[True][1]
    assert defended_unsat < undefended_unsat - 0.05
