"""Bench: regenerate Figure 13 (ranked load per policy combination)."""

from __future__ import annotations

from benchmarks.conftest import run_and_report
from repro.experiments.fairness import run_fig13


def test_fig13_load_concentration(benchmark, bench_profile):
    results = run_and_report(benchmark, run_fig13, bench_profile)
    result = results[0]
    stats = {row[0]: row for row in result.rows}
    # Paper shape: MFS/LFS concentrates load (higher top-1% share and
    # Gini than Random/Random) while Random's total probe volume is a
    # multiple of MFS/LFS's.
    assert stats["MFS/LFS"][2] > stats["Random/Random"][2]
    assert stats["MFS/LFS"][3] > stats["Random/Random"][3]
    assert stats["Random/Random"][1] > 2 * stats["MFS/LFS"][1]
