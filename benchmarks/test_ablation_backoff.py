"""Ablation bench: DoBackoff (Table 2 flag).

With DoBackoff=No (the default), a refused probe is treated like a death
and the entry is evicted — the protocol's inherent throttling (§6.3).
With DoBackoff=Yes, the entry survives the refusal.  This ablation shows
the tradeoff under tight capacity and the load-concentrating MR stack.
"""

from __future__ import annotations

from benchmarks.conftest import run_and_report
from repro.experiments.ablations import run_backoff_ablation


def test_backoff_tradeoff(benchmark, bench_profile):
    results = run_and_report(benchmark, run_backoff_ablation, bench_profile)
    rows = {flag: row for flag, *row in results[0].rows}
    # Both modes keep the network functional.
    assert rows[False][2] < 0.6
    assert rows[True][2] < 0.6
