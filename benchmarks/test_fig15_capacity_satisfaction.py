"""Bench: regenerate Figure 15 (unsatisfaction vs capacity per NetworkSize)."""

from __future__ import annotations

from benchmarks.conftest import run_and_report
from repro.experiments.capacity import run_fig15


def test_fig15_satisfaction_resilient_to_capacity(benchmark, bench_profile):
    results = run_and_report(benchmark, run_fig15, bench_profile)
    for label, points in results[0].series.items():
        rates = dict(points)
        # Paper shape: capacity limits barely move satisfaction — the
        # spread across capacities stays small.
        assert max(rates.values()) - min(rates.values()) < 0.25, label
