#!/usr/bin/env python3
"""Cache poisoning: attack a GUESS network and defend with MR*.

Reproduces the paper's §6.4 storyline as a narrative:

1. a healthy network running the efficient MR policy stack;
2. the same network with 20% colluding attackers whose pongs advertise
   fellow attackers with inflated NumRes — MR trusts hearsay and its
   caches fill with poison;
3. the defense: MR* (``ResetNumResults=Yes``) ranks peers only on
   first-hand results and keeps working through the same attack.

Run:
    python examples/cache_poisoning_attack.py
"""

from repro import (
    BadPongBehavior,
    GuessSimulation,
    ProtocolParams,
    SystemParams,
)

NETWORK = 300
CACHE = 30  # 20% of 300 = 60 attackers > cache, the dangerous regime


def run_scenario(label: str, policy: str, bad_percent: float) -> None:
    system = SystemParams(
        network_size=NETWORK,
        percent_bad_peers=bad_percent,
        bad_pong_behavior=BadPongBehavior.BAD,  # colluding attackers
    )
    protocol = ProtocolParams.all_same_policy(policy, cache_size=CACHE)
    sim = GuessSimulation(system, protocol, seed=23, warmup=200.0)
    sim.run(900.0)
    report = sim.report()
    print(f"{label}")
    print(f"  probes per query : {report.probes_per_query:6.1f}")
    print(f"  unsatisfied      : {report.unsatisfied_rate:6.1%}")
    print(
        f"  good cache entries (live, honest): "
        f"{report.mean_good_entries:.1f} / {CACHE}"
    )
    print()


def main() -> None:
    print(f"network: {NETWORK} peers, CacheSize {CACHE}, colluding pongs\n")
    run_scenario("1) MR stack, no attackers", "MR", 0.0)
    run_scenario("2) MR stack, 20% colluding attackers", "MR", 20.0)
    run_scenario("3) MR* stack, 20% colluding attackers", "MR*", 20.0)
    print(
        "MR collapses because every probe of an attacker imports PongSize\n"
        "fresh attacker entries with inflated NumRes — faster than LR\n"
        "eviction removes them.  MR* zeroes hearsay NumRes on import, so\n"
        "attackers never outrank honest peers it has actually used."
    )


if __name__ == "__main__":
    main()
