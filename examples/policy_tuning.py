#!/usr/bin/env python3
"""Policy tuning: pick policies for a GUESS deployment.

The paper's central practical finding is that the *policies* driving
probe order, pong construction, and cache replacement move query cost by
close to an order of magnitude.  This example compares the deployment
candidates on one workload and prints a recommendation table, mirroring
the reasoning of paper Sections 6.2 and 6.4.

Run:
    python examples/policy_tuning.py
"""

from repro import GuessSimulation, ProtocolParams, SystemParams
from repro.reporting.tables import format_table

CANDIDATES = [
    ("all-Random (baseline)", ProtocolParams()),
    ("QueryPong=MFS", ProtocolParams(query_pong="MFS")),
    ("MFS stack (MFS/MFS/LFS)", ProtocolParams.all_same_policy("MFS")),
    ("MR stack (MR/MR/LR)", ProtocolParams.all_same_policy("MR")),
    ("MR* stack (trust-local)", ProtocolParams.all_same_policy("MR*")),
]


def evaluate(label: str, protocol: ProtocolParams) -> tuple:
    sim = GuessSimulation(
        SystemParams(network_size=400), protocol, seed=11, warmup=300.0
    )
    sim.run(1500.0)
    report = sim.report()
    load = report.load_distribution()
    return (
        label,
        report.probes_per_query,
        report.unsatisfied_rate,
        report.mean_response_time or 0.0,
        load.top_share(0.01),
    )


def main() -> None:
    print("comparing policy stacks on 400 peers (25 simulated minutes each)...\n")
    rows = [evaluate(label, protocol) for label, protocol in CANDIDATES]
    print(
        format_table(
            ("Configuration", "Probes/Query", "Unsatisfied",
             "Response(s)", "Top-1% load share"),
            rows,
            title="Policy comparison (paper §6.2)",
        )
    )
    cheapest = min(rows, key=lambda row: row[1])
    print(
        f"\ncheapest configuration: {cheapest[0]} "
        f"({cheapest[1]:.1f} probes/query)"
    )
    print(
        "note: the paper recommends the MR stack as the best efficiency/"
        "robustness tradeoff once malicious peers are considered (§6.4) — "
        "see examples/cache_poisoning_attack.py."
    )


if __name__ == "__main__":
    main()
