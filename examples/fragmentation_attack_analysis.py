#!/usr/bin/env python3
"""Fragmentation-attack analysis (paper §3.3).

The paper warns that GUESS is exposed to fragmentation when
well-referenced peers vanish simultaneously — e.g. colluding attackers
who first worm their way into many link caches and then disappear.  This
example grows a network, inspects *who* the overlay depends on, and
compares targeted removal of the most-referenced peers against random
removal of the same number.

Run:
    python examples/fragmentation_attack_analysis.py
"""

import random

from repro import GuessSimulation, ProtocolParams, SystemParams
from repro.analysis.overlay_stats import OverlayStats
from repro.reporting.tables import format_table

NETWORK = 400


def main() -> None:
    print(f"growing a {NETWORK}-peer overlay (MFS stack, 20 simulated minutes)...")
    sim = GuessSimulation(
        SystemParams(network_size=NETWORK, lifespan_multiplier=0.3),
        # A small cache + the efficiency-oriented MFS stack concentrate
        # references on the big sharers — exactly the sparse, hub-heavy
        # overlay that makes targeted removal dangerous.  (With the
        # default CacheSize of 100 the overlay is so dense that even
        # targeted removal barely dents it — worth trying.)
        ProtocolParams.all_same_policy("MFS", cache_size=8),
        seed=13,
    )
    sim.run(1200.0)
    stats = OverlayStats(sim.snapshot_overlay())

    in_q = stats.in_degree_quantiles((0.5, 0.99))
    print(
        f"\nin-degree: median {in_q[0.5]:.0f}, "
        f"99th percentile {in_q[0.99]:.0f} "
        "(a few peers sit in very many caches)"
    )
    top = stats.most_referenced(3)
    print("most-referenced peers:", ", ".join(
        f"#{address} ({count} caches)" for address, count in top
    ))

    rng = random.Random(0)
    rows = []
    for fraction in (0.01, 0.05, 0.10):
        targeted = stats.targeted_removal_lcc(fraction)
        randoms = stats.random_removal_lcc(fraction, rng)
        rows.append((f"{fraction:.0%}", randoms, targeted))
    print()
    print(
        format_table(
            ("Peers removed", "Random removal LCC", "Targeted removal LCC"),
            rows,
            title=f"Surviving largest component (of {NETWORK})",
        )
    )
    print(
        "\ntargeted removal of the most-referenced peers shatters this\n"
        "sparse overlay while random churn of the same size barely dents\n"
        "it — the §3.3 fragmentation-attack exposure, quantified.  The\n"
        "paper's remedies: bigger caches add redundancy (denser overlay),\n"
        "and healthy pinging (Figs. 6-7) re-knits it faster than\n"
        "attackers can hollow it out."
    )


if __name__ == "__main__":
    main()
