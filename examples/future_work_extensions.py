#!/usr/bin/env python3
"""Future-work extensions: the threads the paper left open, measured.

Four mini-demos on top of the reproduced core:

1. **Adaptive PingInterval** (§6.1) — a controller that tightens
   maintenance when probes keep finding corpses.
2. **Adaptive parallel probing** (§6.2) — start serial, double the wave
   width on dry spells; rare items get fast answers without blowing up
   the probe bill for popular ones.
3. **Selfish peers and probe payments** (§3.3) — a selfish peer blasts
   the whole network per query; a token-bucket probe budget caps it.
4. **Malicious-peer detection** (§6.4) — pong-provenance heuristics
   rescue the MR policy from the colluding attack that defeats it.

Run:
    python examples/future_work_extensions.py
"""

import random

from repro import (
    BadPongBehavior,
    GuessSimulation,
    ProtocolParams,
    SystemParams,
)
from repro.extensions import (
    AdaptivePingController,
    DefenseConfig,
    PongDefense,
    ProbeBudget,
    execute_selfish_query,
)
from repro.extensions.detection import install_defense


def demo_adaptive_ping() -> None:
    print("1) adaptive PingInterval")
    controller = AdaptivePingController(initial_interval=120.0)
    print(f"   start at {controller.interval:.0f}s between pings")
    for _ in range(10):  # a burst of dead probes: churn got worse
        controller.observe(dead=True)
    print(f"   after 10 dead probes  : {controller.interval:.0f}s (tightened)")
    for _ in range(30):  # long healthy streak: relax again
        controller.observe(dead=False)
    print(f"   after 30 live probes  : {controller.interval:.0f}s (relaxing)\n")


def demo_selfish_and_payments() -> None:
    print("2) selfish peers vs probe payments")
    sim = GuessSimulation(
        SystemParams(network_size=300), ProtocolParams(), seed=3
    )
    sim.run(120.0)  # warm the caches
    selfish_peer = sim.live_good_peers[0]
    rng = random.Random(0)
    target = sim.content.draw_query_target(rng)

    unbounded = execute_selfish_query(
        selfish_peer, target, sim.transport, sim.now, rng=rng
    )
    print(
        f"   no payments: {unbounded.probes} probes fired in "
        f"{unbounded.duration:.1f}s of protocol time"
    )
    budget = ProbeBudget(refill_rate=0.5, capacity=25)
    bounded = execute_selfish_query(
        selfish_peer, target, sim.transport, sim.now, rng=rng, budget=budget
    )
    print(
        f"   with budget: {bounded.probes} probes "
        f"(bucket now {budget.available(sim.now)} credits)\n"
    )


def demo_detection() -> None:
    print("3) detection vs the colluding attack (MR stack, 20% attackers)")
    for defended in (False, True):
        sim = GuessSimulation(
            SystemParams(
                network_size=300,
                percent_bad_peers=20.0,
                bad_pong_behavior=BadPongBehavior.BAD,
            ),
            ProtocolParams.all_same_policy("MR", cache_size=30),
            seed=19,
            warmup=200.0,
        )
        if defended:
            install_defense(sim, DefenseConfig(min_observations=5))
        sim.run(900.0)
        report = sim.report()
        label = "defended  " if defended else "undefended"
        print(
            f"   {label}: unsatisfied {report.unsatisfied_rate:5.1%}, "
            f"good cache entries {report.mean_good_entries:4.1f}/30"
        )
    print()


def demo_defense_object() -> None:
    print("4) what the defense learns (one peer's view)")
    defense = PongDefense(DefenseConfig(min_observations=5))
    # A poisoner (address 66) keeps sharing entries that die on probe.
    for fake in range(900, 908):
        defense.record_import(fake, source=66)
        defense.record_dead(fake)
    shared, dead, barren, productive = defense.source_stats(66)
    print(
        f"   source 66: shared={shared} dead={dead} barren={barren} "
        f"productive={productive} -> blacklisted={defense.blocked(66)}"
    )


def main() -> None:
    demo_adaptive_ping()
    demo_selfish_and_payments()
    demo_detection()
    demo_defense_object()


if __name__ == "__main__":
    main()
