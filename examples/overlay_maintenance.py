#!/usr/bin/env python3
"""Overlay maintenance: tune PingInterval against fragmentation.

A GUESS overlay has no standing connections — it stays connected only
because peers ping their link-cache entries and evict corpses.  This
example reproduces the paper's §6.1 connectivity analysis for one
deployment question: *how lazy can maintenance get before the overlay
fragments?*  (Paper Figures 6 and 7.)

Run:
    python examples/overlay_maintenance.py
"""

from repro import GuessSimulation, ProtocolParams, SystemParams
from repro.reporting.series import format_series_block

NETWORK = 400
INTERVALS = (10.0, 30.0, 120.0, 300.0, 600.0)
CACHE_SIZES = (5, 20, 50)


def largest_component(cache_size: int, ping_interval: float) -> int:
    # Pings only, under heavy churn (10x-shortened sessions): this is
    # the regime where maintenance laziness actually fragments the
    # overlay — at measured Gnutella session times it never does within
    # this interval range.
    system = SystemParams(
        network_size=NETWORK, query_rate=0.0, lifespan_multiplier=0.1
    )
    protocol = ProtocolParams(
        cache_size=cache_size, ping_interval=ping_interval
    )
    sim = GuessSimulation(
        system, protocol, seed=31, health_sample_interval=None
    )
    sim.run(1500.0)
    return sim.snapshot_overlay().largest_component_size()


def main() -> None:
    print(
        f"measuring overlay connectivity ({NETWORK} peers, queries off, "
        "25 simulated minutes per point)...\n"
    )
    series = {}
    for cache_size in CACHE_SIZES:
        label = f"CacheSize={cache_size}"
        series[label] = [
            (interval, largest_component(cache_size, interval))
            for interval in INTERVALS
        ]
        print(f"  swept {label}")
    print()
    print(
        format_series_block(
            series,
            x_label="PingInterval (s)",
            title=f"Largest connected component (of {NETWORK})",
        )
    )
    print(
        "\nsmall caches fragment first as pings get lazy: connectivity\n"
        "depends on the absolute number of live pointers per peer, and a\n"
        "small cache has fewer pointers to lose (paper §6.1).  The paper's\n"
        "guidance: pick CacheSize for query performance, then shrink\n"
        "PingInterval until almost all entries stay live."
    )


if __name__ == "__main__":
    main()
