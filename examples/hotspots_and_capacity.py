#!/usr/bin/env python3
"""Hotspots: who carries the load, and what happens at capacity.

Efficiency-oriented policies steer probes toward the few peers that
share the most (or answer the most), concentrating load (paper Figure
13).  This example shows the concentration, then caps every peer's
capacity and demonstrates the protocol's inherent throttling: refused
probes rise, yet satisfaction barely moves (Figures 14-15).

Run:
    python examples/hotspots_and_capacity.py
"""

from repro import GuessSimulation, ProtocolParams, SystemParams
from repro.reporting.tables import format_table

NETWORK = 400


def load_profile(label: str, protocol: ProtocolParams) -> tuple:
    sim = GuessSimulation(
        SystemParams(network_size=NETWORK), protocol, seed=47, warmup=200.0
    )
    sim.run(1200.0)
    report = sim.report()
    dist = report.load_distribution()
    return (
        label,
        dist.total,
        dist.load_at_rank(1),
        dist.top_share(0.01),
        round(dist.gini(), 3),
    )


def capacity_run(max_probes: int | None) -> tuple:
    protocol = ProtocolParams.all_same_policy("MR")
    sim = GuessSimulation(
        SystemParams(network_size=NETWORK, max_probes_per_second=max_probes),
        protocol,
        seed=47,
        warmup=200.0,
    )
    sim.run(1200.0)
    report = sim.report()
    return (
        "unlimited" if max_probes is None else max_probes,
        report.good_probes_per_query,
        report.refused_probes_per_query,
        report.unsatisfied_rate,
    )


def main() -> None:
    print(f"load concentration across policy stacks ({NETWORK} peers):\n")
    rows = [
        load_profile("Random/Random", ProtocolParams()),
        load_profile("MFS/MFS/LFS", ProtocolParams.all_same_policy("MFS")),
        load_profile("MR/MR/LR", ProtocolParams.all_same_policy("MR")),
    ]
    print(
        format_table(
            ("Stack", "Total probes", "Busiest peer",
             "Top-1% share", "Gini"),
            rows,
            title="Who receives the probes (paper Fig. 13)",
        )
    )
    print(
        "\nMFS/MR focus load on productive peers — unfair, but the total "
        "probe volume drops severalfold.\n"
    )

    print("now capping per-peer capacity under the MR stack:\n")
    capacity_rows = [capacity_run(c) for c in (None, 10, 2)]
    print(
        format_table(
            ("MaxProbes/s", "Good/Query", "Refused/Query", "Unsatisfied"),
            capacity_rows,
            title="Capacity limits (paper Figs. 14-15)",
        )
    )
    print(
        "\nrefusals rise as capacity tightens, but satisfaction holds: a "
        "refused peer is evicted\nfrom the prober's cache and stops "
        "circulating in pongs, shedding hotspot load."
    )


if __name__ == "__main__":
    main()
