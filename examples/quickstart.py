#!/usr/bin/env python3
"""Quickstart: run a GUESS network and read the headline metrics.

Simulates 500 peers for 30 minutes (simulated) with the paper's default
configuration (Tables 1-2), then prints the metrics the paper evaluates:
probes per query, unsatisfied-query rate, probe breakdown, and cache
health.

Run:
    python examples/quickstart.py
"""

from repro import GuessSimulation, ProtocolParams, SystemParams


def main() -> None:
    system = SystemParams(network_size=500)
    protocol = ProtocolParams()  # all-Random policies, CacheSize 100

    sim = GuessSimulation(system, protocol, seed=7, warmup=300.0)
    print(f"simulating {system.network_size} peers for 30 simulated minutes...")
    sim.run(1800.0)
    report = sim.report()

    print(f"\nqueries executed      : {report.queries}")
    print(f"probes per query      : {report.probes_per_query:.1f}")
    print(f"  good (live peers)   : {report.good_probes_per_query:.1f}")
    print(f"  dead (wasted)       : {report.dead_probes_per_query:.1f}")
    print(f"  refused (overload)  : {report.refused_probes_per_query:.2f}")
    print(f"unsatisfied queries   : {report.unsatisfied_rate:.1%}")
    print(f"mean response time    : {report.mean_response_time:.2f}s")
    print(f"live cache entries    : {report.mean_fraction_live:.0%} "
          f"({report.mean_absolute_live:.1f} of {protocol.cache_size})")
    print(f"peer churn            : {report.deaths} deaths over the run")

    overlay = sim.snapshot_overlay()
    print(f"overlay connectivity  : largest component "
          f"{overlay.largest_component_size()}/{system.network_size}")


if __name__ == "__main__":
    main()
