"""Bursty query-arrival process.

Paper Section 5.1: "The generation of queries at each peer follows a
bursty pattern, in which a number of queries (number uniformly chosen
between 1 and 5) are submitted in succession, followed by a long wait.
The arrival of bursts follow a Poisson process, and the overall rate of
queries per user is given by QueryRate."

:class:`QueryBurstProcess` captures exactly that: exponential burst
inter-arrivals with the rate derated by the mean burst size, so the
long-run per-user query rate equals ``QueryRate``.
"""

from __future__ import annotations

import random

from repro.errors import WorkloadError

#: Burst sizes are uniform on [MIN_BURST, MAX_BURST] (paper: 1..5).
MIN_BURST = 1
MAX_BURST = 5

#: Default per-user query rate from Table 1.
DEFAULT_QUERY_RATE = 9.26e-3


class QueryBurstProcess:
    """Per-peer bursty Poisson query generator.

    Args:
        query_rate: expected queries per user per second (Table 1 default
            ``9.26e-3``).
        min_burst / max_burst: inclusive burst-size bounds.

    Example::

        process = QueryBurstProcess(query_rate=9.26e-3)
        delay = process.next_burst_delay(rng)   # seconds to next burst
        size = process.burst_size(rng)          # 1..5 queries
    """

    def __init__(
        self,
        query_rate: float = DEFAULT_QUERY_RATE,
        min_burst: int = MIN_BURST,
        max_burst: int = MAX_BURST,
    ) -> None:
        if query_rate < 0:
            raise WorkloadError(f"query_rate must be >= 0, got {query_rate}")
        if min_burst < 1 or max_burst < min_burst:
            raise WorkloadError(
                f"burst bounds must satisfy 1 <= min <= max, "
                f"got [{min_burst}, {max_burst}]"
            )
        self.query_rate = float(query_rate)
        self.min_burst = int(min_burst)
        self.max_burst = int(max_burst)

    @property
    def mean_burst_size(self) -> float:
        """Expected queries per burst."""
        return (self.min_burst + self.max_burst) / 2.0

    @property
    def burst_rate(self) -> float:
        """Bursts per second yielding the configured per-user query rate."""
        return self.query_rate / self.mean_burst_size

    def next_burst_delay(self, rng: random.Random) -> float:
        """Exponential delay (seconds) until the peer's next burst.

        Returns ``inf`` when the query rate is zero (ping-only
        simulations, used by the connectivity experiments).
        """
        rate = self.burst_rate
        if rate == 0.0:
            return float("inf")
        return rng.expovariate(rate)

    def burst_size(self, rng: random.Random) -> int:
        """Uniform burst size in ``[min_burst, max_burst]``."""
        return rng.randint(self.min_burst, self.max_burst)
