"""Content catalog, ownership, and query matching.

The paper determines "whether a peer returns a result for a query" with
the query model of Yang & Garcia-Molina [21], in which the probability of
answering rises with the peer's library size.  That model is parameterised
by proprietary OpenNap traces, so we build the equivalent *explicit*
content model (DESIGN.md §2):

* a catalog of ``catalog_size`` distinct files, ranked by popularity;
* each peer's library is a set of file ranks drawn from a Zipf
  distribution over the catalog (popular files are widely replicated),
  with the library *size* supplied by the caller (the
  :class:`~repro.workload.files.FileCountModel` draw that also populates
  the ``NumFiles`` cache field);
* query targets are drawn from a Zipf distribution over the same ranks,
  plus a ``nonexistent_p`` chance of asking for something nobody has —
  the paper states that ≈6% of queries at NetworkSize 1000 are
  unsatisfiable even if every peer is probed (Section 6.2), and this knob
  (plus the natural rare-file tail) reproduces that floor.

A probe matches iff the queried rank is in the probed peer's library, so
the [21] property "peers with more files answer more queries" emerges
directly.
"""

from __future__ import annotations

import random
from typing import FrozenSet

from repro.errors import WorkloadError
from repro.workload.distributions import ZipfSampler

#: Sentinel rank for queries targeting content that no peer owns.
NONEXISTENT_FILE = -1

#: Catalog size giving a realistic rare-item tail at NetworkSize ~1000.
DEFAULT_CATALOG_SIZE = 20_000

#: Replication skew: how strongly popular files dominate libraries.
DEFAULT_OWNERSHIP_EXPONENT = 0.8

#: Query skew: how strongly queries concentrate on popular files.
DEFAULT_QUERY_EXPONENT = 0.8

#: Probability a query asks for a nonexistent item (calibrates the ~6%
#: unsatisfiable floor together with the natural rare-file tail).
DEFAULT_NONEXISTENT_P = 0.05


class ContentModel:
    """Assigns libraries to peers and draws query targets.

    Args:
        catalog_size: number of distinct files in the universe.
        ownership_exponent: Zipf skew of replication.
        query_exponent: Zipf skew of query popularity.
        nonexistent_p: probability a query targets no existing file.

    The model is stateless across peers: libraries are value objects
    (frozensets of ranks) owned by the peers themselves, so peer death
    needs no bookkeeping here.
    """

    def __init__(
        self,
        catalog_size: int = DEFAULT_CATALOG_SIZE,
        ownership_exponent: float = DEFAULT_OWNERSHIP_EXPONENT,
        query_exponent: float = DEFAULT_QUERY_EXPONENT,
        nonexistent_p: float = DEFAULT_NONEXISTENT_P,
    ) -> None:
        if catalog_size < 1:
            raise WorkloadError(
                f"catalog_size must be >= 1, got {catalog_size}"
            )
        if not 0.0 <= nonexistent_p < 1.0:
            raise WorkloadError(
                f"nonexistent_p must be in [0, 1), got {nonexistent_p}"
            )
        self.catalog_size = int(catalog_size)
        self.nonexistent_p = float(nonexistent_p)
        self._ownership = ZipfSampler(catalog_size, ownership_exponent)
        self._queries = ZipfSampler(catalog_size, query_exponent)

    # ------------------------------------------------------------------
    # Libraries
    # ------------------------------------------------------------------

    def build_library(self, rng: random.Random, num_files: int) -> FrozenSet[int]:
        """Sample the library (set of file ranks) for a peer.

        Args:
            rng: stream to draw from.
            num_files: the peer's shared-file count.  Draws are made with
                replacement, so the resulting set may be slightly smaller
                than ``num_files`` (duplicates collapse) — harmless, since
                ``NumFiles`` advertises the nominal count, exactly like a
                real client advertising its configured share.

        Returns:
            Frozen set of owned ranks; empty for free riders.
        """
        if num_files < 0:
            raise WorkloadError(f"num_files must be >= 0, got {num_files}")
        if num_files == 0:
            return frozenset()
        draws = min(num_files, self.catalog_size * 4)
        return frozenset(self._ownership.sample_many(rng, draws))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def draw_query_target(self, rng: random.Random) -> int:
        """Draw the file rank a query asks for.

        Returns:
            A rank in ``[1, catalog_size]``, or :data:`NONEXISTENT_FILE`
            with probability ``nonexistent_p``.
        """
        if self.nonexistent_p and rng.random() < self.nonexistent_p:
            return NONEXISTENT_FILE
        return self._queries.sample(rng)

    @staticmethod
    def matches(library: FrozenSet[int], target: int) -> bool:
        """Whether a peer owning ``library`` can answer a query for ``target``."""
        if target == NONEXISTENT_FILE:
            return False
        return target in library

    def expected_owner_probability(self, rank: int) -> float:
        """Probability mass of ``rank`` under the ownership distribution.

        Diagnostic used by calibration tests to reason about replication.
        """
        return self._ownership.probability(rank)
