"""Workload substrate: churn, content, and query models.

The paper parameterises its simulation with measured Gnutella data
(Saroiu et al. [18]) and the hybrid-P2P query model of Yang &
Garcia-Molina [21].  Neither dataset is available, so this subpackage
builds synthetic equivalents calibrated to the published summary
statistics; the substitutions are documented in DESIGN.md §2.

* :mod:`repro.workload.distributions` — reusable samplers (Zipf,
  log-normal, Pareto, empirical).
* :mod:`repro.workload.lifetimes` — peer session durations with the
  ``LifespanMultiplier`` stress knob.
* :mod:`repro.workload.files` — shared-file counts (free riders + heavy
  tail).
* :mod:`repro.workload.content` — the file catalog, ownership assignment
  and query matching (which peers can answer which query).
* :mod:`repro.workload.queries` — bursty Poisson query arrivals
  (1-5 queries per burst, paper Section 5.1).
"""

from repro.workload.content import ContentModel
from repro.workload.distributions import (
    BoundedParetoSampler,
    EmpiricalSampler,
    LogNormalSampler,
    ZipfSampler,
)
from repro.workload.files import FileCountModel
from repro.workload.lifetimes import LifetimeModel
from repro.workload.queries import QueryBurstProcess
from repro.workload.trace_io import (
    lifetime_model_from_file,
    load_trace,
    save_trace,
)

__all__ = [
    "lifetime_model_from_file",
    "load_trace",
    "save_trace",
    "ContentModel",
    "BoundedParetoSampler",
    "EmpiricalSampler",
    "LogNormalSampler",
    "ZipfSampler",
    "FileCountModel",
    "LifetimeModel",
    "QueryBurstProcess",
]
