"""Reading and writing workload traces.

DESIGN.md documents that the synthetic lifetime and file-count models
stand in for the measured Gnutella traces the paper used.  This module
makes the swap a one-liner when a real trace is available:

* traces are one-value-per-line text files (comments with ``#``),
  the least assuming interchange format there is;
* :func:`load_trace` / :func:`save_trace` round-trip them;
* :func:`lifetime_model_from_file` builds a
  :class:`~repro.workload.lifetimes.LifetimeModel` straight from disk.

Example::

    save_trace("sessions.txt", measured_session_times)
    model = lifetime_model_from_file("sessions.txt", multiplier=0.2)
    sim = GuessSimulation(system, protocol, lifetime_model=model)
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import List, Sequence, Union

from repro.errors import WorkloadError
from repro.workload.lifetimes import LifetimeModel

PathLike = Union[str, Path]


def save_trace(path: PathLike, values: Sequence[float], header: str = "") -> None:
    """Write a one-value-per-line trace file.

    Args:
        path: destination file.
        values: the observations (must be finite).
        header: optional comment written as ``# ...`` lines at the top.

    Raises:
        WorkloadError: on empty or non-finite input.
    """
    if not values:
        raise WorkloadError("refusing to write an empty trace")
    if not all(math.isfinite(v) for v in values):
        raise WorkloadError("trace values must be finite")
    lines: List[str] = []
    for line in header.splitlines():
        lines.append(f"# {line}")
    lines.extend(repr(float(v)) for v in values)
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def load_trace(path: PathLike) -> List[float]:
    """Read a one-value-per-line trace file.

    Blank lines and ``#`` comments are skipped.

    Raises:
        WorkloadError: if the file yields no values or contains
            non-numeric lines.
    """
    values: List[float] = []
    for lineno, raw in enumerate(
        Path(path).read_text(encoding="utf-8").splitlines(), start=1
    ):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            value = float(line)
        except ValueError:
            raise WorkloadError(
                f"{path}:{lineno}: not a number: {line!r}"
            ) from None
        if not math.isfinite(value):
            raise WorkloadError(f"{path}:{lineno}: non-finite value")
        values.append(value)
    if not values:
        raise WorkloadError(f"{path}: no values found")
    return values


def lifetime_model_from_file(
    path: PathLike, multiplier: float = 1.0
) -> LifetimeModel:
    """A :class:`LifetimeModel` resampling a measured session-time trace.

    This is the intended hook for replacing the synthetic Saroiu-like
    sample with the real thing.

    Raises:
        WorkloadError: if the trace contains non-positive values (a
            session time of zero or less is meaningless).
    """
    values = load_trace(path)
    if any(v <= 0 for v in values):
        raise WorkloadError(f"{path}: session times must be positive")
    return LifetimeModel(multiplier=multiplier, sample=values)
