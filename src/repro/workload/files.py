"""Shared-file-count model.

The paper assigns each peer a number of shared files "according to the
distribution of files measured by [18] over Gnutella" (Section 5.1).  The
published headline facts of that measurement are:

* roughly a quarter of peers share **no files at all** (free riders);
* among sharers the distribution is heavy-tailed — most share a few dozen
  files, while a small minority (~7%) serve the majority of all content.

We reproduce that shape with a mixture: with probability ``free_rider_p``
a peer shares 0 files; otherwise its library size is log-normal (body)
with a bounded-Pareto tail grafted on for the largest sharers.  The
``NumFiles`` cache-entry field and the MFS/LFS policies read these values
directly, so only the skew matters for the experiments — which the mixture
preserves.
"""

from __future__ import annotations

import random

from repro.errors import WorkloadError
from repro.workload.distributions import BoundedParetoSampler, LogNormalSampler

#: Fraction of peers sharing nothing (Saroiu et al. report ~25%).
DEFAULT_FREE_RIDER_P = 0.25

#: Median library size among sharers.
DEFAULT_MEDIAN_FILES = 100.0

#: Log-normal body shape.
DEFAULT_SIGMA = 1.2

#: Fraction of sharers drawn from the Pareto tail instead of the body.
DEFAULT_TAIL_P = 0.07

#: Tail parameters: heavy (alpha ~1) between 1k and 50k files.
DEFAULT_TAIL_ALPHA = 1.0
DEFAULT_TAIL_LOWER = 1_000.0
DEFAULT_TAIL_UPPER = 50_000.0


class FileCountModel:
    """Samples per-peer shared-file counts.

    Args:
        free_rider_p: probability a peer shares zero files.
        median_files: median library size among sharers (body).
        sigma: log-normal body shape.
        tail_p: probability a sharer is drawn from the Pareto tail.
        tail_alpha / tail_lower / tail_upper: bounded-Pareto tail.

    Example::

        model = FileCountModel()
        n = model.sample(rng)   # 0 for free riders, else >= 1
    """

    def __init__(
        self,
        free_rider_p: float = DEFAULT_FREE_RIDER_P,
        median_files: float = DEFAULT_MEDIAN_FILES,
        sigma: float = DEFAULT_SIGMA,
        tail_p: float = DEFAULT_TAIL_P,
        tail_alpha: float = DEFAULT_TAIL_ALPHA,
        tail_lower: float = DEFAULT_TAIL_LOWER,
        tail_upper: float = DEFAULT_TAIL_UPPER,
    ) -> None:
        if not 0.0 <= free_rider_p < 1.0:
            raise WorkloadError(
                f"free_rider_p must be in [0, 1), got {free_rider_p}"
            )
        if not 0.0 <= tail_p < 1.0:
            raise WorkloadError(f"tail_p must be in [0, 1), got {tail_p}")
        self.free_rider_p = float(free_rider_p)
        self.tail_p = float(tail_p)
        self._body = LogNormalSampler(median=median_files, sigma=sigma)
        self._tail = BoundedParetoSampler(
            alpha=tail_alpha, lower=tail_lower, upper=tail_upper
        )

    def sample(self, rng: random.Random) -> int:
        """Draw one shared-file count (0 for free riders, else >= 1)."""
        if rng.random() < self.free_rider_p:
            return 0
        if rng.random() < self.tail_p:
            return max(1, int(round(self._tail.sample(rng))))
        return max(1, int(round(self._body.sample(rng))))

    def sample_many(self, rng: random.Random, count: int) -> list[int]:
        """Draw ``count`` i.i.d. shared-file counts."""
        if count < 0:
            raise WorkloadError(f"count must be >= 0, got {count}")
        return [self.sample(rng) for _ in range(count)]
