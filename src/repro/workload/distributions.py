"""Reusable random samplers for workload modelling.

All samplers draw from a caller-supplied :class:`random.Random` stream so
that every consumer participates in the named-stream determinism scheme
(:mod:`repro.sim.rng`).  Samplers precompute whatever they can (e.g. the
Zipf CDF) so per-draw cost is a binary search or a couple of arithmetic
operations.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import List, Sequence

from repro.errors import WorkloadError


class ZipfSampler:
    """Samples ranks 1..n with probability proportional to ``1 / rank**s``.

    Zipf-distributed popularity is the standard model for both file
    replication and query frequency in P2P measurement studies.  The
    sampler precomputes the cumulative distribution and draws by inverse
    transform (binary search), so each draw is O(log n).

    Args:
        n: number of ranks (>= 1).
        exponent: the Zipf skew parameter ``s`` (>= 0; 0 is uniform).
    """

    def __init__(self, n: int, exponent: float = 1.0) -> None:
        if n < 1:
            raise WorkloadError(f"Zipf n must be >= 1, got {n}")
        if exponent < 0:
            raise WorkloadError(f"Zipf exponent must be >= 0, got {exponent}")
        self.n = int(n)
        self.exponent = float(exponent)
        weights = [1.0 / (rank ** exponent) for rank in range(1, n + 1)]
        total = math.fsum(weights)
        cdf: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            cdf.append(acc)
        cdf[-1] = 1.0  # guard against float round-off
        self._cdf = cdf

    def probability(self, rank: int) -> float:
        """Probability mass of ``rank`` (1-based)."""
        if not 1 <= rank <= self.n:
            raise WorkloadError(f"rank must be in [1, {self.n}], got {rank}")
        lo = self._cdf[rank - 2] if rank >= 2 else 0.0
        return self._cdf[rank - 1] - lo

    def sample(self, rng: random.Random) -> int:
        """Draw a rank in ``[1, n]``."""
        return bisect.bisect_left(self._cdf, rng.random()) + 1

    def sample_many(self, rng: random.Random, count: int) -> List[int]:
        """Draw ``count`` i.i.d. ranks."""
        cdf = self._cdf
        rand = rng.random
        return [bisect.bisect_left(cdf, rand()) + 1 for _ in range(count)]


class LogNormalSampler:
    """Log-normal sampler parameterised by *median* and shape ``sigma``.

    Medians are how measurement papers usually report session times and
    library sizes, so the constructor takes the median directly
    (``mu = ln(median)``).

    Args:
        median: median of the distribution (> 0).
        sigma: shape parameter (> 0); larger values mean a heavier tail.
    """

    def __init__(self, median: float, sigma: float) -> None:
        if median <= 0:
            raise WorkloadError(f"median must be > 0, got {median}")
        if sigma <= 0:
            raise WorkloadError(f"sigma must be > 0, got {sigma}")
        self.median = float(median)
        self.sigma = float(sigma)
        self._mu = math.log(median)

    def sample(self, rng: random.Random) -> float:
        """Draw one positive value."""
        return rng.lognormvariate(self._mu, self.sigma)

    def mean(self) -> float:
        """Analytic mean ``exp(mu + sigma^2 / 2)``."""
        return math.exp(self._mu + self.sigma**2 / 2.0)


class BoundedParetoSampler:
    """Pareto sampler truncated to ``[lower, upper]`` by inverse transform.

    Used for the heavy tail of the shared-file-count model: a small
    fraction of peers share enormous libraries, but the simulator needs a
    finite upper bound to stay well-behaved.

    Args:
        alpha: tail index (> 0); smaller is heavier.
        lower: inclusive lower bound (> 0).
        upper: inclusive upper bound (> lower).
    """

    def __init__(self, alpha: float, lower: float, upper: float) -> None:
        if alpha <= 0:
            raise WorkloadError(f"alpha must be > 0, got {alpha}")
        if lower <= 0:
            raise WorkloadError(f"lower must be > 0, got {lower}")
        if upper <= lower:
            raise WorkloadError(
                f"upper must exceed lower, got [{lower}, {upper}]"
            )
        self.alpha = float(alpha)
        self.lower = float(lower)
        self.upper = float(upper)
        # Precompute the CDF normaliser for the truncated support.
        self._l_a = lower**alpha
        self._ratio = (lower / upper) ** alpha

    def sample(self, rng: random.Random) -> float:
        """Draw one value in ``[lower, upper]``."""
        u = rng.random()
        denom = 1.0 - u * (1.0 - self._ratio)
        return (self._l_a / denom) ** (1.0 / self.alpha)


class EmpiricalSampler:
    """Resamples (with interpolation) from an observed sample.

    Stands in for "drawn randomly from this measured sample" (how the
    paper uses the [18] lifetime trace).  Sampling picks a uniform point
    on the empirical CDF and linearly interpolates between order
    statistics, which smooths small samples without changing their shape.

    Args:
        observations: the measured values (at least one, all finite).
    """

    def __init__(self, observations: Sequence[float]) -> None:
        if not observations:
            raise WorkloadError("EmpiricalSampler needs at least one observation")
        values = sorted(float(v) for v in observations)
        if not all(math.isfinite(v) for v in values):
            raise WorkloadError("observations must be finite")
        self._values = values

    def sample(self, rng: random.Random) -> float:
        """Draw one value by interpolated inverse-CDF resampling."""
        values = self._values
        if len(values) == 1:
            return values[0]
        position = rng.random() * (len(values) - 1)
        index = int(position)
        frac = position - index
        if index + 1 >= len(values):
            return values[-1]
        return values[index] * (1.0 - frac) + values[index + 1] * frac

    def quantile(self, q: float) -> float:
        """Interpolated empirical quantile, ``q`` in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise WorkloadError(f"q must be in [0, 1], got {q}")
        values = self._values
        if len(values) == 1:
            return values[0]
        position = q * (len(values) - 1)
        index = int(position)
        frac = position - index
        if index + 1 >= len(values):
            return values[-1]
        return values[index] * (1.0 - frac) + values[index + 1] * frac

    def __len__(self) -> int:
        return len(self._values)
