"""Peer session-time (lifetime) model.

The paper draws lifetimes "randomly from this sample" of Gnutella session
times measured by Saroiu et al. [18], optionally scaled by
``LifespanMultiplier`` (paper Section 5.1).  The trace itself is not
available, so we regenerate a synthetic sample from the published summary
statistics of that study: the median Gnutella session was around one hour,
with a heavy right tail (some peers stay for days) and a large mass of
very short sessions.  A log-normal with median 3600 s and sigma 1.4
matches those facts; the synthetic sample is then wrapped in the same
"draw from a sample" machinery (:class:`EmpiricalSampler`) the paper
describes, so swapping in a real trace later is a one-liner.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.errors import WorkloadError
from repro.sim.rng import RngRegistry
from repro.workload.distributions import EmpiricalSampler, LogNormalSampler

#: Median Gnutella session time reported by Saroiu et al. (~60 minutes).
DEFAULT_MEDIAN_LIFETIME_S = 3600.0

#: Log-normal shape reproducing the measured heavy tail.
DEFAULT_SIGMA = 1.4

#: Size of the synthetic "measured sample" the model resamples from.
DEFAULT_SAMPLE_SIZE = 10_000

#: Floor on session length; sub-10s sessions churn faster than any protocol
#: timer in the paper and only add noise.
MIN_LIFETIME_S = 10.0


def synthesize_lifetime_sample(
    size: int = DEFAULT_SAMPLE_SIZE,
    median: float = DEFAULT_MEDIAN_LIFETIME_S,
    sigma: float = DEFAULT_SIGMA,
    seed: int = 0x5A601,
) -> list[float]:
    """Generate the synthetic stand-in for the [18] session-time trace.

    The sample is produced from its own fixed-seed stream so that every
    simulation run resamples from the *same* synthetic trace, exactly as
    the paper resamples from the same measured trace.
    """
    if size < 1:
        raise WorkloadError(f"sample size must be >= 1, got {size}")
    sampler = LogNormalSampler(median=median, sigma=sigma)
    rng = random.Random(seed)
    return [max(MIN_LIFETIME_S, sampler.sample(rng)) for _ in range(size)]


class LifetimeModel:
    """Draws peer lifetimes, honouring ``LifespanMultiplier``.

    Args:
        multiplier: the paper's ``LifespanMultiplier``; every drawn value
            is multiplied by it (e.g. 0.2 in the cache-size experiments to
            stress maintenance).
        sample: the session-time trace to resample from.  Defaults to the
            synthetic Saroiu-like sample.

    Example::

        model = LifetimeModel(multiplier=0.2)
        t = model.sample(rng_registry.stream("lifetimes"))
    """

    def __init__(
        self,
        multiplier: float = 1.0,
        sample: Optional[Sequence[float]] = None,
    ) -> None:
        if multiplier <= 0:
            raise WorkloadError(
                f"LifespanMultiplier must be > 0, got {multiplier}"
            )
        self.multiplier = float(multiplier)
        trace = sample if sample is not None else synthesize_lifetime_sample()
        if any(v <= 0 for v in trace):
            raise WorkloadError("lifetimes must be positive")
        self._sampler = EmpiricalSampler(trace)

    def sample(self, rng: random.Random) -> float:
        """Draw one lifetime in seconds (scaled by the multiplier)."""
        return self._sampler.sample(rng) * self.multiplier

    def median(self) -> float:
        """Median of the scaled distribution."""
        return self._sampler.quantile(0.5) * self.multiplier

    @classmethod
    def from_registry(
        cls, rng_registry: RngRegistry, multiplier: float = 1.0
    ) -> "LifetimeModel":
        """Build a model bound to the registry's ``lifetimes`` stream.

        Provided for symmetry with other workload factories; the model
        itself is stateless across draws, so this simply constructs it.
        """
        del rng_registry  # lifetimes resample a fixed trace; no stream needed
        return cls(multiplier=multiplier)
