"""Fixed-width ASCII table rendering."""

from __future__ import annotations

from typing import Any, List, Sequence


def _render_cell(value: Any) -> str:
    """Human-friendly cell text: floats get 4 significant-ish digits."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == int(value) and abs(value) < 1e12:
            return str(int(value))
        if abs(value) >= 100:
            return f"{value:.1f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(
    columns: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``columns`` as a boxed ASCII table.

    Raises:
        ValueError: if any row's width differs from the header's.
    """
    header = [str(c) for c in columns]
    body: List[List[str]] = []
    for row in rows:
        if len(row) != len(header):
            raise ValueError(
                f"row width {len(row)} does not match {len(header)} columns: {row!r}"
            )
        body.append([_render_cell(cell) for cell in row])

    widths = [len(h) for h in header]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.rjust(w) for c, w in zip(cells, widths)) + " |"

    rule = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(rule)
    parts.append(line(header))
    parts.append(rule)
    for row in body:
        parts.append(line(row))
    parts.append(rule)
    return "\n".join(parts)
