"""Labelled x/y series rendering — the text form of the paper's figures.

A "figure" in this reproduction is a set of named series over a shared
x-axis.  :func:`format_series_block` renders them as one aligned table
with the x values in the first column and one column per series, which
diffs cleanly and reads fine in a terminal.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.reporting.tables import format_table

Series = Sequence[Tuple[float, float]]


def format_series_block(
    series: Dict[str, Series],
    x_label: str,
    title: str | None = None,
) -> str:
    """Render named series sharing an x-axis as one aligned table.

    Series may have different x supports; missing cells render as ``-``.

    Raises:
        ValueError: if ``series`` is empty.
    """
    if not series:
        raise ValueError("need at least one series")
    xs: List[float] = sorted(
        {x for points in series.values() for x, _ in points}
    )
    by_name = {
        name: dict(points) for name, points in series.items()
    }
    columns = [x_label] + list(series.keys())
    rows = []
    for x in xs:
        row: List[object] = [x]
        for name in series:
            value = by_name[name].get(x)
            row.append("-" if value is None else value)
        rows.append(row)
    return format_table(columns, rows, title=title)
