"""Plain-text rendering of experiment outputs.

The experiments regenerate the paper's tables and figures as data; this
package renders them for terminals and logs:

* :mod:`repro.reporting.tables` — fixed-width ASCII tables;
* :mod:`repro.reporting.series` — labelled x/y series (the "figures").
"""

from repro.reporting.series import format_series_block
from repro.reporting.tables import format_table

__all__ = ["format_series_block", "format_table"]
