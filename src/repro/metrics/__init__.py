"""Measurement layer.

* :mod:`repro.metrics.collectors` — accumulates per-query outcomes,
  per-peer lifetime loads, ping accounting, and periodic cache-health
  samples during a run.
* :mod:`repro.metrics.load` — ranked load distributions (Figure 13).
* :mod:`repro.metrics.summary` — small statistics helpers shared by the
  experiment modules.
"""

from repro.metrics.collectors import (
    CacheHealthSample,
    MetricsCollector,
    SimulationReport,
)
from repro.metrics.load import LoadDistribution
from repro.metrics.summary import mean, quantile, stderr

__all__ = [
    "CacheHealthSample",
    "MetricsCollector",
    "SimulationReport",
    "LoadDistribution",
    "mean",
    "quantile",
    "stderr",
]
