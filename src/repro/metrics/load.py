"""Ranked per-peer load distributions (paper Figure 13).

Figure 13 ranks every peer that existed during a run by the number of
probes it received over its lifetime and plots load against (log) rank —
making both hotspot formation (steep head) and fairness (flat curve)
visible at a glance.  :class:`LoadDistribution` reproduces that view and
adds the summary statistics the paper discusses in prose (total probes,
top-k share, Gini coefficient).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.network.address import Address


class LoadDistribution:
    """Immutable ranked view of per-peer received-probe counts.

    Args:
        loads: mapping of peer address -> probes received over lifetime
            (dead and live peers alike, as in the paper).
    """

    def __init__(self, loads: Dict[Address, int]) -> None:
        self._loads = dict(loads)
        self._ranked: List[int] = sorted(self._loads.values(), reverse=True)

    def __len__(self) -> int:
        return len(self._ranked)

    @property
    def total(self) -> int:
        """Total probes received across all peers."""
        return sum(self._ranked)

    def ranked(self) -> List[int]:
        """Loads in descending order (rank 1 first)."""
        return list(self._ranked)

    def load_at_rank(self, rank: int) -> int:
        """Load of the ``rank``-th most-loaded peer (1-based).

        Raises:
            IndexError: if ``rank`` is out of range.
        """
        if not 1 <= rank <= len(self._ranked):
            raise IndexError(
                f"rank must be in [1, {len(self._ranked)}], got {rank}"
            )
        return self._ranked[rank - 1]

    def top_share(self, fraction: float) -> float:
        """Share of all probes received by the top ``fraction`` of peers.

        ``top_share(0.01)`` close to 1.0 means extreme hotspotting;
        close to ``fraction`` means a perfectly level distribution.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        if not self._ranked:
            return 0.0
        total = self.total
        if total == 0:
            return 0.0
        k = max(1, int(len(self._ranked) * fraction))
        return sum(self._ranked[:k]) / total

    def gini(self) -> float:
        """Gini coefficient of the load distribution (0 = perfectly fair).

        Uses the standard sorted-rank formula; returns 0.0 for degenerate
        inputs (no peers or zero total load).
        """
        n = len(self._ranked)
        total = self.total
        if n == 0 or total == 0:
            return 0.0
        ascending = sorted(self._ranked)
        weighted = sum((i + 1) * v for i, v in enumerate(ascending))
        return (2.0 * weighted) / (n * total) - (n + 1.0) / n

    def series(self, max_points: int | None = None) -> List[Tuple[int, int]]:
        """(rank, load) pairs for plotting, optionally log-thinned.

        With ``max_points`` the ranks are thinned geometrically, matching
        the paper's log-scale x-axis.
        """
        n = len(self._ranked)
        if n == 0:
            return []
        if max_points is None or n <= max_points:
            return [(rank, load) for rank, load in enumerate(self._ranked, 1)]
        picked: List[Tuple[int, int]] = []
        rank = 1
        growth = (n / 1.0) ** (1.0 / (max_points - 1))
        seen = set()
        for _ in range(max_points):
            index = min(n, max(1, int(round(rank))))
            if index not in seen:
                seen.add(index)
                picked.append((index, self._ranked[index - 1]))
            rank *= growth
        if picked[-1][0] != n:
            picked.append((n, self._ranked[-1]))
        return picked


def merge_loads(parts: Sequence[Dict[Address, int]]) -> Dict[Address, int]:
    """Merge per-peer load mappings (e.g. live peers + harvested dead)."""
    merged: Dict[Address, int] = {}
    for part in parts:
        for address, load in part.items():
            merged[address] = merged.get(address, 0) + load
    return merged
