"""Run-time metric accumulation and the end-of-run report.

:class:`MetricsCollector` is fed by the simulation as events happen:

* one :meth:`record_query` call per executed query (after warmup);
* ping accounting from the maintenance cycle;
* per-peer lifetime loads, harvested when a peer dies and from survivors
  at report time;
* periodic :class:`CacheHealthSample` rows — fraction of live entries,
  absolute live entries, and "good" (live and non-malicious) entries per
  good peer — the raw material for Table 3 and Figures 18/21.

:class:`SimulationReport` is the frozen summary the experiment layer
consumes; every paper metric is a property with the paper's name in its
docstring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # annotation-only: a runtime import would close the
    # baselines → metrics → core → metrics cycle.
    from repro.core.search import QueryResult

from repro.metrics.load import LoadDistribution
from repro.metrics.summary import mean, ratio
from repro.network.address import Address
from repro.observe.registry import MetricsRegistry


@dataclass(frozen=True, slots=True)
class CacheHealthSample:
    """One periodic snapshot of average link-cache health (good peers).

    Attributes:
        time: sample timestamp.
        fraction_live: mean fraction of cache entries pointing to live
            peers (Table 3, column "Fraction Live").
        absolute_live: mean count of live entries (Table 3, "Absolute
            Live").
        good_entries: mean count of live AND non-malicious entries
            (Figures 18/21, "Average # Good Cache Entries").
        cache_fill: mean number of entries held (caches run below
            capacity because dead entries are evicted).
    """

    time: float
    fraction_live: float
    absolute_live: float
    good_entries: float
    cache_fill: float


@dataclass(slots=True)
class _QueryAggregate:
    """Streaming sums over recorded queries (memory-light default path)."""

    count: int = 0
    satisfied: int = 0
    probes: int = 0
    good: int = 0
    dead: int = 0
    stale_dead: int = 0
    refused: int = 0
    results: int = 0
    spurious: int = 0
    retries: int = 0
    recoveries: int = 0
    wrongful: int = 0
    dead_evictions: int = 0
    refusal_evictions: int = 0
    suppressed: int = 0
    retries_denied: int = 0
    honest_results: int = 0
    honest_satisfied: int = 0
    response_time_sum: float = 0.0
    response_time_count: int = 0


class MetricsCollector:
    """Accumulates metrics during a simulation run.

    Args:
        warmup: queries and pings before this time are ignored, letting
            caches reach steady state before measurement (the load and
            cache-health channels also honour it).
        keep_queries: retain every :class:`QueryResult` (needed only by
            analyses that want full distributions; the aggregate path is
            default to keep long runs light).
        registry: optional shared
            :class:`~repro.observe.registry.MetricsRegistry` holding the
            collector's counters (a private one is built by default).
            Sharing a windowed registry yields per-window snapshots of
            ping/churn activity; the compatibility properties below keep
            every historical read site working unchanged.
        satisfaction_window: width in virtual seconds of the dedicated
            satisfaction-tracking windows (the raw material for the
            time-to-recovery metric in
            :mod:`repro.resilience.recovery`); ``None`` (the default)
            disables the channel and the report's
            ``satisfaction_windows`` stays empty.  The channel uses a
            *private* windowed registry so it composes independently of
            the shared observability ``registry``.
    """

    #: Registry names of the collector's instruments.
    METRIC_PINGS_SENT = "sim.pings_sent"
    METRIC_DEAD_PINGS = "sim.dead_pings"
    METRIC_SPURIOUS_DEAD_PINGS = "sim.spurious_dead_pings"
    METRIC_PING_RETRIES = "sim.ping_retries"
    METRIC_PING_RETRY_RECOVERIES = "sim.ping_retry_recoveries"
    METRIC_WRONGFUL_PING_EVICTIONS = "sim.wrongful_ping_evictions"
    METRIC_BIRTHS = "sim.births"
    METRIC_DEATHS = "sim.deaths"
    METRIC_QUERIES = "sim.queries"
    METRIC_DEAD_PING_EVICTIONS = "sim.dead_ping_evictions"
    METRIC_REFUSAL_PING_EVICTIONS = "sim.refusal_ping_evictions"
    METRIC_SUPPRESSED_PINGS = "sim.suppressed_pings"
    METRIC_PING_RETRIES_DENIED = "sim.ping_retries_denied"
    #: Instruments of the freshness layer (stale split + push invalidation).
    METRIC_STALE_DEAD_PINGS = "sim.stale_dead_pings"
    METRIC_FRESHNESS_NOTICES = "sim.freshness_notices"
    METRIC_FRESHNESS_DELIVERED = "sim.freshness_notices_delivered"
    METRIC_FRESHNESS_REFUSED = "sim.freshness_notices_refused"
    METRIC_FRESHNESS_PURGES = "sim.freshness_purges"
    METRIC_FRESHNESS_REFRESH_IMPORTS = "sim.freshness_refresh_imports"
    #: Instruments of the gossip-assisted relay channel.
    METRIC_GOSSIP_RUMORS = "sim.gossip_rumors"
    METRIC_GOSSIP_PUSHES = "sim.gossip_pushes"
    METRIC_GOSSIP_DELIVERED = "sim.gossip_delivered"
    METRIC_GOSSIP_REFUSED = "sim.gossip_refused"
    METRIC_GOSSIP_IMPORTS = "sim.gossip_imports"
    METRIC_GOSSIP_SUPPRESSED = "sim.gossip_suppressed_forwards"
    #: Instruments of the private satisfaction-window channel.
    METRIC_WINDOW_QUERIES = "sim.window_queries"
    METRIC_WINDOW_SATISFIED = "sim.window_satisfied"

    def __init__(
        self,
        warmup: float = 0.0,
        keep_queries: bool = False,
        registry: Optional[MetricsRegistry] = None,
        satisfaction_window: Optional[float] = None,
    ) -> None:
        if warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {warmup}")
        self.warmup = float(warmup)
        self.keep_queries = bool(keep_queries)
        self._agg = _QueryAggregate()
        self._queries: List[QueryResult] = []
        self._loads: Dict[Address, int] = {}
        self._refusals: Dict[Address, int] = {}
        self._health: List[CacheHealthSample] = []
        self._registry = registry if registry is not None else MetricsRegistry()
        self._observed = registry is not None
        self._c_pings = self._registry.counter(self.METRIC_PINGS_SENT)
        self._c_dead_pings = self._registry.counter(self.METRIC_DEAD_PINGS)
        self._c_spurious_dead = self._registry.counter(
            self.METRIC_SPURIOUS_DEAD_PINGS
        )
        self._c_ping_retries = self._registry.counter(self.METRIC_PING_RETRIES)
        self._c_ping_recoveries = self._registry.counter(
            self.METRIC_PING_RETRY_RECOVERIES
        )
        self._c_wrongful_pings = self._registry.counter(
            self.METRIC_WRONGFUL_PING_EVICTIONS
        )
        self._c_births = self._registry.counter(self.METRIC_BIRTHS)
        self._c_deaths = self._registry.counter(self.METRIC_DEATHS)
        self._c_queries = self._registry.counter(self.METRIC_QUERIES)
        self._c_dead_ping_evictions = self._registry.counter(
            self.METRIC_DEAD_PING_EVICTIONS
        )
        self._c_refusal_ping_evictions = self._registry.counter(
            self.METRIC_REFUSAL_PING_EVICTIONS
        )
        self._c_suppressed_pings = self._registry.counter(
            self.METRIC_SUPPRESSED_PINGS
        )
        self._c_ping_denied = self._registry.counter(
            self.METRIC_PING_RETRIES_DENIED
        )
        self._c_gossip_rumors = self._registry.counter(
            self.METRIC_GOSSIP_RUMORS
        )
        self._c_gossip_pushes = self._registry.counter(
            self.METRIC_GOSSIP_PUSHES
        )
        self._c_gossip_delivered = self._registry.counter(
            self.METRIC_GOSSIP_DELIVERED
        )
        self._c_gossip_refused = self._registry.counter(
            self.METRIC_GOSSIP_REFUSED
        )
        self._c_gossip_imports = self._registry.counter(
            self.METRIC_GOSSIP_IMPORTS
        )
        self._c_gossip_suppressed = self._registry.counter(
            self.METRIC_GOSSIP_SUPPRESSED
        )
        self._c_stale_dead_pings = self._registry.counter(
            self.METRIC_STALE_DEAD_PINGS
        )
        self._c_freshness_notices = self._registry.counter(
            self.METRIC_FRESHNESS_NOTICES
        )
        self._c_freshness_delivered = self._registry.counter(
            self.METRIC_FRESHNESS_DELIVERED
        )
        self._c_freshness_refused = self._registry.counter(
            self.METRIC_FRESHNESS_REFUSED
        )
        self._c_freshness_purges = self._registry.counter(
            self.METRIC_FRESHNESS_PURGES
        )
        self._c_freshness_refresh = self._registry.counter(
            self.METRIC_FRESHNESS_REFRESH_IMPORTS
        )
        # The satisfaction-window channel: a private windowed registry
        # so the report can expose per-window (queries, satisfied) rows
        # whether or not a shared observability registry is attached.
        self._sat_registry = (
            MetricsRegistry(window=satisfaction_window)
            if satisfaction_window is not None
            else None
        )
        self._sat_queries = (
            self._sat_registry.counter(self.METRIC_WINDOW_QUERIES)
            if self._sat_registry is not None
            else None
        )
        self._sat_satisfied = (
            self._sat_registry.counter(self.METRIC_WINDOW_SATISFIED)
            if self._sat_registry is not None
            else None
        )
        self._last_query_time = 0.0
        self.pings_shed_total = 0
        # Transport-lifetime counters, recorded once at report time (not
        # warmup-filtered: they describe the wire, not the measurement
        # window).
        self.transport_probes_sent = 0
        self.transport_timeouts = 0
        self.transport_refusals = 0
        self.transport_spurious_timeouts = 0

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------

    def record_query(self, result: QueryResult, time: float) -> None:
        """Record one query outcome (ignored during warmup)."""
        if time < self.warmup:
            return
        if self._observed:
            self._registry.advance(time)
        if self._sat_registry is not None:
            self._sat_registry.advance(time)
            self._sat_queries.inc()
            if result.satisfied:
                self._sat_satisfied.inc()
            self._last_query_time = time
        self._c_queries.inc()
        agg = self._agg
        agg.count += 1
        agg.satisfied += 1 if result.satisfied else 0
        agg.probes += result.probes
        agg.good += result.good_probes
        agg.dead += result.dead_probes
        agg.stale_dead += result.stale_dead_probes
        agg.refused += result.refused_probes
        agg.results += result.results
        agg.spurious += result.spurious_timeouts
        agg.retries += result.retries
        agg.recoveries += result.retry_recoveries
        agg.wrongful += result.wrongful_evictions
        agg.dead_evictions += result.dead_evictions
        agg.refusal_evictions += result.refusal_evictions
        agg.suppressed += result.suppressed_probes
        agg.retries_denied += result.retries_denied
        agg.honest_results += result.verified_results
        agg.honest_satisfied += 1 if result.verified_satisfied else 0
        if result.response_time is not None:
            agg.response_time_sum += result.response_time
            agg.response_time_count += 1
        if self.keep_queries:
            self._queries.append(result)

    def record_ping(
        self,
        dead: bool,
        time: float,
        *,
        spurious: bool = False,
        retries: int = 0,
        recovered: bool = False,
        wrongful: bool = False,
        dead_evicted: bool = False,
        refusal_evicted: bool = False,
        denied: bool = False,
        stale: bool = False,
    ) -> None:
        """Record one maintenance ping and whether it found a corpse.

        Args:
            dead: the ping's final outcome was a timeout.
            time: ping timestamp (warmup-filtered).
            spurious: the timeout hit a live target (injected loss).
            retries: extra sends the retry policy made for this ping.
            recovered: a retry resolved what first looked like a death.
            wrongful: a live link-cache entry was evicted off the back
                of a spurious timeout.
            dead_evicted: the timeout evicted the target's entry.
            refusal_evicted: a refusal evicted the target's entry (the
                ``do_backoff=False`` reflex the breaker replaces).
            denied: the retry schedule was cut short by an exhausted
                retry-token budget.
            stale: the dead target departed *after* the pinging peer
                acquired its pointer — the preventable kind of dead
                probe push invalidation targets (vs dead-on-arrival
                imports and ghost addresses).
        """
        if time < self.warmup:
            return
        if self._observed:
            self._registry.advance(time)
        self._c_pings.inc()
        self._c_ping_retries.inc(retries)
        if recovered:
            self._c_ping_recoveries.inc()
        if denied:
            self._c_ping_denied.inc()
        if refusal_evicted:
            self._c_refusal_ping_evictions.inc()
        if dead:
            self._c_dead_pings.inc()
            if spurious:
                self._c_spurious_dead.inc()
            if wrongful:
                self._c_wrongful_pings.inc()
            if dead_evicted:
                self._c_dead_ping_evictions.inc()
            if stale:
                self._c_stale_dead_pings.inc()

    def record_gossip_rumor(self, time: float) -> None:
        """Count one rumor seeded from a ping's pong harvest."""
        if time < self.warmup:
            return
        if self._observed:
            self._registry.advance(time)
        self._c_gossip_rumors.inc()

    def record_gossip_push(
        self,
        time: float,
        *,
        delivered: bool,
        imported: int = 0,
        refused: bool = False,
    ) -> None:
        """Record one GossipPush send and its outcome.

        Args:
            time: send timestamp (warmup-filtered).
            delivered: the push reached a live peer and was accepted.
            imported: cache entries the receiver actually admitted.
            refused: the receiver shed the push (rate limit / shedding).
        """
        if time < self.warmup:
            return
        if self._observed:
            self._registry.advance(time)
        self._c_gossip_pushes.inc()
        if delivered:
            self._c_gossip_delivered.inc()
            self._c_gossip_imports.inc(imported)
        elif refused:
            self._c_gossip_refused.inc()

    def record_gossip_suppressed_forward(self, time: float) -> None:
        """Count a forwarding hop a suppress-mode reporter refused to relay."""
        if time < self.warmup:
            return
        if self._observed:
            self._registry.advance(time)
        self._c_gossip_suppressed.inc()

    def record_freshness_notice(
        self,
        time: float,
        *,
        delivered: bool,
        purged: bool = False,
        refused: bool = False,
    ) -> None:
        """Record one push-invalidation ``CacheUpdate`` send.

        Args:
            time: send timestamp (warmup-filtered).
            delivered: the notice reached a live peer.
            purged: the receiver actually held (and purged or demoted)
                the stale entry — the interest-path forwarding signal.
            refused: the receiver shed the notice (rate limit).
        """
        if time < self.warmup:
            return
        if self._observed:
            self._registry.advance(time)
        self._c_freshness_notices.inc()
        if delivered:
            self._c_freshness_delivered.inc()
            if purged:
                self._c_freshness_purges.inc()
        elif refused:
            self._c_freshness_refused.inc()

    def record_freshness_refresh(self, time: float, imported: int) -> None:
        """Count entries a notifier imported off a ``CacheUpdateAck`` pong."""
        if time < self.warmup:
            return
        if self._observed:
            self._registry.advance(time)
        self._c_freshness_refresh.inc(imported)

    def record_suppressed_ping(self, time: float) -> None:
        """Record a maintenance ping skipped by an open circuit breaker."""
        if time < self.warmup:
            return
        if self._observed:
            self._registry.advance(time)
        self._c_suppressed_pings.inc()

    def record_death(self, time: float) -> None:
        """Count a peer departure (post-warmup)."""
        if time >= self.warmup:
            if self._observed:
                self._registry.advance(time)
            self._c_deaths.inc()

    def record_birth(self, time: float) -> None:
        """Count a peer arrival (post-warmup)."""
        if time >= self.warmup:
            if self._observed:
                self._registry.advance(time)
            self._c_births.inc()

    def harvest_peer(
        self,
        address: Address,
        probes_received: int,
        probes_refused: int,
        pings_shed: int = 0,
    ) -> None:
        """Absorb a peer's lifetime counters (at its death or at report).

        Loads accumulate across harvests, so harvesting a live peer at
        report time after its death-time harvest would double-count —
        the simulation harvests each peer exactly once.
        """
        self._loads[address] = self._loads.get(address, 0) + probes_received
        self._refusals[address] = (
            self._refusals.get(address, 0) + probes_refused
        )
        self.pings_shed_total += pings_shed

    def record_health_sample(self, sample: CacheHealthSample) -> None:
        """Append one periodic cache-health snapshot (post-warmup only)."""
        if sample.time >= self.warmup:
            self._health.append(sample)

    def record_transport(
        self,
        *,
        probes_sent: int,
        timeouts: int,
        refusals: int,
        spurious_timeouts: int = 0,
    ) -> None:
        """Absorb the transport's lifetime counters (once, at report time).

        These cover *every* probe the wire carried — queries, pings, and
        retries, warmup included — so they are the ground truth the
        per-channel (query/ping) accounting can be reconciled against.
        """
        self.transport_probes_sent = probes_sent
        self.transport_timeouts = timeouts
        self.transport_refusals = refusals
        self.transport_spurious_timeouts = spurious_timeouts

    # ------------------------------------------------------------------
    # Registry access and compatibility properties
    # ------------------------------------------------------------------
    # The scalar counters moved into a MetricsRegistry (named
    # instruments, optional windowing); these properties keep every
    # historical read site — and the report construction below —
    # working on plain ints.

    @property
    def registry(self) -> MetricsRegistry:
        """The registry holding this collector's instruments."""
        return self._registry

    @property
    def pings_sent(self) -> int:
        return self._c_pings.value

    @property
    def dead_pings(self) -> int:
        return self._c_dead_pings.value

    @property
    def spurious_dead_pings(self) -> int:
        return self._c_spurious_dead.value

    @property
    def ping_retries(self) -> int:
        return self._c_ping_retries.value

    @property
    def ping_retry_recoveries(self) -> int:
        return self._c_ping_recoveries.value

    @property
    def wrongful_ping_evictions(self) -> int:
        return self._c_wrongful_pings.value

    @property
    def births(self) -> int:
        return self._c_births.value

    @property
    def deaths(self) -> int:
        return self._c_deaths.value

    @property
    def dead_ping_evictions(self) -> int:
        return self._c_dead_ping_evictions.value

    @property
    def refusal_ping_evictions(self) -> int:
        return self._c_refusal_ping_evictions.value

    @property
    def suppressed_pings(self) -> int:
        return self._c_suppressed_pings.value

    @property
    def ping_retries_denied(self) -> int:
        return self._c_ping_denied.value

    @property
    def gossip_rumors(self) -> int:
        return self._c_gossip_rumors.value

    @property
    def gossip_pushes(self) -> int:
        return self._c_gossip_pushes.value

    @property
    def gossip_delivered(self) -> int:
        return self._c_gossip_delivered.value

    @property
    def gossip_refused(self) -> int:
        return self._c_gossip_refused.value

    @property
    def gossip_imports(self) -> int:
        return self._c_gossip_imports.value

    @property
    def gossip_suppressed_forwards(self) -> int:
        return self._c_gossip_suppressed.value

    @property
    def stale_dead_pings(self) -> int:
        return self._c_stale_dead_pings.value

    @property
    def freshness_notices(self) -> int:
        return self._c_freshness_notices.value

    @property
    def freshness_notices_delivered(self) -> int:
        return self._c_freshness_delivered.value

    @property
    def freshness_notices_refused(self) -> int:
        return self._c_freshness_refused.value

    @property
    def freshness_purges(self) -> int:
        return self._c_freshness_purges.value

    @property
    def freshness_refresh_imports(self) -> int:
        return self._c_freshness_refresh.value

    def _satisfaction_windows(self) -> tuple:
        """Flush and render the satisfaction channel's window rows.

        Each row is a plain ``(start, end, queries, satisfied)`` tuple —
        :func:`repro.resilience.recovery.to_windows` adapts them.  The
        final partial window is flushed by advancing one full width past
        the last recorded query, so recovery tails are never dropped.
        """
        if self._sat_registry is None:
            return ()
        width = self._sat_registry.window
        assert width is not None
        self._sat_registry.advance(self._last_query_time + width)
        rows = []
        for snap in self._sat_registry.window_snapshots:
            queries = int(snap.values.get(self.METRIC_WINDOW_QUERIES, 0))
            if not queries:
                continue
            rows.append((
                snap.start,
                snap.end,
                queries,
                int(snap.values.get(self.METRIC_WINDOW_SATISFIED, 0)),
            ))
        return tuple(rows)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def build_report(
        self, trace_digest: Optional[str] = None
    ) -> "SimulationReport":
        """Freeze the accumulated metrics into a report.

        Args:
            trace_digest: the engine's executed-event digest, when the
                run was traced (``trace_hash=True``); lands on
                :attr:`SimulationReport.trace_digest` so manifests can
                record it per trial.
        """
        agg = self._agg
        return SimulationReport(
            queries=agg.count,
            satisfied_queries=agg.satisfied,
            total_probes=agg.probes,
            good_probes=agg.good,
            dead_probes=agg.dead,
            refused_probes=agg.refused,
            mean_response_time=(
                agg.response_time_sum / agg.response_time_count
                if agg.response_time_count
                else None
            ),
            pings_sent=self.pings_sent,
            dead_pings=self.dead_pings,
            births=self.births,
            deaths=self.deaths,
            loads=dict(self._loads),
            refusals=dict(self._refusals),
            health_samples=tuple(self._health),
            query_results=tuple(self._queries) if self.keep_queries else (),
            total_results=agg.results,
            spurious_timeout_probes=agg.spurious,
            probe_retries=agg.retries,
            retry_recovered_probes=agg.recoveries,
            wrongful_query_evictions=agg.wrongful,
            dead_query_evictions=agg.dead_evictions,
            refusal_query_evictions=agg.refusal_evictions,
            suppressed_query_probes=agg.suppressed,
            query_retries_denied=agg.retries_denied,
            total_honest_results=agg.honest_results,
            honest_satisfied_queries=agg.honest_satisfied,
            gossip_rumors=self.gossip_rumors,
            gossip_pushes=self.gossip_pushes,
            gossip_delivered=self.gossip_delivered,
            gossip_refused=self.gossip_refused,
            gossip_imports=self.gossip_imports,
            gossip_suppressed_forwards=self.gossip_suppressed_forwards,
            stale_dead_query_probes=agg.stale_dead,
            stale_dead_pings=self.stale_dead_pings,
            freshness_notices=self.freshness_notices,
            freshness_notices_delivered=self.freshness_notices_delivered,
            freshness_notices_refused=self.freshness_notices_refused,
            freshness_purges=self.freshness_purges,
            freshness_refresh_imports=self.freshness_refresh_imports,
            spurious_dead_pings=self.spurious_dead_pings,
            ping_retries=self.ping_retries,
            ping_retry_recoveries=self.ping_retry_recoveries,
            wrongful_ping_evictions=self.wrongful_ping_evictions,
            dead_ping_evictions=self.dead_ping_evictions,
            refusal_ping_evictions=self.refusal_ping_evictions,
            suppressed_pings=self.suppressed_pings,
            ping_retries_denied=self.ping_retries_denied,
            pings_shed=self.pings_shed_total,
            satisfaction_windows=self._satisfaction_windows(),
            transport_probes_sent=self.transport_probes_sent,
            transport_timeouts=self.transport_timeouts,
            transport_refusals=self.transport_refusals,
            transport_spurious_timeouts=self.transport_spurious_timeouts,
            trace_digest=trace_digest,
        )


@dataclass(frozen=True)
class SimulationReport:
    """Frozen end-of-run metrics; the experiment layer's input."""

    queries: int
    satisfied_queries: int
    total_probes: int
    good_probes: int
    dead_probes: int
    refused_probes: int
    mean_response_time: Optional[float]
    pings_sent: int
    dead_pings: int
    births: int
    deaths: int
    loads: Dict[Address, int] = field(default_factory=dict)
    refusals: Dict[Address, int] = field(default_factory=dict)
    health_samples: tuple = ()
    query_results: tuple = ()
    #: Results actually returned across all queries (results-per-query).
    total_results: int = 0
    #: Query dead-probes whose target was live (fault-injected losses).
    spurious_timeout_probes: int = 0
    #: Extra query-probe sends made by the retry policy.
    probe_retries: int = 0
    #: Query probes that a retry resolved after an initial timeout.
    retry_recovered_probes: int = 0
    #: Live link-cache entries evicted by lossy query probes.
    wrongful_query_evictions: int = 0
    #: Query-probe evictions caused by timeouts (includes the wrongful
    #: subset above).
    dead_query_evictions: int = 0
    #: Query-probe evictions caused by refusals (``do_backoff=False``).
    refusal_query_evictions: int = 0
    #: Query probes skipped because the target's breaker was open.
    suppressed_query_probes: int = 0
    #: Query probes whose retries were cut short by the token budget.
    query_retries_denied: int = 0
    #: Honest (omniscient-observer) results across all queries; equals
    #: ``total_results`` unless faulty reporters falsified claims.
    total_honest_results: int = 0
    #: Queries satisfied under honest result accounting.
    honest_satisfied_queries: int = 0
    #: Gossip-assisted relay accounting (all zero when the relay is off):
    #: rumors seeded from ping harvests, GossipPush sends, pushes accepted
    #: by a live receiver, pushes shed/refused, cache entries imported off
    #: rumors, and forwarding hops suppress-mode reporters refused.
    gossip_rumors: int = 0
    gossip_pushes: int = 0
    gossip_delivered: int = 0
    gossip_refused: int = 0
    gossip_imports: int = 0
    gossip_suppressed_forwards: int = 0
    #: Freshness accounting (repro.freshness): the stale share of query
    #: dead-probes / dead pings (target departed after the pointer was
    #: acquired — the preventable kind), and the push-invalidation
    #: channel: CacheUpdate sends, sends reaching a live peer, sends
    #: shed by rate limits, receivers that actually purged/demoted the
    #: stale entry, and entries refreshed off ack pongs.  The stale
    #: split is always recorded; the notice counters are zero unless a
    #: FreshnessPlan armed push invalidation.
    stale_dead_query_probes: int = 0
    stale_dead_pings: int = 0
    freshness_notices: int = 0
    freshness_notices_delivered: int = 0
    freshness_notices_refused: int = 0
    freshness_purges: int = 0
    freshness_refresh_imports: int = 0
    #: Dead pings whose target was live (fault-injected losses).
    spurious_dead_pings: int = 0
    #: Extra ping sends made by the retry policy.
    ping_retries: int = 0
    #: Pings that a retry resolved after an initial timeout.
    ping_retry_recoveries: int = 0
    #: Live link-cache entries evicted by lossy pings.
    wrongful_ping_evictions: int = 0
    #: Ping evictions caused by timeouts / by refusals, split by cause.
    dead_ping_evictions: int = 0
    refusal_ping_evictions: int = 0
    #: Maintenance pings skipped because the target's breaker was open.
    suppressed_pings: int = 0
    #: Pings whose retries were cut short by the token budget.
    ping_retries_denied: int = 0
    #: Incoming pings refused by graded load shedding (receiver side).
    pings_shed: int = 0
    #: Per-window ``(start, end, queries, satisfied)`` rows from the
    #: collector's satisfaction channel (empty unless a
    #: ``satisfaction_window`` was configured); the input to
    #: :func:`repro.resilience.recovery.time_to_recovery`.
    satisfaction_windows: tuple = ()
    #: Transport-lifetime totals (queries + pings + retries, warmup
    #: included) — the wire's ground truth.
    transport_probes_sent: int = 0
    transport_timeouts: int = 0
    transport_refusals: int = 0
    transport_spurious_timeouts: int = 0
    #: Executed-event digest of the run (None unless ``trace_hash=True``);
    #: recorded into run manifests so published numbers can be replayed
    #: and verified bit for bit.
    trace_digest: Optional[str] = None

    # -- Paper metrics --------------------------------------------------

    @property
    def probes_per_query(self) -> float:
        """Average probes per query (the paper's primary cost metric)."""
        return ratio(self.total_probes, self.queries)

    @property
    def good_probes_per_query(self) -> float:
        """Average probes reaching live peers, per query."""
        return ratio(self.good_probes, self.queries)

    @property
    def dead_probes_per_query(self) -> float:
        """Average wasted probes ("DeadIPs/Query") per query."""
        return ratio(self.dead_probes, self.queries)

    @property
    def refused_probes_per_query(self) -> float:
        """Average refused probes per query (Figure 14)."""
        return ratio(self.refused_probes, self.queries)

    @property
    def unsatisfied_rate(self) -> float:
        """Proportion of queries not reaching NumDesiredResults results."""
        if self.queries == 0:
            return 0.0
        return 1.0 - self.satisfied_queries / self.queries

    @property
    def satisfaction_rate(self) -> float:
        """Complement of :attr:`unsatisfied_rate`."""
        return 1.0 - self.unsatisfied_rate

    @property
    def wasted_probe_fraction(self) -> float:
        """Fraction of all probes that were wasted on dead peers."""
        return ratio(self.dead_probes, self.total_probes)

    @property
    def dead_ping_fraction(self) -> float:
        """Fraction of maintenance pings that discovered a corpse."""
        return ratio(self.dead_pings, self.pings_sent)

    # -- Fault / retry metrics (repro.faults) ----------------------------

    @property
    def results_per_query(self) -> float:
        """Average results returned per query (as *claimed* by responders)."""
        return ratio(self.total_results, self.queries)

    # -- Honest accounting (repro.core.malicious.FaultyReporter) ---------

    @property
    def honest_results_per_query(self) -> float:
        """Average honest (omniscient) results per query.

        Equals :attr:`results_per_query` unless faulty reporters inflated
        or suppressed their claims.
        """
        return ratio(self.total_honest_results, self.queries)

    @property
    def honest_satisfaction_rate(self) -> float:
        """Satisfaction under honest result accounting."""
        return ratio(self.honest_satisfied_queries, self.queries)

    @property
    def gossip_delivery_rate(self) -> float:
        """Fraction of GossipPush sends accepted by a live receiver."""
        return ratio(self.gossip_delivered, self.gossip_pushes)

    # -- Freshness metrics (repro.freshness) -----------------------------

    @property
    def stale_dead_probes(self) -> int:
        """Dead probes (query + ping paths) charged to *stale* pointers.

        Stale = the pointer's target departed after the owner acquired
        it; exactly the waste push invalidation can prevent.  The
        remainder (:attr:`fresh_dead_probes`) is dead-on-arrival imports
        and ghost addresses, which no notice could have saved.
        """
        return self.stale_dead_query_probes + self.stale_dead_pings

    @property
    def fresh_dead_probes(self) -> int:
        """Dead probes no invalidation could have prevented."""
        return self.dead_probes + self.dead_pings - self.stale_dead_probes

    @property
    def stale_dead_fraction(self) -> float:
        """Fraction of all dead probes charged to stale pointers."""
        return ratio(self.stale_dead_probes, self.dead_probes + self.dead_pings)

    @property
    def freshness_delivery_rate(self) -> float:
        """Fraction of CacheUpdate sends that reached a live peer."""
        return ratio(self.freshness_notices_delivered, self.freshness_notices)

    @property
    def freshness_purge_rate(self) -> float:
        """Fraction of delivered notices whose receiver held the entry."""
        return ratio(self.freshness_purges, self.freshness_notices_delivered)

    @property
    def spurious_timeouts_per_query(self) -> float:
        """Average live-target timeouts per query (loss masquerading as
        death; 0 without fault injection)."""
        return ratio(self.spurious_timeout_probes, self.queries)

    @property
    def spurious_timeout_fraction(self) -> float:
        """Fraction of query dead-probes that were actually lost packets.

        This is how badly loss corrupts the paper's DeadIPs accounting:
        at 1.0, every "dead" probe the query loop charged was wrong.
        """
        return ratio(self.spurious_timeout_probes, self.dead_probes)

    @property
    def retry_recovery_rate(self) -> float:
        """Fraction of first-attempt query timeouts a retry bought back.

        Denominator: probes whose first attempt timed out = recoveries
        (eventually resolved) + final dead probes that burned at least
        one retry.  0.0 when retries are disabled.
        """
        attempted = self.retry_recovered_probes + (
            self.dead_probes if self.probe_retries > 0 else 0
        )
        return ratio(self.retry_recovered_probes, attempted)

    @property
    def wrongful_evictions(self) -> int:
        """Live link-cache entries evicted as "dead" (query + ping paths)."""
        return self.wrongful_query_evictions + self.wrongful_ping_evictions

    # -- Resilience metrics (repro.resilience) ---------------------------

    @property
    def dead_evictions(self) -> int:
        """Evictions caused by probe timeouts (query + ping paths)."""
        return self.dead_query_evictions + self.dead_ping_evictions

    @property
    def refusal_evictions(self) -> int:
        """Evictions caused by refusals under ``do_backoff=False``.

        The cause-split counterpart of :attr:`dead_evictions`; zero when
        circuit breakers are armed (the breaker suppresses instead of
        evicting), which is exactly how the breaker's benefit is
        attributed.
        """
        return self.refusal_query_evictions + self.refusal_ping_evictions

    @property
    def suppressed_probes(self) -> int:
        """Probes skipped by open circuit breakers (query + ping paths)."""
        return self.suppressed_query_probes + self.suppressed_pings

    @property
    def retries_denied(self) -> int:
        """Retry schedules cut short by exhausted token budgets."""
        return self.query_retries_denied + self.ping_retries_denied

    @property
    def spurious_dead_ping_fraction(self) -> float:
        """Fraction of dead pings whose target was actually live."""
        return ratio(self.spurious_dead_pings, self.dead_pings)

    # -- Cache health (Table 3, Figures 18/21) ---------------------------

    @property
    def mean_fraction_live(self) -> float:
        """Time-averaged fraction of live link-cache entries."""
        return mean([s.fraction_live for s in self.health_samples])

    @property
    def mean_absolute_live(self) -> float:
        """Time-averaged absolute number of live link-cache entries."""
        return mean([s.absolute_live for s in self.health_samples])

    @property
    def mean_good_entries(self) -> float:
        """Time-averaged live-and-non-malicious entries per good peer."""
        return mean([s.good_entries for s in self.health_samples])

    @property
    def mean_cache_fill(self) -> float:
        """Time-averaged entries held per cache."""
        return mean([s.cache_fill for s in self.health_samples])

    # -- Load / fairness (Figure 13) -------------------------------------

    def load_distribution(self) -> LoadDistribution:
        """Ranked per-peer received-probe distribution."""
        return LoadDistribution(self.loads)
