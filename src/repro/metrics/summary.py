"""Small statistics helpers.

Dependency-free (the library itself avoids numpy so it can run anywhere);
the experiment layer may still use numpy for heavier analysis.
"""

from __future__ import annotations

import math
from typing import Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence.

    Empty-input tolerance is deliberate: experiment code averages metric
    streams that can legitimately be empty (e.g. zero refused probes).
    """
    if not values:
        return 0.0
    return math.fsum(values) / len(values)


def variance(values: Sequence[float]) -> float:
    """Sample variance (n-1 denominator); 0.0 for fewer than two values."""
    n = len(values)
    if n < 2:
        return 0.0
    m = mean(values)
    return math.fsum((v - m) ** 2 for v in values) / (n - 1)


def stderr(values: Sequence[float]) -> float:
    """Standard error of the mean; 0.0 for fewer than two values."""
    n = len(values)
    if n < 2:
        return 0.0
    return math.sqrt(variance(values) / n)


def quantile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated quantile, ``q`` in [0, 1].

    Raises:
        ValueError: on an empty sequence or q outside [0, 1].
    """
    if not values:
        raise ValueError("quantile of empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    index = int(position)
    frac = position - index
    if index + 1 >= len(ordered):
        return ordered[-1]
    return ordered[index] * (1.0 - frac) + ordered[index + 1] * frac


def ratio(numerator: float, denominator: float) -> float:
    """``numerator / denominator`` with a 0.0 guard for a zero denominator."""
    if denominator == 0:
        return 0.0
    return numerator / denominator
