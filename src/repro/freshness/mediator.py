"""The armed-freshness mediator (contact picking + capacity assignment).

Holds a :class:`~repro.freshness.plan.FreshnessPlan` and the two
``freshness:*`` streams all freshness randomness comes from; the event
wiring (notice probes, interest-path forwarding, per-peer capacity at
spawn) lives in :class:`~repro.core.network_sim.GuessSimulation`.  Build
via :meth:`FreshnessMediator.from_plan`, which returns ``None`` for
disabled plans — the invisibility contract every optional subsystem here
follows (:class:`~repro.faults.injector.FaultInjector`,
:class:`~repro.resilience.scenarios.ScenarioDriver`,
:class:`~repro.baselines.gossip.GossipRelay`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from repro.freshness.plan import FreshnessPlan
from repro.network.address import Address
from repro.sim.rng import RngRegistry


class FreshnessMediator:
    """Randomness and policy decisions for an armed freshness plan."""

    __slots__ = ("plan", "_notify_rng", "_sizing_rng")

    def __init__(self, plan: FreshnessPlan, rng: RngRegistry) -> None:
        self.plan = plan
        # Literal stream names: the RD007 contract proves the
        # ``freshness:`` prefix statically.
        self._notify_rng = rng.stream("freshness:notify")
        self._sizing_rng = rng.stream("freshness:sizing")

    @classmethod
    def from_plan(
        cls, plan: Optional[FreshnessPlan], rng: RngRegistry
    ) -> Optional["FreshnessMediator"]:
        """The mediator for ``plan``, or None if the plan can do nothing.

        Returning None (not an inert mediator) is what makes the
        disabled plan contractually invisible: peer spawning and the
        death path take their pre-freshness branches unchanged, with
        zero extra draws or scheduled events.
        """
        if plan is None or plan.is_noop():
            return None
        return cls(plan, rng)

    def cache_capacity(self, base: int, num_files: int) -> int:
        """Per-peer link-cache capacity for one newborn.

        Exactly one ``freshness:sizing`` draw under ``"power-law"``,
        none otherwise — uniform sizing under an armed (invalidation-
        only) plan returns the base without touching the stream.
        """
        sizing = self.plan.sizing
        if sizing.is_noop():
            return base
        return sizing.capacity_for(base, num_files, self._sizing_rng)

    def pick_contacts(
        self, candidates: Sequence[Address], seen: Set[Address]
    ) -> List[Address]:
        """Up to ``notify_budget`` addresses not yet notified.

        ``candidates`` must arrive in a deterministic order (link caches
        iterate in insertion order); the sample draws only from the
        ``freshness:notify`` stream.
        """
        fresh = [address for address in candidates if address not in seen]
        if len(fresh) <= self.plan.notify_budget:
            return fresh
        return self._notify_rng.sample(fresh, self.plan.notify_budget)
