"""Cache freshness under churn (ROADMAP item 4).

Push invalidation down interest paths (CUP-style
:class:`~repro.core.messages.CacheUpdate` notices with pong-piggybacked
refresh) plus heterogeneous, capacity-proportional per-peer link-cache
sizes.  See :mod:`repro.freshness.plan` for the frozen plan dataclasses
and :mod:`repro.freshness.mediator` for the armed-run mediator.
"""

from repro.freshness.mediator import FreshnessMediator
from repro.freshness.plan import (
    CACHE_SIZING_POLICIES,
    CacheSizing,
    FreshnessPlan,
)

__all__ = [
    "CACHE_SIZING_POLICIES",
    "CacheSizing",
    "FreshnessMediator",
    "FreshnessPlan",
]
