"""Cache-freshness plans (ROADMAP item 4).

Two mechanisms attack the paper's central cost metric — dead probes
against departed peers — directly, instead of paying for freshness with
ever-faster pings:

* **Push invalidation** (CUP, Roussopoulos & Baker): when a peer departs
  (or an overloaded peer trips a prober's circuit breaker), its former
  contacts are *told* via :class:`~repro.core.messages.CacheUpdate`
  exchanges instead of discovering the staleness one dead probe at a
  time.  Each notice's acknowledgement piggybacks a Pong of replacement
  candidates, so a purge is also a refresh.  Propagation follows
  interest paths: a contact that actually held the stale entry forwards
  the notice to up to ``notify_budget`` of its own contacts, for at most
  ``depth`` hops.

* **Heterogeneous cache sizing** (Sarshar & Roychowdhury): replace the
  single global ``ProtocolParams.cache_size`` with per-peer link-cache
  capacities scaled around that base — proportional to the peer's
  advertised library size (the simulation's capacity proxy) or drawn
  from a normalized power law.

Both compose into one frozen, picklable :class:`FreshnessPlan` following
the established invisibility-gated plan pattern:
:meth:`~repro.freshness.mediator.FreshnessMediator.from_plan` returns
``None`` for a missing/no-op plan, so disabled freshness keeps the exact
pre-freshness code paths and every golden trace digest bit-identical.
All armed randomness draws from dedicated ``freshness:*`` substreams
(statically enforced by an RD007 contract in ``effect_contracts.toml``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Tuple

from repro.errors import FreshnessError

#: Per-peer link-cache capacity policies.
CACHE_SIZING_POLICIES: Tuple[str, ...] = ("uniform", "proportional", "power-law")


@dataclass(frozen=True)
class CacheSizing:
    """Per-peer link-cache capacity policy (picklable, frozen).

    Capacities are scaled around the global ``ProtocolParams.cache_size``
    base, so a sweep stays budget-matched: the *mean* capacity under
    every policy is (approximately) the base.

    Attributes:
        policy: ``"uniform"`` (every peer gets the base — the documented
            no-op), ``"proportional"`` (capacity scales linearly with the
            peer's advertised file count, normalized by
            ``reference_files``), or ``"power-law"`` (capacity is the
            base times a normalized Pareto factor with shape ``alpha``,
            drawn on the ``freshness:sizing`` substream).
        reference_files: file count that maps to exactly the base
            capacity under ``"proportional"``.
        alpha: Pareto shape for ``"power-law"``; must exceed 1 so the
            mean factor is finite (the draw is normalized to mean 1).
        min_capacity: floor applied after scaling (0 allows cacheless
            peers — a zero-slot :class:`~repro.core.link_cache.LinkCache`
            refuses every insert).
        max_capacity: ceiling applied after scaling; 0 disables the
            ceiling.
    """

    policy: str = "uniform"
    reference_files: int = 100
    alpha: float = 2.0
    min_capacity: int = 1
    max_capacity: int = 0

    def __post_init__(self) -> None:
        if self.policy not in CACHE_SIZING_POLICIES:
            raise FreshnessError(
                f"policy must be one of {CACHE_SIZING_POLICIES}, "
                f"got {self.policy!r}"
            )
        if self.reference_files < 1:
            raise FreshnessError(
                f"reference_files must be >= 1, got {self.reference_files}"
            )
        if self.alpha <= 1.0:
            raise FreshnessError(f"alpha must be > 1, got {self.alpha}")
        if self.min_capacity < 0:
            raise FreshnessError(
                f"min_capacity must be >= 0, got {self.min_capacity}"
            )
        if self.max_capacity < 0:
            raise FreshnessError(
                f"max_capacity must be >= 0, got {self.max_capacity}"
            )
        if self.max_capacity and self.max_capacity < self.min_capacity:
            raise FreshnessError(
                f"max_capacity {self.max_capacity} must be >= "
                f"min_capacity {self.min_capacity}"
            )

    def is_noop(self) -> bool:
        """True when every peer would get exactly the base capacity."""
        return self.policy == "uniform"

    def capacity_for(
        self, base: int, num_files: int, rng: random.Random
    ) -> int:
        """The link-cache capacity for one newborn peer.

        ``"proportional"`` is draw-free (pure function of the already
        drawn ``num_files``); ``"power-law"`` makes exactly one draw on
        ``rng`` per peer.  The caller passes the ``freshness:sizing``
        substream, keeping protocol streams untouched.
        """
        if self.policy == "proportional":
            factor = num_files / self.reference_files
        elif self.policy == "power-law":
            # Pareto(alpha) has mean alpha/(alpha-1); rescale to mean 1
            # so the population's expected capacity stays at the base.
            factor = rng.paretovariate(self.alpha) * (self.alpha - 1.0) / self.alpha
        else:
            return base
        capacity = max(self.min_capacity, round(base * factor))
        if self.max_capacity:
            capacity = min(capacity, self.max_capacity)
        return capacity


@dataclass(frozen=True)
class FreshnessPlan:
    """Push invalidation + heterogeneous cache sizing (picklable, frozen).

    Attributes:
        notify_budget: maximum contacts notified per invalidation hop
            (the departing/overloaded peer's former contacts at hop 0,
            then each interested forwarder's own contacts).  0 disables
            push invalidation entirely.
        depth: maximum propagation hops along interest paths; 1 notifies
            only the subject's direct contacts.  0 disables push
            invalidation entirely.
        notify_delay: virtual seconds between propagation hops (through
            the engine, so both schedulers and the fault layer apply).
        on_overload: whether a maintenance ping tripping a circuit
            breaker (the target shed load past the failure threshold)
            also triggers a notice wave about the overloaded address.
            Requires an armed :class:`~repro.resilience.policy.\
ResiliencePolicy` breaker to ever fire.
        sizing: the per-peer capacity policy (:class:`CacheSizing`).

    ``notify_budget=0`` (or ``depth=0``) with uniform sizing is the
    documented no-op: :meth:`~repro.freshness.mediator.FreshnessMediator.\
from_plan` returns ``None`` and trace digests are bit-identical to a run
    with no plan at all.
    """

    notify_budget: int = 0
    depth: int = 1
    notify_delay: float = 0.05
    on_overload: bool = True
    sizing: CacheSizing = CacheSizing()

    def __post_init__(self) -> None:
        if self.notify_budget < 0:
            raise FreshnessError(
                f"notify_budget must be >= 0, got {self.notify_budget}"
            )
        if self.depth < 0:
            raise FreshnessError(f"depth must be >= 0, got {self.depth}")
        if self.notify_delay <= 0:
            raise FreshnessError(
                f"notify_delay must be > 0, got {self.notify_delay}"
            )
        if not isinstance(self.sizing, CacheSizing):
            raise FreshnessError(
                f"sizing must be a CacheSizing, got {type(self.sizing).__name__}"
            )

    @property
    def invalidates(self) -> bool:
        """Whether push invalidation can ever send a notice."""
        return self.notify_budget > 0 and self.depth > 0

    def is_noop(self) -> bool:
        """True when the plan cannot change anything."""
        return not self.invalidates and self.sizing.is_noop()

    def with_(self, **changes: object) -> "FreshnessPlan":
        """A copy with the given fields replaced (validation re-runs)."""
        from dataclasses import replace

        return replace(self, **changes)  # type: ignore[arg-type]
