"""Command-line entry point for the determinism and effect linters.

Usage::

    python -m repro.devtools.lint src/ tests/ benchmarks/
    python -m repro.devtools.lint --rules RD006-RD010 src/
    python -m repro.devtools.lint --rules RD006-RD010 --effects-report src/
    python -m repro.devtools.lint --list-rules
    python -m repro.devtools.lint --explain RD007

Exit status (honest and stable — CI depends on it):

* ``0`` — every selected rule is clean;
* ``1`` — findings (rule violations) were reported;
* ``2`` — usage or parse errors: unknown flags/rules, unreadable files,
  syntax errors, malformed/unknown pragmas, bad contract or baseline
  files, stale baseline entries.  Errors take precedence over findings,
  so a run that both finds violations and fails to parse a file exits 2.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import List, Optional, Set

from repro.devtools.linter import lint_all
from repro.devtools.reporter import render_result, render_rules
from repro.devtools.rules import RULES

_RULE_RE = re.compile(r"^RD\d{3}$")
_RANGE_RE = re.compile(r"^(RD\d{3})-(RD\d{3})$")


def parse_rule_selection(spec: str) -> Set[str]:
    """Parse ``--rules``: comma-separated ids and ``RDxxx-RDyyy`` ranges.

    Raises:
        ValueError: a token is malformed or names no registered rule.
    """
    selected: Set[str] = set()
    for token in spec.split(","):
        token = token.strip().upper()
        if not token:
            continue
        range_match = _RANGE_RE.match(token)
        if range_match:
            low = int(range_match.group(1)[2:])
            high = int(range_match.group(2)[2:])
            if low > high:
                raise ValueError(f"empty rule range {token!r}")
            ids = {f"RD{n:03d}" for n in range(low, high + 1)}
            known = ids & set(RULES)
            if not known:
                raise ValueError(f"rule range {token!r} matches no rules")
            selected |= known
            continue
        if _RULE_RE.match(token):
            if token not in RULES:
                raise ValueError(
                    f"unknown rule {token!r}; known: {sorted(RULES)}"
                )
            selected.add(token)
            continue
        raise ValueError(
            f"bad --rules token {token!r} (expected RDxxx or RDxxx-RDyyy)"
        )
    if not selected:
        raise ValueError("empty --rules selection")
    return selected


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for ``--help`` tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description=(
            "Static determinism lint: the per-file rules RD001-RD005 "
            "(named RNG streams, no wall clock, ordered iteration) plus "
            "the whole-program effect contracts RD006-RD010 "
            "(observation invisibility, fault substreams, kernel purity)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=[],
        help="files or directories to lint (e.g. src/ tests/ benchmarks/)",
    )
    parser.add_argument(
        "--rules",
        metavar="SPEC",
        help=(
            "restrict to a rule subset: comma-separated ids and ranges, "
            "e.g. 'RD006-RD010' or 'RD001,RD003' (default: all rules)"
        ),
    )
    parser.add_argument(
        "--effects-report",
        nargs="?",
        const="-",
        metavar="PATH",
        help=(
            "dump the inferred per-function effect table to PATH "
            "(default: stdout); implies the effect rules ran"
        ),
    )
    parser.add_argument(
        "--contracts",
        metavar="PATH",
        help="effect contract file (default: committed effect_contracts.toml)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="accepted-findings file (default: committed effect_baseline.toml)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule with its pragma slug and exit",
    )
    parser.add_argument(
        "--explain",
        metavar="RULE",
        help="print one rule's documentation (e.g. RD003) and exit",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the summary line on success",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Run the linter; returns the process exit code (see module doc)."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_rules())
        return 0
    if args.explain:
        rule_id = args.explain.upper()
        if rule_id not in RULES:
            print(
                f"unknown rule {args.explain!r}; known: {sorted(RULES)}",
                file=sys.stderr,
            )
            return 2
        print(render_rules([rule_id]))
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given", file=sys.stderr)
        return 2

    rule_ids: Optional[Set[str]] = None
    if args.rules:
        try:
            rule_ids = parse_rule_selection(args.rules)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    result, program, table = lint_all(
        args.paths,
        rule_ids=rule_ids,
        contracts_path=Path(args.contracts) if args.contracts else None,
        baseline_path=Path(args.baseline) if args.baseline else None,
    )

    if args.effects_report:
        if program is None or table is None:
            print(
                "error: --effects-report requires at least one effect rule "
                "(RD006-RD010) in the selection",
                file=sys.stderr,
            )
            return 2
        from repro.devtools.effects.report import render_effect_table

        rendered = render_effect_table(program, table)
        if args.effects_report == "-":
            print(rendered)
        else:
            Path(args.effects_report).write_text(
                rendered + "\n", encoding="utf-8"
            )

    if result.ok:
        if not args.quiet:
            print(render_result(result))
        return 0
    print(render_result(result))
    return 2 if result.errors else 1


if __name__ == "__main__":
    sys.exit(main())
