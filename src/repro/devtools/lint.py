"""Command-line entry point for the determinism linter.

Usage::

    python -m repro.devtools.lint src/ tests/ benchmarks/
    python -m repro.devtools.lint --list-rules
    python -m repro.devtools.lint --explain RD003

Exit status: 0 when every file is clean, 1 when violations or pragma/
syntax errors were found, 2 for usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.devtools.linter import lint_paths
from repro.devtools.reporter import render_result, render_rules
from repro.devtools.rules import RULES


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for ``--help`` tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description=(
            "Static determinism lint: enforce the named-RNG-stream, "
            "no-wall-clock, and ordered-iteration rules the simulator's "
            "bit-for-bit reproducibility depends on."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=[],
        help="files or directories to lint (e.g. src/ tests/ benchmarks/)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule with its pragma slug and exit",
    )
    parser.add_argument(
        "--explain",
        metavar="RULE",
        help="print one rule's documentation (e.g. RD003) and exit",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the summary line on success",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Run the linter; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_rules())
        return 0
    if args.explain:
        rule_id = args.explain.upper()
        if rule_id not in RULES:
            print(
                f"unknown rule {args.explain!r}; known: {sorted(RULES)}",
                file=sys.stderr,
            )
            return 2
        print(render_rules([rule_id]))
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given", file=sys.stderr)
        return 2

    result = lint_paths(args.paths)
    if result.ok:
        if not args.quiet:
            print(render_result(result))
        return 0
    print(render_result(result))
    return 1


if __name__ == "__main__":
    sys.exit(main())
