"""AST visitors implementing lint rules RD001-RD005.

Each visitor walks one module's AST and reports findings through a shared
:class:`FileContext`.  The visitors are deliberately heuristic — they run
on every commit, so false positives are costlier than the occasional miss;
anything they cannot prove is treated as clean, and the dynamic trace-hash
sanitizer (``Simulator(trace_hash=True)``) backstops what escapes them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.devtools.rules import (
    RD001,
    RD002,
    RD003,
    RD004,
    RD005,
    Rule,
    register_visitor,
)

#: ``random``-module functions that draw from the shared global generator.
GLOBAL_RANDOM_FUNCS = frozenset(
    {
        "seed", "random", "uniform", "randint", "randrange", "getrandbits",
        "choice", "choices", "shuffle", "sample", "triangular", "betavariate",
        "binomialvariate", "expovariate", "gammavariate", "gauss",
        "lognormvariate", "normalvariate", "vonmisesvariate", "paretovariate",
        "weibullvariate", "getstate", "setstate", "randbytes",
    }
)

#: ``time``-module functions that read the host clock.
WALLCLOCK_TIME_FUNCS = frozenset(
    {
        "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
        "perf_counter_ns", "process_time", "process_time_ns",
    }
)

#: ``datetime``/``date`` classmethods that read the host clock.
WALLCLOCK_DATETIME_METHODS = frozenset({"now", "today", "utcnow"})

#: RNG method names whose argument order matters (selection/permutation).
RNG_SELECTION_METHODS = frozenset({"choice", "choices", "sample", "shuffle"})

#: Any RNG method: used to detect draws inside an unordered loop.
RNG_DRAW_METHODS = GLOBAL_RANDOM_FUNCS | RNG_SELECTION_METHODS

#: Method names that push into heaps, caches, or the event schedule.
ORDER_SENSITIVE_METHODS = frozenset(
    {"insert", "evict", "schedule", "schedule_after", "heappush", "push"}
)

#: Names that look like simulation timestamps (RD004).
TIMESTAMP_NAMES = frozenset({"now", "ts", "time", "timestamp"})
TIMESTAMP_SUFFIXES = ("_time", "_ts", "_timestamp")

#: Engine internals that must not be touched outside the engine (RD005).
ENGINE_HEAP_ATTRS = frozenset({"_heap", "_seq"})
ENGINE_CLOCK_ATTR = "_now"


@dataclass
class FileContext:
    """Per-file state shared by every visitor.

    Attributes:
        path: path the file is reported (and classified) under.
        report: callback ``(rule, node, message)`` collecting findings.
    """

    path: str
    report: Callable[[Rule, ast.AST, str], None]
    _parts: tuple = field(init=False)

    def __post_init__(self) -> None:
        self._parts = PurePosixPath(self.path.replace("\\", "/")).parts

    @property
    def in_repro_package(self) -> bool:
        """Whether the file belongs to the ``repro`` package (not tests)."""
        return "repro" in self._parts

    def _is_module(self, *tail: str) -> bool:
        n = len(tail)
        return self._parts[-n:] == tail

    @property
    def is_rng_module(self) -> bool:
        return self._is_module("repro", "sim", "rng.py")

    @property
    def is_engine_module(self) -> bool:
        return self._is_module("repro", "sim", "engine.py")


class _ImportTracker(ast.NodeVisitor):
    """Base visitor that tracks aliases of interesting modules/names.

    ``module_aliases[name]`` maps a local name to the module it refers to
    (``import random as rnd`` -> ``{"rnd": "random"}``); ``name_imports``
    maps a local name to ``(module, original_name)`` for ``from`` imports.
    """

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.module_aliases: Dict[str, str] = {}
        self.name_imports: Dict[str, tuple] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            self.module_aliases[local] = alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                local = alias.asname or alias.name
                self.name_imports[local] = (node.module, alias.name)
        self.generic_visit(node)

    # Helpers -----------------------------------------------------------

    def _module_of(self, node: ast.AST) -> Optional[str]:
        """The module a bare name refers to, if it is a module alias."""
        if isinstance(node, ast.Name):
            return self.module_aliases.get(node.id)
        return None

    def _from_import_of(self, node: ast.AST) -> Optional[Tuple[str, str]]:
        """The ``(module, original)`` pair behind a from-imported name."""
        if isinstance(node, ast.Name):
            return self.name_imports.get(node.id)
        return None


@register_visitor("RD001")
class GlobalRandomVisitor(_ImportTracker):
    """RD001: global ``random.*`` calls / unseeded ``random.Random()``."""

    def visit_Call(self, node: ast.Call) -> None:
        if not self.ctx.is_rng_module:
            self._check(node)
        self.generic_visit(node)

    def _check(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and self._module_of(func.value) == "random":
            self._check_random_use(node, func.attr)
            return
        from_import = self._from_import_of(func)
        if from_import is not None and from_import[0] == "random":
            self._check_random_use(node, from_import[1])

    def _check_random_use(self, node: ast.Call, name: str) -> None:
        if name == "SystemRandom":
            self.ctx.report(
                RD001, node,
                "random.SystemRandom() draws OS entropy and can never "
                "be reproduced; use a named stream from repro.sim.rng",
            )
        elif name == "Random" and not node.args and not node.keywords:
            self.ctx.report(
                RD001, node,
                "unseeded random.Random() is seeded from OS entropy; pass "
                "an explicit seed or use a named stream from repro.sim.rng",
            )
        elif name in GLOBAL_RANDOM_FUNCS:
            self.ctx.report(
                RD001, node,
                f"random.{name}() uses the shared module-level generator; "
                "draw from a named stream or an injected random.Random",
            )


@register_visitor("RD002")
class WallClockVisitor(_ImportTracker):
    """RD002: wall-clock reads inside the ``repro`` package."""

    def visit_Call(self, node: ast.Call) -> None:
        if self.ctx.in_repro_package:
            self._check(node)
        self.generic_visit(node)

    def _check(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            # time.time(), time.monotonic(), ...
            if (
                self._module_of(func.value) == "time"
                and func.attr in WALLCLOCK_TIME_FUNCS
            ):
                self._flag(node, f"time.{func.attr}()")
                return
            if func.attr in WALLCLOCK_DATETIME_METHODS:
                value = func.value
                # datetime.datetime.now() / datetime.date.today()
                if (
                    isinstance(value, ast.Attribute)
                    and value.attr in ("datetime", "date")
                    and self._module_of(value.value) == "datetime"
                ):
                    self._flag(node, f"datetime.{value.attr}.{func.attr}()")
                    return
                # now()/today() on `from datetime import datetime, date`
                from_import = self._from_import_of(value)
                if (
                    from_import is not None
                    and from_import[0] == "datetime"
                    and from_import[1] in ("datetime", "date")
                ):
                    self._flag(node, f"{from_import[1]}.{func.attr}()")
                    return
        from_import = self._from_import_of(func)
        if (
            from_import is not None
            and from_import[0] == "time"
            and from_import[1] in WALLCLOCK_TIME_FUNCS
        ):
            self._flag(node, f"time.{from_import[1]}()")

    def _flag(self, node: ast.Call, what: str) -> None:
        self.ctx.report(
            RD002, node,
            f"{what} reads the wall clock inside simulation code; "
            "simulation time comes from the engine — if this is "
            "reporting-only, annotate with `# repro: allow-wallclock`",
        )


class _Scope:
    """One lexical scope's set-typed (unordered) local bindings."""

    __slots__ = ("unordered_names",)

    def __init__(self) -> None:
        self.unordered_names: Set[str] = set()


@register_visitor("RD003")
class UnorderedIterationVisitor(_ImportTracker):
    """RD003: unordered iteration feeding order-sensitive operations.

    Heuristic, scope-aware taint tracking:

    * an expression is *unordered* if it is a set literal/comprehension,
      a ``set()``/``frozenset()`` call, a set-operator combination of
      unordered operands, a local name assigned one of those, an
      attribute annotated with a set type anywhere in the module, or a
      ``list()``/comprehension built directly over an unordered source
      (listing a set freezes its arbitrary order — still nondeterministic);
    * ``sorted(...)`` (or any other explicit ordering) launders the taint;
    * a finding is reported when an unordered expression is iterated by a
      ``for`` whose body draws from an RNG, pushes into a heap/schedule,
      or inserts/evicts cache entries — or is passed directly to an RNG
      selection method (``sample``/``choice``/``choices``/``shuffle``).
    """

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self._scopes: List[_Scope] = [_Scope()]
        self.unordered_attrs: Set[str] = set()

    def visit_Module(self, node: ast.Module) -> None:
        self._collect_set_attributes(node)
        self.generic_visit(node)

    def _collect_set_attributes(self, module: ast.Module) -> None:
        """Pre-pass: attribute names annotated (or initialised) as sets."""
        for node in ast.walk(module):
            if isinstance(node, ast.AnnAssign) and self._is_set_annotation(
                node.annotation
            ):
                target = node.target
                if isinstance(target, ast.Attribute):
                    self.unordered_attrs.add(target.attr)
            elif isinstance(node, ast.Assign):
                if self._expr_class(node.value) != "unordered":
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Attribute):
                        self.unordered_attrs.add(target.attr)

    @staticmethod
    def _is_set_annotation(annotation: ast.AST) -> bool:
        try:
            text = ast.unparse(annotation)
        except Exception:  # pragma: no cover - malformed annotation
            return False
        head = text.split("[", 1)[0].strip()
        return head.split(".")[-1] in ("set", "Set", "frozenset", "FrozenSet")

    # Scope management --------------------------------------------------

    def _enter_scope(self, node: ast.AST) -> None:
        self._scopes.append(_Scope())
        self.generic_visit(node)
        self._scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_scope(node)

    # Taint classification ----------------------------------------------

    def _expr_class(self, node: Optional[ast.AST]) -> str:
        """Classify an expression: 'unordered', 'ordered', or 'unknown'."""
        if node is None:
            return "unknown"
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "unordered"
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in ("set", "frozenset"):
                    return "unordered"
                if func.id in ("sorted",):
                    return "ordered"
                if func.id in ("list", "tuple") and node.args:
                    # list(a_set) freezes the arbitrary order: still tainted.
                    return self._expr_class(node.args[0])
            return "unknown"
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            return self._expr_class(node.generators[0].iter)
        if isinstance(node, ast.Name):
            for scope in reversed(self._scopes):
                if node.id in scope.unordered_names:
                    return "unordered"
            return "unknown"
        if isinstance(node, ast.Attribute):
            if node.attr in self.unordered_attrs:
                return "unordered"
            return "unknown"
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            left = self._expr_class(node.left)
            right = self._expr_class(node.right)
            if "unordered" in (left, right):
                return "unordered"
            return "unknown"
        return "unknown"

    def _bind(self, target: ast.AST, klass: str) -> None:
        if not isinstance(target, ast.Name):
            return
        scope = self._scopes[-1]
        if klass == "unordered":
            scope.unordered_names.add(target.id)
        else:
            scope.unordered_names.discard(target.id)

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        klass = self._expr_class(node.value)
        for target in node.targets:
            self._bind(target, klass)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        if self._is_set_annotation(node.annotation):
            self._bind(node.target, "unordered")
        elif node.value is not None:
            self._bind(node.target, self._expr_class(node.value))

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.generic_visit(node)
        if self._expr_class(node.value) == "unordered":
            self._bind(node.target, "unordered")

    # Sinks --------------------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        if self._expr_class(node.iter) == "unordered":
            sensitive = self._order_sensitive_operation(node.body)
            if sensitive is not None:
                self.ctx.report(
                    RD003, node,
                    f"iterating an unordered set while the loop body calls "
                    f"{sensitive}; wrap the iterable in sorted() (or order "
                    "it deterministically) so the run does not depend on "
                    "set iteration order",
                )
        self.generic_visit(node)

    def _order_sensitive_operation(self, body: List[ast.stmt]) -> Optional[str]:
        """Name of the first order-sensitive call in ``body``, if any."""
        for stmt in body:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if isinstance(func, ast.Name) and func.id == "heappush":
                    return "heappush()"
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr in ORDER_SENSITIVE_METHODS:
                    return f".{func.attr}()"
                if func.attr in RNG_DRAW_METHODS and self._is_rngish(func.value):
                    return f"rng.{func.attr}()"
        return None

    @staticmethod
    def _is_rngish(node: ast.AST) -> bool:
        """Whether an expression plausibly denotes an RNG instance."""
        text: str
        if isinstance(node, ast.Name):
            text = node.id
        elif isinstance(node, ast.Attribute):
            text = node.attr
        elif isinstance(node, ast.Call):
            # e.g. self.rng.stream("policies").sample(...)
            func = node.func
            text = func.attr if isinstance(func, ast.Attribute) else ""
            if isinstance(func, ast.Attribute) and UnorderedIterationVisitor._is_rngish(
                func.value
            ):
                return True
        else:
            return False
        lowered = text.lower()
        return "rng" in lowered or "random" in lowered or lowered == "stream"

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in RNG_SELECTION_METHODS
            and self._is_rngish(func.value)
            and node.args
            and self._expr_class(node.args[0]) == "unordered"
        ):
            self.ctx.report(
                RD003, node,
                f"rng.{func.attr}() over a set-derived population: the "
                "draw depends on set iteration order; sort the population "
                "first",
            )
        self.generic_visit(node)


@register_visitor("RD004")
class FloatTimestampEqualityVisitor(_ImportTracker):
    """RD004: exact equality between two simulation timestamps."""

    @staticmethod
    def _timestamp_like(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        else:
            return None
        if name in TIMESTAMP_NAMES or name.endswith(TIMESTAMP_SUFFIXES):
            return name
        return None

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left_name = self._timestamp_like(left)
            right_name = self._timestamp_like(right)
            if left_name and right_name:
                self.ctx.report(
                    RD004, node,
                    f"exact {'==' if isinstance(op, ast.Eq) else '!='} "
                    f"between float timestamps {left_name!r} and "
                    f"{right_name!r}; accumulated float time makes exact "
                    "equality rounding-dependent — compare with a tolerance "
                    "or <=/>= window checks",
                )
        self.generic_visit(node)


@register_visitor("RD005")
class EngineHeapMutationVisitor(_ImportTracker):
    """RD005: engine internals touched outside ``repro.sim.engine``.

    ``self._heap`` / ``self._now`` inside a class's own methods are that
    class's private state (e.g. ``CandidatePool`` keeps its own heap) and
    are not flagged; the rule targets reaching *into another object* —
    ``sim._heap``, ``engine._now = ...`` — which bypasses ``schedule()``.
    """

    @staticmethod
    def _is_own_state(node: ast.Attribute) -> bool:
        return isinstance(node.value, ast.Name) and node.value.id in (
            "self",
            "cls",
        )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if not self.ctx.is_engine_module and not self._is_own_state(node):
            if node.attr in ENGINE_HEAP_ATTRS:
                self.ctx.report(
                    RD005, node,
                    f"direct access to engine internal `.{node.attr}` "
                    "bypasses schedule()'s (time, priority, seq) ordering "
                    "invariant; use schedule()/schedule_after()/cancel()",
                )
            elif node.attr == ENGINE_CLOCK_ATTR and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                self.ctx.report(
                    RD005, node,
                    "rewinding or overwriting the engine clock `._now` "
                    "breaks event ordering; drive time with run_until()",
                )
        self.generic_visit(node)
