"""Linter orchestration: source -> AST -> visitors -> filtered findings.

``lint_source`` is the core primitive (used directly by the fixture tests,
which lint in-memory code under a pretend path); ``lint_file`` and
``lint_paths`` wrap it for real files and directory trees.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Sequence

from repro.devtools.pragmas import PragmaIndex
from repro.devtools.rules import VISITOR_FACTORIES, Rule, Violation
from repro.devtools.visitors import FileContext

#: Directory names never descended into when expanding path arguments.
SKIPPED_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", ".pytest_cache"})


@dataclass
class LintResult:
    """Aggregate outcome of linting one or more files.

    Attributes:
        violations: surviving (non-suppressed) findings, in file order.
        errors: file-level problems — syntax errors, malformed or unknown
            pragmas.  Errors fail the lint just like violations do: a
            pragma typo that silently suppressed nothing would otherwise
            hide a real finding.
        files_checked: number of files parsed.
    """

    violations: List[Violation] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        """Whether the lint passed (no findings and no errors)."""
        return not self.violations and not self.errors

    def extend(self, other: "LintResult") -> None:
        """Fold another result into this one."""
        self.violations.extend(other.violations)
        self.errors.extend(other.errors)
        self.files_checked += other.files_checked


def lint_source(source: str, path: str) -> LintResult:
    """Lint ``source`` as though it lived at ``path``.

    ``path`` drives both reporting and scope decisions (RD001 exempts
    ``repro/sim/rng.py``, RD002 applies only inside the ``repro``
    package, RD005 exempts ``repro/sim/engine.py``), so fixture tests can
    exercise path-dependent behaviour without touching the filesystem.
    """
    result = LintResult(files_checked=1)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        result.errors.append(f"{path}:{exc.lineno or 0}: syntax error: {exc.msg}")
        return result

    pragmas = PragmaIndex.from_source(source)
    result.errors.extend(f"{path}: {error}" for error in pragmas.errors)

    raw: List[Violation] = []

    def report(rule: Rule, node: ast.AST, message: str) -> None:
        raw.append(
            Violation(
                rule=rule,
                path=path,
                line=getattr(node, "lineno", 0),
                column=getattr(node, "col_offset", 0) + 1,
                message=message,
            )
        )

    ctx = FileContext(path=path, report=report)
    for rule_id in sorted(VISITOR_FACTORIES):
        VISITOR_FACTORIES[rule_id](ctx).visit(tree)

    result.violations.extend(
        violation
        for violation in sorted(raw, key=lambda v: (v.line, v.column, v.rule.id))
        if not pragmas.suppresses(violation.rule.id, violation.line)
    )
    return result


def lint_file(path: str | Path) -> LintResult:
    """Lint one file on disk."""
    file_path = Path(path)
    try:
        source = file_path.read_text(encoding="utf-8")
    except OSError as exc:
        result = LintResult(files_checked=1)
        result.errors.append(f"{file_path}: unreadable: {exc}")
        return result
    return lint_source(source, str(file_path))


def iter_python_files(paths: Sequence[str | Path]) -> Iterable[Path]:
    """Expand files/directories into a sorted stream of ``*.py`` files."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not SKIPPED_DIRS.intersection(candidate.parts):
                    yield candidate
        else:
            yield path


def lint_paths(paths: Sequence[str | Path]) -> LintResult:
    """Lint every Python file under ``paths`` (files or directories)."""
    result = LintResult()
    for file_path in iter_python_files(paths):
        result.extend(lint_file(file_path))
    return result
