"""Linter orchestration: source -> AST -> visitors -> filtered findings.

``lint_source`` is the core primitive (used directly by the fixture tests,
which lint in-memory code under a pretend path); ``lint_file`` and
``lint_paths`` wrap it for real files and directory trees.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Set, Tuple

from repro.devtools.pragmas import SuppressionIndex

if TYPE_CHECKING:
    from repro.devtools.effects.callgraph import Program
    from repro.devtools.effects.model import EffectTable
from repro.devtools.rules import VISITOR_FACTORIES, Rule, Violation
from repro.devtools.visitors import FileContext

#: Directory names never descended into when expanding path arguments.
SKIPPED_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", ".pytest_cache"})


@dataclass
class LintResult:
    """Aggregate outcome of linting one or more files.

    Attributes:
        violations: surviving (non-suppressed) findings, in file order.
        errors: file-level problems — syntax errors, malformed or unknown
            pragmas.  Errors fail the lint just like violations do: a
            pragma typo that silently suppressed nothing would otherwise
            hide a real finding.
        files_checked: number of files parsed.
    """

    violations: List[Violation] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        """Whether the lint passed (no findings and no errors)."""
        return not self.violations and not self.errors

    def extend(self, other: "LintResult") -> None:
        """Fold another result into this one."""
        self.violations.extend(other.violations)
        self.errors.extend(other.errors)
        self.files_checked += other.files_checked


def lint_source(
    source: str, path: str, rule_ids: Optional[Set[str]] = None
) -> LintResult:
    """Lint ``source`` as though it lived at ``path``.

    ``path`` drives both reporting and scope decisions (RD001 exempts
    ``repro/sim/rng.py``, RD002 applies only inside the ``repro``
    package, RD005 exempts ``repro/sim/engine.py``), so fixture tests can
    exercise path-dependent behaviour without touching the filesystem.
    ``rule_ids`` restricts the pass to a subset of the per-file rules
    (None = all of RD001-RD005).
    """
    result = LintResult(files_checked=1)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        result.errors.append(f"{path}:{exc.lineno or 0}: syntax error: {exc.msg}")
        return result

    pragmas = SuppressionIndex.from_source(source, tree)
    result.errors.extend(f"{path}: {error}" for error in pragmas.errors)

    raw: List[Violation] = []

    def report(rule: Rule, node: ast.AST, message: str) -> None:
        raw.append(
            Violation(
                rule=rule,
                path=path,
                line=getattr(node, "lineno", 0),
                column=getattr(node, "col_offset", 0) + 1,
                message=message,
            )
        )

    ctx = FileContext(path=path, report=report)
    for rule_id in sorted(VISITOR_FACTORIES):
        if rule_ids is not None and rule_id not in rule_ids:
            continue
        VISITOR_FACTORIES[rule_id](ctx).visit(tree)

    result.violations.extend(
        violation
        for violation in sorted(raw, key=lambda v: (v.line, v.column, v.rule.id))
        if not pragmas.suppresses(violation.rule.id, violation.line)
    )
    return result


def lint_file(
    path: str | Path, rule_ids: Optional[Set[str]] = None
) -> LintResult:
    """Lint one file on disk."""
    file_path = Path(path)
    try:
        source = file_path.read_text(encoding="utf-8")
    except OSError as exc:
        result = LintResult(files_checked=1)
        result.errors.append(f"{file_path}: unreadable: {exc}")
        return result
    return lint_source(source, str(file_path), rule_ids)


def iter_python_files(paths: Sequence[str | Path]) -> Iterable[Path]:
    """Expand files/directories into a sorted stream of ``*.py`` files."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not SKIPPED_DIRS.intersection(candidate.parts):
                    yield candidate
        else:
            yield path


def lint_paths(
    paths: Sequence[str | Path], rule_ids: Optional[Set[str]] = None
) -> LintResult:
    """Lint every Python file under ``paths`` (files or directories).

    Runs the per-file rules (RD001-RD005, optionally restricted by
    ``rule_ids``); the whole-program effect rules RD006-RD010 are driven
    separately via :func:`repro.devtools.effects.analyze_paths` (see
    :func:`lint_all`).
    """
    result = LintResult()
    for file_path in iter_python_files(paths):
        result.extend(lint_file(file_path, rule_ids))
    return result


def lint_all(
    paths: Sequence[str | Path],
    rule_ids: Optional[Set[str]] = None,
    contracts_path: Optional[Path] = None,
    baseline_path: Optional[Path] = None,
) -> Tuple[LintResult, "Optional[Program]", "Optional[EffectTable]"]:
    """Run per-file and whole-program rules over ``paths``.

    Returns ``(LintResult, Program | None, EffectTable | None)`` — the
    program and effect table are None when no effect rule was selected.
    """
    from repro.devtools.effects import analyze_paths
    from repro.devtools.effects.contracts import ContractError
    from repro.devtools.rules import EFFECT_RULE_IDS, FILE_RULE_IDS

    selected_file = (
        set(FILE_RULE_IDS)
        if rule_ids is None
        else set(rule_ids) & set(FILE_RULE_IDS)
    )
    selected_effect = (
        set(EFFECT_RULE_IDS)
        if rule_ids is None
        else set(rule_ids) & set(EFFECT_RULE_IDS)
    )

    result = LintResult()
    files = list(iter_python_files(paths))
    if selected_file:
        for file_path in files:
            result.extend(lint_file(file_path, selected_file))
    else:
        result.files_checked = len(files)

    program = None
    table = None
    if selected_effect:
        try:
            effect_result, program = analyze_paths(
                files,
                contracts_path=contracts_path,
                baseline_path=baseline_path,
                rule_ids=selected_effect,
            )
        except ContractError as exc:
            result.errors.append(str(exc))
        else:
            result.violations.extend(effect_result.violations)
            result.errors.extend(effect_result.errors)
            table = effect_result.table
    result.violations.sort(key=lambda v: (v.path, v.line, v.column, v.rule.id))
    return result, program, table
