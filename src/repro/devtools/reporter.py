"""Plain-text rendering of lint results and rule documentation."""

from __future__ import annotations

from typing import List

from repro.devtools.linter import LintResult
from repro.devtools.rules import ORDERED_RULES, RULES


def render_result(result: LintResult) -> str:
    """Human-readable report: findings, errors, then a one-line summary."""
    lines: List[str] = [v.render() for v in result.violations]
    lines.extend(f"error: {error}" for error in result.errors)
    lines.append(summarize(result))
    return "\n".join(lines)


def summarize(result: LintResult) -> str:
    """One-line summary used as the report footer."""
    if result.ok:
        return f"determinism lint: {result.files_checked} file(s) clean"
    parts = [f"{len(result.violations)} violation(s)"]
    if result.errors:
        parts.append(f"{len(result.errors)} error(s)")
    return (
        f"determinism lint: {', '.join(parts)} "
        f"across {result.files_checked} file(s)"
    )


def render_rules(rule_ids: List[str] | None = None) -> str:
    """Documentation block for ``--explain`` / ``--list-rules``."""
    rules = ORDERED_RULES
    if rule_ids:
        rules = [RULES[rule_id] for rule_id in rule_ids]
    blocks: List[str] = []
    for rule in rules:
        blocks.append(
            f"{rule.id} (# repro: allow-{rule.slug})\n"
            f"  {rule.summary}\n"
            f"  {rule.rationale}"
        )
    return "\n\n".join(blocks)
