"""Rule registry and violation records for the determinism linter.

A :class:`Rule` is a static description (id, pragma slug, summary); the
matching AST logic lives in :mod:`repro.devtools.visitors`.  Keeping the
descriptions in one table gives the CLI ``--explain`` output, the pragma
parser, and the fixture tests a single source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List


@dataclass(frozen=True, slots=True)
class Rule:
    """A lint rule's static description.

    Attributes:
        id: short stable identifier (``RD001`` ... ``RD005``).
        slug: pragma suffix: ``# repro: allow-<slug>`` suppresses the rule.
        summary: one-line description shown by the reporter.
        rationale: why violating the rule breaks bit-for-bit reproduction.
    """

    id: str
    slug: str
    summary: str
    rationale: str

    @property
    def pragma_keys(self) -> frozenset[str]:
        """Tokens accepted after ``allow-`` to suppress this rule."""
        return frozenset({self.slug.lower(), self.id.lower()})


@dataclass(frozen=True, slots=True)
class Violation:
    """One finding: a rule broken at a specific source location."""

    rule: Rule
    path: str
    line: int
    column: int
    message: str

    def render(self) -> str:
        """``path:line:col: RDxxx message`` — editor-clickable."""
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.rule.id} {self.message}"
        )


#: Registry of every rule, keyed by rule id, in id order.
RULES: Dict[str, Rule] = {}

#: Visitor factories registered per rule id (filled by visitors.py).
VISITOR_FACTORIES: Dict[str, Callable] = {}


def register_rule(rule: Rule) -> Rule:
    """Add ``rule`` to the registry (idempotent for identical rules)."""
    existing = RULES.get(rule.id)
    if existing is not None and existing != rule:
        raise ValueError(f"conflicting registration for rule {rule.id}")
    RULES[rule.id] = rule
    return rule


def register_visitor(rule_id: str) -> Callable:
    """Class decorator: associate an AST visitor factory with ``rule_id``."""
    if rule_id not in RULES:
        raise ValueError(f"cannot register visitor for unknown rule {rule_id}")

    def decorator(factory: Callable) -> Callable:
        VISITOR_FACTORIES[rule_id] = factory
        return factory

    return decorator


def rules_for_pragma_key(key: str) -> List[Rule]:
    """Rules suppressed by pragma token ``key`` (slug or id, any case)."""
    lowered = key.lower()
    return [rule for rule in RULES.values() if lowered in rule.pragma_keys]


def all_pragma_keys() -> Iterable[str]:
    """Every token accepted after ``allow-`` in a suppression pragma."""
    keys: List[str] = []
    for rule in RULES.values():
        keys.extend(sorted(rule.pragma_keys))
    return keys


RD001 = register_rule(
    Rule(
        id="RD001",
        slug="global-random",
        summary=(
            "module-level random.* call or unseeded random.Random() "
            "outside repro.sim.rng"
        ),
        rationale=(
            "The global random generator is shared mutable state: any new "
            "consumer perturbs every existing draw sequence, and unseeded "
            "Random() pulls OS entropy.  Randomness must flow through named "
            "streams (repro.sim.rng) or an injected, explicitly seeded "
            "random.Random."
        ),
    )
)

RD002 = register_rule(
    Rule(
        id="RD002",
        slug="wallclock",
        summary="wall-clock read (time.time/datetime.now/...) in simulation code",
        rationale=(
            "Simulation time is the engine clock; reading the wall clock "
            "inside the repro package lets host speed leak into results. "
            "Wall-clock is reporting-only and must carry an explicit "
            "allow-wallclock pragma."
        ),
    )
)

RD003 = register_rule(
    Rule(
        id="RD003",
        slug="unordered-iter",
        summary=(
            "unordered set iteration feeding RNG selection, heap pushes, "
            "or cache eviction without sorted()"
        ),
        rationale=(
            "Set iteration order is an implementation detail; when it feeds "
            "policy selection, scheduling, or eviction the run is only "
            "accidentally reproducible.  Sort (or otherwise deterministically "
            "order) the collection first.  Dict iteration is insertion-"
            "ordered and therefore accepted."
        ),
    )
)

RD004 = register_rule(
    Rule(
        id="RD004",
        slug="float-time-eq",
        summary="== / != between two floating-point simulation timestamps",
        rationale=(
            "Timestamps are accumulated floats; exact equality between two "
            "computed timestamps flips on rounding and silently changes "
            "event order.  Compare against an explicit tolerance or use "
            "<=/>= window checks."
        ),
    )
)

RD005 = register_rule(
    Rule(
        id="RD005",
        slug="heap-mutation",
        summary="engine heap internals (_heap/_seq/_now) touched outside schedule()",
        rationale=(
            "The engine's (time, priority, seq) ordering invariant holds "
            "only when every insertion goes through schedule()/"
            "schedule_after().  Direct pokes at _heap, _seq, or _now bypass "
            "sequence numbering and break the trace hash."
        ),
    )
)

RD006 = register_rule(
    Rule(
        id="RD006",
        slug="effect-observe",
        summary=(
            "RNG_DRAW or SCHEDULE effect reachable from repro.observe "
            "(observation must be invisible to the trace)"
        ),
        rationale=(
            "Arming repro.observe must never perturb a run: the golden "
            "digest pins prove it for the configs we pin, and this "
            "contract proves it for every call path.  Nothing reachable "
            "from an observe entry point may draw randomness or touch "
            "the event schedule."
        ),
    )
)

RD007 = register_rule(
    Rule(
        id="RD007",
        slug="effect-fault-substream",
        summary=(
            "repro.faults RNG access outside a constant 'fault:'-prefixed "
            "substream name"
        ),
        rationale=(
            "Fault draws live on fault:* substreams so that toggling a "
            "fault source never shifts protocol streams (policies, "
            "queries, ...).  Every derive_seed()/stream() call site in "
            "repro.faults must pass a string whose literal prefix is "
            "'fault:' — a computed name could collide with a protocol "
            "stream and silently break the all-zeros-invisibility pin."
        ),
    )
)

RD008 = register_rule(
    Rule(
        id="RD008",
        slug="effect-reporting",
        summary=(
            "SCHEDULE effect reachable from repro.reporting or "
            "repro.analysis (post-hoc code must not schedule events)"
        ),
        rationale=(
            "Reporting and analysis run after (or beside) the simulation "
            "and must stay read-only with respect to the event schedule; "
            "a scheduled event from a formatter would change the trace "
            "depending on whether results are rendered."
        ),
    )
)

RD009 = register_rule(
    Rule(
        id="RD009",
        slug="effect-supervisor",
        summary=(
            "repro.experiments.supervisor touching simulation state "
            "(RNG/schedule effects, sim-package imports, global mutation)"
        ),
        rationale=(
            "The supervisor orchestrates worker processes; all simulation "
            "state lives behind the execute_trial boundary.  If the "
            "supervisor itself drew randomness, scheduled events, or "
            "imported simulation modules, a resumed sweep could diverge "
            "from a one-shot run — the byte-identical resume pin only "
            "checks the sweeps we pin."
        ),
    )
)

RD010 = register_rule(
    Rule(
        id="RD010",
        slug="effect-kernel-io",
        summary=(
            "FILE_IO or WALLCLOCK effect inside the repro.sim kernel "
            "(the hot loop does no I/O)"
        ),
        rationale=(
            "The event kernel is the innermost loop of every experiment; "
            "file I/O or wall-clock reads there leak host speed into "
            "results and wreck throughput.  Profiling reads are the only "
            "sanctioned exception and carry explicit pragmas."
        ),
    )
)

#: Rule ids checked per-file by AST visitors (repro.devtools.visitors).
FILE_RULE_IDS: frozenset = frozenset({"RD001", "RD002", "RD003", "RD004", "RD005"})

#: Rule ids checked whole-program by the effect engine (devtools.effects).
EFFECT_RULE_IDS: frozenset = frozenset({"RD006", "RD007", "RD008", "RD009", "RD010"})

#: Rules in id order, for reporting.
ORDERED_RULES: List[Rule] = [RULES[key] for key in sorted(RULES)]
