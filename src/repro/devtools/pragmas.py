"""Suppression pragmas for the determinism linter.

A finding is suppressed by a comment on the same logical line::

    entry = pool[rng.randrange(len(pool))]  # repro: allow-unordered-iter

Accepted forms:

* ``# repro: allow-<slug>`` — e.g. ``allow-wallclock`` (preferred: says
  *what* is being allowed);
* ``# repro: allow-<rule-id>`` — e.g. ``allow-RD002`` (case-insensitive);
* several suppressions in one comment, comma-separated:
  ``# repro: allow-wallclock, allow-global-random``.

Pragmas are extracted with :mod:`tokenize`, not string search, so pragma
text inside string literals never suppresses anything.  A pragma on the
first line of a multi-line (parenthesized or continued) statement
suppresses findings reported on any of that statement's lines: the
:class:`SuppressionIndex` pairs the per-line pragma map with statement
extents from the AST, so ``# repro: allow-*`` at the start of a wrapped
call covers findings the visitors report on its continuation lines.  For
compound statements (``for``/``if``/``def`` ...) only the header lines —
up to the first body statement — are covered, so a pragma on a loop line
never blankets the loop body.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.devtools.rules import rules_for_pragma_key

#: Matches one pragma comment; group 1 is the comma-separated token list.
_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*(allow-[A-Za-z0-9_-]+(?:\s*,\s*allow-[A-Za-z0-9_-]+)*)",
)

_TOKEN_RE = re.compile(r"allow-([A-Za-z0-9_-]+)")


class PragmaError(ValueError):
    """Raised for a ``# repro:`` comment naming no known rule."""


def parse_pragma_comment(comment: str) -> Set[str]:
    """Rule ids suppressed by one comment string (empty if not a pragma).

    Raises:
        PragmaError: the comment is a ``# repro:`` pragma but one of its
            ``allow-`` tokens matches no registered rule (catches typos
            like ``allow-wallclok`` that would otherwise silently fail
            to suppress).
    """
    match = _PRAGMA_RE.search(comment)
    if match is None:
        # Anything with the pragma prefix but no parsable allow-list is a
        # typo the author expected to suppress something.
        if re.search(r"#\s*repro:", comment):
            raise PragmaError(f"malformed repro pragma: {comment.strip()!r}")
        return set()
    rule_ids: Set[str] = set()
    for token in _TOKEN_RE.findall(match.group(1)):
        rules = rules_for_pragma_key(token)
        if not rules:
            raise PragmaError(
                f"unknown rule {token!r} in pragma: {comment.strip()!r}"
            )
        rule_ids.update(rule.id for rule in rules)
    return rule_ids


class PragmaIndex:
    """Per-file map of line number -> rule ids suppressed on that line."""

    __slots__ = ("_by_line", "errors")

    def __init__(
        self, by_line: Dict[int, FrozenSet[str]], errors: List[str]
    ) -> None:
        self._by_line = by_line
        self.errors = errors

    @classmethod
    def from_source(cls, source: str) -> "PragmaIndex":
        """Scan ``source`` for pragma comments.

        Tokenization errors (the file may not even be valid Python) yield
        an empty index; the linter reports the syntax error separately.
        """
        by_line: Dict[int, FrozenSet[str]] = {}
        errors: List[str] = []
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                try:
                    ids = parse_pragma_comment(token.string)
                except PragmaError as exc:
                    errors.append(f"line {token.start[0]}: {exc}")
                    continue
                if ids:
                    line = token.start[0]
                    existing = by_line.get(line, frozenset())
                    by_line[line] = existing | frozenset(ids)
        except tokenize.TokenError:
            pass
        return cls(by_line, errors)

    def suppresses(self, rule_id: str, line: int) -> bool:
        """Whether ``rule_id`` is suppressed on ``line``."""
        return rule_id in self._by_line.get(line, frozenset())

    def lines(self) -> Dict[int, FrozenSet[str]]:
        """Snapshot of the line -> suppressed-rule-ids map."""
        return dict(self._by_line)


#: Statements whose full (lineno, end_lineno) span is one logical line.
_SIMPLE_STATEMENTS = (
    ast.Assign,
    ast.AnnAssign,
    ast.AugAssign,
    ast.Expr,
    ast.Return,
    ast.Raise,
    ast.Assert,
    ast.Delete,
    ast.Import,
    ast.ImportFrom,
    ast.Global,
    ast.Nonlocal,
)


def statement_extents(tree: ast.AST) -> List[Tuple[int, int]]:
    """Multi-line spans ``(first line, last line)`` of logical statements.

    Simple statements span their whole node; compound statements span
    only their header (down to the line before the first body statement),
    so a pragma on ``for ...:`` covers a wrapped iterable expression but
    never the loop body.  Single-line statements are omitted — exact-line
    matching already handles them.
    """
    extents: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        start = getattr(node, "lineno", None)
        if start is None:
            continue
        if isinstance(node, _SIMPLE_STATEMENTS):
            end = getattr(node, "end_lineno", start) or start
        elif isinstance(node, ast.stmt):
            body = getattr(node, "body", None)
            if not body or not isinstance(body, list):
                continue
            first = getattr(body[0], "lineno", start)
            end = first - 1
        else:
            continue
        if end > start:
            extents.append((start, end))
    return extents


class SuppressionIndex:
    """Pragma lookups extended across multi-line statements.

    Wraps a :class:`PragmaIndex` with the statement extents of the parsed
    module: a finding on line ``n`` is suppressed if a pragma sits on
    ``n`` itself or on the first line of a multi-line statement whose
    span contains ``n``.
    """

    __slots__ = ("_pragmas", "_extents")

    def __init__(
        self, pragmas: PragmaIndex, extents: List[Tuple[int, int]]
    ) -> None:
        self._pragmas = pragmas
        self._extents = extents

    @classmethod
    def from_source(
        cls, source: str, tree: Optional[ast.AST] = None
    ) -> "SuppressionIndex":
        """Build from source text (and its parsed tree, when available)."""
        pragmas = PragmaIndex.from_source(source)
        extents = statement_extents(tree) if tree is not None else []
        return cls(pragmas, extents)

    @property
    def errors(self) -> List[str]:
        return self._pragmas.errors

    def suppresses(self, rule_id: str, line: int) -> bool:
        if self._pragmas.suppresses(rule_id, line):
            return True
        for start, end in self._extents:
            if start <= line <= end and self._pragmas.suppresses(
                rule_id, start
            ):
                return True
        return False
