"""Suppression pragmas for the determinism linter.

A finding is suppressed by a comment on the same logical line::

    entry = pool[rng.randrange(len(pool))]  # repro: allow-unordered-iter

Accepted forms:

* ``# repro: allow-<slug>`` — e.g. ``allow-wallclock`` (preferred: says
  *what* is being allowed);
* ``# repro: allow-<rule-id>`` — e.g. ``allow-RD002`` (case-insensitive);
* several suppressions in one comment, comma-separated:
  ``# repro: allow-wallclock, allow-global-random``.

Pragmas are extracted with :mod:`tokenize`, not string search, so pragma
text inside string literals never suppresses anything.  A pragma on the
first line of a multi-line statement suppresses findings reported anywhere
on that statement's lines (handled by the linter, which checks the
reported line only — visitors report the line the pragma-carrying token
lives on).
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, List, Set

from repro.devtools.rules import rules_for_pragma_key

#: Matches one pragma comment; group 1 is the comma-separated token list.
_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*(allow-[A-Za-z0-9_-]+(?:\s*,\s*allow-[A-Za-z0-9_-]+)*)",
)

_TOKEN_RE = re.compile(r"allow-([A-Za-z0-9_-]+)")


class PragmaError(ValueError):
    """Raised for a ``# repro:`` comment naming no known rule."""


def parse_pragma_comment(comment: str) -> Set[str]:
    """Rule ids suppressed by one comment string (empty if not a pragma).

    Raises:
        PragmaError: the comment is a ``# repro:`` pragma but one of its
            ``allow-`` tokens matches no registered rule (catches typos
            like ``allow-wallclok`` that would otherwise silently fail
            to suppress).
    """
    match = _PRAGMA_RE.search(comment)
    if match is None:
        # Anything with the pragma prefix but no parsable allow-list is a
        # typo the author expected to suppress something.
        if re.search(r"#\s*repro:", comment):
            raise PragmaError(f"malformed repro pragma: {comment.strip()!r}")
        return set()
    rule_ids: Set[str] = set()
    for token in _TOKEN_RE.findall(match.group(1)):
        rules = rules_for_pragma_key(token)
        if not rules:
            raise PragmaError(
                f"unknown rule {token!r} in pragma: {comment.strip()!r}"
            )
        rule_ids.update(rule.id for rule in rules)
    return rule_ids


class PragmaIndex:
    """Per-file map of line number -> rule ids suppressed on that line."""

    __slots__ = ("_by_line", "errors")

    def __init__(
        self, by_line: Dict[int, FrozenSet[str]], errors: List[str]
    ) -> None:
        self._by_line = by_line
        self.errors = errors

    @classmethod
    def from_source(cls, source: str) -> "PragmaIndex":
        """Scan ``source`` for pragma comments.

        Tokenization errors (the file may not even be valid Python) yield
        an empty index; the linter reports the syntax error separately.
        """
        by_line: Dict[int, FrozenSet[str]] = {}
        errors: List[str] = []
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                try:
                    ids = parse_pragma_comment(token.string)
                except PragmaError as exc:
                    errors.append(f"line {token.start[0]}: {exc}")
                    continue
                if ids:
                    line = token.start[0]
                    existing = by_line.get(line, frozenset())
                    by_line[line] = existing | frozenset(ids)
        except tokenize.TokenError:
            pass
        return cls(by_line, errors)

    def suppresses(self, rule_id: str, line: int) -> bool:
        """Whether ``rule_id`` is suppressed on ``line``."""
        return rule_id in self._by_line.get(line, frozenset())

    def lines(self) -> Dict[int, FrozenSet[str]]:
        """Snapshot of the line -> suppressed-rule-ids map."""
        return dict(self._by_line)
