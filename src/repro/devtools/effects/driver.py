"""Top-level entry points tying extraction, inference, and contracts.

``analyze_paths`` is what the lint CLI calls: it maps ``*.py`` files to
dotted module names (only files inside a ``repro`` package participate —
test and benchmark files cannot be imported as ``repro.*`` and no
contract scopes them), builds the program, and evaluates the committed
contracts.  ``analyze_sources`` is the in-memory variant the fixture
corpus uses, with explicit virtual module names.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.devtools.effects.callgraph import Program, build_program
from repro.devtools.effects.checker import EffectCheckResult, check_effects
from repro.devtools.effects.contracts import (
    Baseline,
    Contract,
    load_baseline,
    load_contracts,
)


def module_name_for(path: Path) -> Optional[str]:
    """Dotted module name for a file inside a ``repro`` package tree."""
    parts = list(path.parts)
    if "repro" not in parts:
        return None
    start = parts.index("repro")
    dotted = parts[start:]
    leaf = dotted[-1]
    if not leaf.endswith(".py"):
        return None
    if leaf == "__init__.py":
        dotted = dotted[:-1]
    else:
        dotted[-1] = leaf[: -len(".py")]
    return ".".join(dotted)


def collect_sources(
    files: Iterable[Path],
) -> Tuple[Dict[str, Tuple[str, str]], List[str]]:
    """Read ``repro``-package files into ``{module: (path, source)}``."""
    sources: Dict[str, Tuple[str, str]] = {}
    errors: List[str] = []
    for path in files:
        module = module_name_for(path)
        if module is None:
            continue
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            errors.append(f"{path}: unreadable: {exc}")
            continue
        sources[module] = (str(path), source)
    return sources, errors


def analyze_sources(
    sources: Dict[str, Tuple[str, str]],
    contracts: Optional[Sequence[Contract]] = None,
    baseline: Optional[Baseline] = None,
    rule_ids: Optional[Set[str]] = None,
) -> EffectCheckResult:
    """Run the effect engine over in-memory ``{module: (path, source)}``."""
    program = build_program(dict(sources))
    contract_list = (
        list(contracts) if contracts is not None else load_contracts()
    )
    baseline_obj = baseline if baseline is not None else Baseline()
    return check_effects(program, contract_list, baseline_obj, rule_ids)


def analyze_paths(
    files: Iterable[Path],
    contracts_path: Optional[Path] = None,
    baseline_path: Optional[Path] = None,
    rule_ids: Optional[Set[str]] = None,
) -> Tuple[EffectCheckResult, Program]:
    """Run the effect engine over files on disk with committed contracts."""
    sources, read_errors = collect_sources(files)
    program = build_program(sources)
    contracts = load_contracts(contracts_path)
    baseline = load_baseline(baseline_path)
    result = check_effects(program, contracts, baseline, rule_ids)
    result.errors = read_errors + result.errors
    return result, program
