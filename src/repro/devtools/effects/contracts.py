"""Effect contracts and the accepted-findings baseline.

Contracts are declared in ``effect_contracts.toml`` (committed next to
this module) as an array of ``[[contract]]`` tables::

    [[contract]]
    rule = "RD006"
    scope = ["repro.observe"]
    forbid = ["RNG_DRAW", "SCHEDULE"]
    exempt = ["repro.observe.manifest.replay_config"]
    reason = "arming observation must never perturb a run"

Fields:

* ``rule`` — the RD006-RD010 rule id violations are reported under;
* ``scope`` — dotted module prefixes whose functions are contract roots;
* ``forbid`` — effect names no root may transitively carry;
* ``exempt`` — qualname prefixes excluded from the root set (declared
  architectural exceptions, e.g. manifest *replay* deliberately re-runs
  simulations);
* ``opaque`` — qualnames treated as effect boundaries during this
  contract's reachability pass;
* ``forbid_imports`` — module prefixes no in-scope module may import
  (runtime imports only; ``TYPE_CHECKING`` blocks are ignored);
* ``substream_prefix`` — every ``derive_seed``/``.stream`` call site in
  scope must name its stream with a literal starting with this prefix;
* ``reason`` — one line echoed in every finding.

The *baseline* (``effect_baseline.toml``) lists accepted findings as
``[[accept]]`` tables keyed by ``rule`` and origin ``function`` qualname,
each with a mandatory ``reason``.  Baseline entries that match nothing
are reported as errors so the file can only shrink honestly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.devtools.effects.model import Effect

#: The committed default contract and baseline files.
DEFAULT_CONTRACTS_PATH = Path(__file__).with_name("effect_contracts.toml")
DEFAULT_BASELINE_PATH = Path(__file__).with_name("effect_baseline.toml")


class ContractError(ValueError):
    """Raised for an unreadable or malformed contract/baseline file."""


@dataclass(frozen=True, slots=True)
class Contract:
    """One declared effect contract (see module docstring for fields)."""

    rule_id: str
    scope: Tuple[str, ...]
    reason: str
    forbid: FrozenSet[Effect] = frozenset()
    exempt: Tuple[str, ...] = ()
    opaque: Tuple[str, ...] = ()
    forbid_imports: Tuple[str, ...] = ()
    substream_prefix: Optional[str] = None

    def in_scope(self, module: str) -> bool:
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.scope
        )

    def is_exempt(self, qualname: str) -> bool:
        return any(
            qualname == prefix or qualname.startswith(prefix + ".")
            for prefix in self.exempt
        )


@dataclass(frozen=True, slots=True)
class BaselineEntry:
    """One accepted finding: (rule, origin-function qualname, reason)."""

    rule_id: str
    function: str
    reason: str


@dataclass
class Baseline:
    """The committed accepted-findings list, with usage tracking."""

    entries: List[BaselineEntry] = field(default_factory=list)

    def accepts(self, rule_id: str, function: str) -> bool:
        return any(
            e.rule_id == rule_id and e.function == function
            for e in self.entries
        )

    def unused(self, used: Set[Tuple[str, str]]) -> List[BaselineEntry]:
        return [
            e for e in self.entries if (e.rule_id, e.function) not in used
        ]


# ----------------------------------------------------------------------
# TOML loading (tomllib on 3.11+, a restricted fallback parser on 3.10)
# ----------------------------------------------------------------------


def _parse_toml(text: str, origin: str) -> Dict[str, Any]:
    try:
        import tomllib
    except ImportError:  # pragma: no cover - Python 3.10 path
        return _parse_mini_toml(text, origin)
    try:
        return tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise ContractError(f"{origin}: {exc}") from exc


def _parse_mini_toml(text: str, origin: str) -> Dict[str, Any]:
    """Restricted TOML subset: ``[[table]]`` arrays of string/list keys.

    Supports exactly the shape of the contract and baseline files —
    comments, blank lines, ``[[name]]`` headers, ``key = "string"`` and
    ``key = ["a", "b"]`` — so Python 3.10 (no :mod:`tomllib`) can still
    run the lint without third-party dependencies.
    """
    import re

    result: Dict[str, Any] = {}
    current: Optional[Dict[str, Any]] = None
    array_re = re.compile(r'"((?:[^"\\]|\\.)*)"')
    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[[") and line.endswith("]]"):
            name = line[2:-2].strip()
            current = {}
            result.setdefault(name, []).append(current)
            continue
        if "=" in line and current is not None:
            key, _, value = line.partition("=")
            key = key.strip()
            value = value.strip()
            if value.startswith("["):
                current[key] = array_re.findall(value)
            elif value.startswith('"'):
                match = array_re.match(value)
                if match is None:
                    raise ContractError(
                        f"{origin}:{lineno}: unparsable value {value!r}"
                    )
                current[key] = match.group(1)
            else:
                raise ContractError(
                    f"{origin}:{lineno}: unsupported value {value!r} "
                    "(mini-TOML fallback handles strings and string lists)"
                )
            continue
        raise ContractError(f"{origin}:{lineno}: unparsable line {line!r}")
    return result


def _string_list(raw: Any, origin: str, key: str) -> Tuple[str, ...]:
    if raw is None:
        return ()
    if isinstance(raw, str):
        return (raw,)
    if isinstance(raw, list) and all(isinstance(item, str) for item in raw):
        return tuple(raw)
    raise ContractError(f"{origin}: {key} must be a string or list of strings")


def load_contracts(path: Optional[Path] = None) -> List[Contract]:
    """Load and validate contracts from ``path`` (default: committed file)."""
    from repro.devtools.rules import EFFECT_RULE_IDS

    contract_path = Path(path) if path is not None else DEFAULT_CONTRACTS_PATH
    try:
        text = contract_path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ContractError(f"{contract_path}: unreadable: {exc}") from exc
    data = _parse_toml(text, str(contract_path))
    contracts: List[Contract] = []
    for raw in data.get("contract", []):
        origin = str(contract_path)
        rule_id = raw.get("rule")
        if rule_id not in EFFECT_RULE_IDS:
            raise ContractError(
                f"{origin}: contract rule must be one of "
                f"{sorted(EFFECT_RULE_IDS)}, got {rule_id!r}"
            )
        scope = _string_list(raw.get("scope"), origin, "scope")
        if not scope:
            raise ContractError(f"{origin}: contract {rule_id} has no scope")
        reason = raw.get("reason")
        if not isinstance(reason, str) or not reason:
            raise ContractError(
                f"{origin}: contract {rule_id} needs a reason line"
            )
        forbid_names = _string_list(raw.get("forbid"), origin, "forbid")
        try:
            forbid = frozenset(Effect(name) for name in forbid_names)
        except ValueError as exc:
            raise ContractError(
                f"{origin}: contract {rule_id}: unknown effect in "
                f"{forbid_names!r} ({sorted(e.value for e in Effect)})"
            ) from exc
        prefix = raw.get("substream_prefix")
        if prefix is not None and not isinstance(prefix, str):
            raise ContractError(
                f"{origin}: contract {rule_id}: substream_prefix must be a string"
            )
        contracts.append(
            Contract(
                rule_id=rule_id,
                scope=scope,
                reason=reason,
                forbid=forbid,
                exempt=_string_list(raw.get("exempt"), origin, "exempt"),
                opaque=_string_list(raw.get("opaque"), origin, "opaque"),
                forbid_imports=_string_list(
                    raw.get("forbid_imports"), origin, "forbid_imports"
                ),
                substream_prefix=prefix,
            )
        )
    if not contracts:
        raise ContractError(f"{contract_path}: no [[contract]] tables found")
    return contracts


def load_baseline(path: Optional[Path] = None) -> Baseline:
    """Load the accepted-findings baseline (missing file = empty)."""
    from repro.devtools.rules import EFFECT_RULE_IDS

    baseline_path = Path(path) if path is not None else DEFAULT_BASELINE_PATH
    if path is None and not baseline_path.exists():
        return Baseline()
    try:
        text = baseline_path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ContractError(f"{baseline_path}: unreadable: {exc}") from exc
    data = _parse_toml(text, str(baseline_path))
    baseline = Baseline()
    for raw in data.get("accept", []):
        rule_id = raw.get("rule")
        function = raw.get("function")
        reason = raw.get("reason")
        if rule_id not in EFFECT_RULE_IDS:
            raise ContractError(
                f"{baseline_path}: accept rule must be one of "
                f"{sorted(EFFECT_RULE_IDS)}, got {rule_id!r}"
            )
        if not isinstance(function, str) or not function:
            raise ContractError(
                f"{baseline_path}: accept entry for {rule_id} needs a "
                "function qualname"
            )
        if not isinstance(reason, str) or not reason:
            raise ContractError(
                f"{baseline_path}: accept entry {rule_id} {function} "
                "needs a reason"
            )
        baseline.entries.append(BaselineEntry(rule_id, function, reason))
    return baseline
