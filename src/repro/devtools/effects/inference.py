"""Transitive effect inference: direct effects + call graph -> fixpoint.

``propagate`` unions each function's direct effects with the inferred effect
sets of its resolved callees until nothing changes.  Effect *origins* are
tracked alongside: for every (function, effect) pair the engine remembers
either the function's own first effect site, or the first callee (in
deterministic qualname-then-source order) the effect was inherited from —
enough to reconstruct a witness call chain for diagnostics.

A small set of *intrinsic* effects seeds the analysis when the relevant
kernel modules are part of the program: ``derive_seed`` and
``RngRegistry.stream``/``spawn`` are RNG consumption even though their
bodies are hash arithmetic, and the ``Simulator`` event-insertion and
event-execution entry points are SCHEDULE regardless of what the resolver
sees inside them.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Set

from repro.devtools.effects.callgraph import Program
from repro.devtools.effects.model import (
    Effect,
    EffectOrigin,
    EffectSite,
    EffectTable,
)

#: Intrinsic effect annotations for kernel primitives, applied when the
#: qualname exists in the analyzed program.
INTRINSIC_EFFECTS: Mapping[str, FrozenSet[Effect]] = {
    "repro.sim.rng.derive_seed": frozenset({Effect.RNG_DRAW}),
    "repro.sim.rng.RngRegistry.stream": frozenset({Effect.RNG_DRAW}),
    "repro.sim.rng.RngRegistry.spawn": frozenset({Effect.RNG_DRAW}),
    "repro.sim.engine.Simulator.schedule": frozenset({Effect.SCHEDULE}),
    "repro.sim.engine.Simulator.schedule_after": frozenset({Effect.SCHEDULE}),
    "repro.sim.engine.Simulator.step": frozenset({Effect.SCHEDULE}),
    "repro.sim.engine.Simulator.run_until": frozenset({Effect.SCHEDULE}),
    "repro.sim.engine.Simulator.run_all": frozenset({Effect.SCHEDULE}),
    "repro.sim.engine.EventHandle.cancel": frozenset({Effect.SCHEDULE}),
}


def apply_intrinsics(program: Program) -> None:
    """Seed known kernel primitives with their intrinsic effects."""
    for qualname, effects in INTRINSIC_EFFECTS.items():
        info = program.functions.get(qualname)
        if info is None:
            continue
        for effect in effects:
            info.add_direct(
                effect,
                EffectSite(
                    path=info.path,
                    line=info.lineno,
                    detail=f"intrinsic {effect.value} primitive",
                ),
            )


def propagate(
    program: Program, opaque: Optional[Iterable[str]] = None
) -> EffectTable:
    """Compute the transitive effect table for ``program``.

    Args:
        program: resolved program (``build_program`` output, with
            :func:`apply_intrinsics` already applied).
        opaque: qualnames treated as effect boundaries — calls into them
            contribute nothing, and their own entries read as empty.
            Used by contracts that declare an architectural hand-off
            point (e.g. the supervisor's ``execute_trial`` boundary).

    Iteration order is sorted-by-qualname and edges are kept in source
    order, so origins (and therefore diagnostics) are deterministic.
    """
    opaque_set: Set[str] = set(opaque or ())
    effects: Dict[str, Set[Effect]] = {}
    origins: Dict[str, Dict[Effect, EffectOrigin]] = {}

    for qualname in sorted(program.functions):
        info = program.functions[qualname]
        if qualname in opaque_set:
            effects[qualname] = set()
            origins[qualname] = {}
            continue
        effects[qualname] = set(info.direct)
        origins[qualname] = {
            effect: EffectOrigin(site=site, via=None)
            for effect, site in info.direct.items()
        }

    changed = True
    while changed:
        changed = False
        for qualname in sorted(program.functions):
            if qualname in opaque_set:
                continue
            info = program.functions[qualname]
            own = effects[qualname]
            for edge in info.calls:
                if edge.callee in opaque_set:
                    continue
                callee_effects = effects.get(edge.callee)
                if not callee_effects:
                    continue
                for effect in callee_effects - own:
                    own.add(effect)
                    site = origins.get(edge.callee, {}).get(effect)
                    origins[qualname][effect] = EffectOrigin(
                        site=site.site if site is not None else EffectSite(
                            path=info.path, line=edge.line, detail="via call"
                        ),
                        via=edge.callee,
                    )
                    changed = True

    return EffectTable(
        effects={q: frozenset(e) for q, e in effects.items()},
        origins=origins,
    )
