"""Rendering of the inferred effect table (``--effects-report``)."""

from __future__ import annotations

from typing import List

from repro.devtools.effects.callgraph import Program
from repro.devtools.effects.model import EffectTable, effect_names


def render_effect_table(program: Program, table: EffectTable) -> str:
    """Plain-text effect table: one line per function with effects.

    Pure functions (empty inferred set) are summarized by count only, so
    the table stays readable on a ~1k-function program; the full row set
    would bury the interesting entries.
    """
    lines: List[str] = ["function\teffects\tdirect"]
    pure = 0
    for qualname in sorted(table.effects):
        effects = table.effects[qualname]
        if not effects:
            pure += 1
            continue
        info = program.functions.get(qualname)
        direct = (
            effect_names(frozenset(info.direct)) if info is not None else "-"
        )
        lines.append(f"{qualname}\t{effect_names(effects)}\t{direct}")
    lines.append(
        f"# {len(table.effects)} function(s) analyzed, "
        f"{len(table.effects) - pure} effectful, {pure} pure"
    )
    return "\n".join(lines)
