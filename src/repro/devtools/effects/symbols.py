"""Per-module extraction: symbol tables, direct effects, raw call sites.

One :class:`ModuleTable` is built per analyzed module.  It records

* import aliases (``import x as y`` / ``from m import f``),
* every module-level function, class, and method as a
  :class:`~repro.devtools.effects.model.FunctionInfo`,
* the *direct* effects each function's own statements perform,
* raw (unresolved) call sites, resolved later against the whole program
  by :mod:`repro.devtools.effects.callgraph`, and
* RNG substream-naming call sites (``derive_seed``/``.stream``) for the
  RD007 constant-prefix check.

Nested functions, lambdas, and comprehensions are attributed to their
enclosing top-level function or method: defining a closure is free, but
the analysis conservatively assumes the encloser may invoke it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.devtools.effects.model import Effect, EffectSite, FunctionInfo
from repro.devtools.pragmas import PragmaIndex, SuppressionIndex
from repro.devtools.visitors import (
    RNG_DRAW_METHODS,
    WALLCLOCK_DATETIME_METHODS,
    WALLCLOCK_TIME_FUNCS,
    FileContext,
    UnorderedIterationVisitor,
)

#: Attribute names that (heuristically) insert into the engine schedule.
SCHEDULE_ATTRS = frozenset({"schedule", "schedule_after", "run_until"})

#: ``os`` functions that touch the filesystem.
OS_FILE_FUNCS = frozenset(
    {
        "remove", "unlink", "rename", "replace", "fsync", "makedirs",
        "mkdir", "rmdir", "listdir", "scandir", "open", "fdopen", "stat",
        "chmod", "truncate",
    }
)

#: Attribute names that read/write paths regardless of receiver type.
PATH_IO_ATTRS = frozenset(
    {
        "write_text", "read_text", "write_bytes", "read_bytes",
        "mkdir", "rmdir", "unlink", "touch", "iterdir", "glob", "rglob",
    }
)

#: Modules whose every function is considered file I/O.
FILE_IO_MODULES = frozenset({"shutil", "tempfile"})

#: Receiver kinds a raw call may carry (see :class:`RawCall`).
RECV_MODULE = "module"
RECV_SELF = "self"
RECV_TYPED = "typed"


@dataclass(frozen=True, slots=True)
class RawCall:
    """An unresolved call site.

    ``func_name`` is set for bare-name calls (``helper(...)``); ``attr``
    plus ``receiver`` for attribute calls (``obj.method(...)``), where
    ``receiver`` is ``(kind, value)``: a module fqn, the local class name
    of ``self``/``cls``, a statically known instance type, or ``None``.
    """

    line: int
    func_name: Optional[str] = None
    attr: Optional[str] = None
    receiver: Optional[Tuple[str, str]] = None


@dataclass(frozen=True, slots=True)
class StreamNameCall:
    """One ``derive_seed``/``.stream`` call site with its name argument.

    ``literal_prefix`` is the longest provable literal prefix of the
    stream-name argument (the full string for plain literals, the leading
    literal chunk for f-strings/concatenations), or ``None`` when nothing
    about the name can be proven statically.
    """

    line: int
    function: str
    callee: str
    literal_prefix: Optional[str]
    is_constant: bool


@dataclass(frozen=True, slots=True)
class ImportSite:
    """One ``import``/``from ... import`` of a module, for RD009."""

    module: str
    line: int
    type_checking: bool


@dataclass
class ClassInfo:
    """One class: methods, base-class names, and known attribute types."""

    name: str
    qualname: str
    lineno: int
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleTable:
    """Everything the effect engine knows about one module."""

    name: str
    path: str
    module_aliases: Dict[str, str] = field(default_factory=dict)
    from_imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    raw_calls: Dict[str, List[RawCall]] = field(default_factory=dict)
    stream_calls: List[StreamNameCall] = field(default_factory=list)
    import_sites: List[ImportSite] = field(default_factory=list)
    pragmas: SuppressionIndex = field(
        default_factory=lambda: SuppressionIndex(PragmaIndex({}, []), [])
    )

    def all_functions(self) -> List[FunctionInfo]:
        infos = list(self.functions.values())
        for cls in self.classes.values():
            infos.extend(cls.methods.values())
        return infos


def _literal_prefix(node: Optional[ast.expr]) -> Tuple[Optional[str], bool]:
    """``(provable literal prefix, is the whole name constant)``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value, True
    if isinstance(node, ast.JoinedStr) and node.values:
        head = node.values[0]
        if isinstance(head, ast.Constant) and isinstance(head.value, str):
            return head.value, False
        return None, False
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        prefix, _ = _literal_prefix(node.left)
        return prefix, False
    return None, False


class _ModuleExtractor(ast.NodeVisitor):
    """Single pass over one module's AST filling a :class:`ModuleTable`."""

    def __init__(self, table: ModuleTable) -> None:
        self.table = table
        module_fn = FunctionInfo(
            qualname=f"{table.name}.<module>",
            module=table.name,
            path=table.path,
            lineno=1,
        )
        table.functions["<module>"] = module_fn
        table.raw_calls[module_fn.qualname] = []
        #: Enclosing top-level function/method every node is attributed to.
        self._current: FunctionInfo = module_fn
        self._current_class: Optional[ClassInfo] = None
        self._class_nesting = 0
        #: Local name -> local class name, per top-level function.
        self._local_types: Dict[str, str] = {}
        self._type_checking_depth = 0

    # Imports ------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            self.table.module_aliases[local] = alias.name
            self.table.import_sites.append(
                ImportSite(alias.name, node.lineno, self._type_checking_depth > 0)
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if node.level > 0:
            # Approximate relative imports against the dotted module name;
            # the repro tree uses absolute imports throughout (ruff/isort).
            parts = self.table.name.split(".")
            base = parts[: -node.level] if node.level < len(parts) else []
            module = ".".join(base + ([module] if module else []))
        for alias in node.names:
            local = alias.asname or alias.name
            self.table.from_imports[local] = (module, alias.name)
        self.table.import_sites.append(
            ImportSite(module, node.lineno, self._type_checking_depth > 0)
        )

    def visit_If(self, node: ast.If) -> None:
        test = node.test
        is_type_checking = (
            isinstance(test, ast.Name) and test.id == "TYPE_CHECKING"
        ) or (
            isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
        )
        if is_type_checking:
            self._type_checking_depth += 1
            self.generic_visit(node)
            self._type_checking_depth -= 1
            return
        if self._is_main_guard(test):
            # ``if __name__ == "__main__":`` bodies run only when the file
            # is executed as a script, never at import time, so they are
            # not module-level effects; the guarded entry point (usually
            # ``main``) is still analyzed as its own function.
            for orelse in node.orelse:
                self.visit(orelse)
            return
        self.generic_visit(node)

    @staticmethod
    def _is_main_guard(test: ast.expr) -> bool:
        return (
            isinstance(test, ast.Compare)
            and isinstance(test.left, ast.Name)
            and test.left.id == "__name__"
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Eq)
            and len(test.comparators) == 1
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value == "__main__"
        )

    # Definitions --------------------------------------------------------

    def _enter_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        at_top = (
            self._current.qualname.endswith(".<module>")
            and self._class_nesting == 0
        )
        if not at_top:
            # Nested def/closure: attribute its body to the encloser.
            self.generic_visit(node)
            return
        cls = self._current_class
        if cls is not None:
            qualname = f"{cls.qualname}.{node.name}"
        else:
            qualname = f"{self.table.name}.{node.name}"
        info = FunctionInfo(
            qualname=qualname,
            module=self.table.name,
            path=self.table.path,
            lineno=node.lineno,
        )
        if cls is not None:
            cls.methods[node.name] = info
        else:
            self.table.functions[node.name] = info
        self.table.raw_calls[qualname] = []

        outer, outer_types = self._current, self._local_types
        self._current, self._local_types = info, {}
        self._bind_annotated_params(node)
        for stmt in node.body:
            self.visit(stmt)
        self._current, self._local_types = outer, outer_types

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)

    def _bind_annotated_params(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        args = list(node.args.posonlyargs) + list(node.args.args)
        args += list(node.args.kwonlyargs)
        for arg in args:
            class_name = self._annotation_class(arg.annotation)
            if class_name is not None:
                self._local_types[arg.arg] = class_name

    @staticmethod
    def _annotation_class(annotation: Optional[ast.expr]) -> Optional[str]:
        """Local class name an annotation denotes, if it is a plain name."""
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            text = annotation.value.strip()
            return text if text.isidentifier() else None
        if isinstance(annotation, ast.Name):
            return annotation.id
        if isinstance(annotation, ast.Attribute):
            return annotation.attr
        return None

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._current_class is not None or not self._current.qualname.endswith(
            ".<module>"
        ):
            # Nested class: treat its body like closure code.
            self._class_nesting += 1
            self.generic_visit(node)
            self._class_nesting -= 1
            return
        cls = ClassInfo(
            name=node.name,
            qualname=f"{self.table.name}.{node.name}",
            lineno=node.lineno,
        )
        for base in node.bases:
            if isinstance(base, ast.Name):
                cls.bases.append(base.id)
            elif isinstance(base, ast.Attribute):
                cls.bases.append(base.attr)
        self.table.classes[node.name] = cls
        self._collect_attr_types(node, cls)
        self._current_class = cls
        for stmt in node.body:
            self.visit(stmt)
        self._current_class = None

    @staticmethod
    def _collect_attr_types(node: ast.ClassDef, cls: ClassInfo) -> None:
        """``self.x: C`` / ``self.x = C(...)`` anywhere in the class body."""
        for child in ast.walk(node):
            if isinstance(child, ast.AnnAssign) and isinstance(
                child.target, ast.Attribute
            ):
                name = _ModuleExtractor._annotation_class(child.annotation)
                if name is not None:
                    cls.attr_types.setdefault(child.target.attr, name)
            elif isinstance(child, ast.Assign) and isinstance(
                child.value, ast.Call
            ):
                func = child.value.func
                if not isinstance(func, ast.Name):
                    continue
                for target in child.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        cls.attr_types.setdefault(target.attr, func.id)

    # Receiver / type tracking ------------------------------------------

    def _receiver_of(self, node: ast.expr) -> Optional[Tuple[str, str]]:
        if isinstance(node, ast.Name):
            if node.id in ("self", "cls") and self._current_class is not None:
                return (RECV_SELF, self._current_class.name)
            if node.id in self._local_types:
                return (RECV_TYPED, self._local_types[node.id])
            module = self.table.module_aliases.get(node.id)
            if module is not None:
                return (RECV_MODULE, module)
            if node.id in self.table.classes or node.id in self.table.from_imports:
                return (RECV_TYPED, node.id)
            return None
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and self._current_class is not None
            ):
                attr_type = self._current_class.attr_types.get(node.attr)
                if attr_type is not None:
                    return (RECV_TYPED, attr_type)
            # Dotted module: ``os.path.join`` -> module "os.path".
            flat = self._flatten_dotted(node)
            if flat is not None and flat in self.table.module_aliases.values():
                return (RECV_MODULE, flat)
        return None

    @staticmethod
    def _flatten_dotted(node: ast.Attribute) -> Optional[str]:
        parts = [node.attr]
        value = node.value
        while isinstance(value, ast.Attribute):
            parts.append(value.attr)
            value = value.value
        if isinstance(value, ast.Name):
            parts.append(value.id)
            return ".".join(reversed(parts))
        return None

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        # ``v = ClassName(...)`` binds a local instance type.
        if isinstance(node.value, ast.Call) and isinstance(
            node.value.func, ast.Name
        ):
            name = node.value.func.id
            if name in self.table.classes or name in self.table.from_imports:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self._local_types[target.id] = name
        # Module attribute stores are global mutation.
        for target in node.targets:
            self._check_global_store(target)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        if isinstance(node.target, ast.Name):
            name = self._annotation_class(node.annotation)
            if name is not None and (
                name in self.table.classes or name in self.table.from_imports
            ):
                self._local_types[node.target.id] = name
        self._check_global_store(node.target)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.generic_visit(node)
        self._check_global_store(node.target)

    def _check_global_store(self, target: ast.expr) -> None:
        if isinstance(target, ast.Attribute):
            module = None
            if isinstance(target.value, ast.Name):
                module = self.table.module_aliases.get(target.value.id)
            if module is not None:
                self._effect(
                    Effect.GLOBAL_MUT,
                    target,
                    f"assignment to module attribute {module}.{target.attr}",
                )
        elif isinstance(target, ast.Subscript):
            value = target.value
            if (
                isinstance(value, ast.Attribute)
                and value.attr == "environ"
                and isinstance(value.value, ast.Name)
                and self.table.module_aliases.get(value.value.id) == "os"
            ):
                self._effect(
                    Effect.GLOBAL_MUT, target, "assignment into os.environ"
                )

    def visit_Global(self, node: ast.Global) -> None:
        if not self._current.qualname.endswith(".<module>"):
            self._effect(
                Effect.GLOBAL_MUT,
                node,
                f"global statement rebinding {', '.join(node.names)}",
            )

    # Calls --------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        self.generic_visit(node)
        func = node.func
        raw: Optional[RawCall] = None
        if isinstance(func, ast.Name):
            raw = RawCall(line=node.lineno, func_name=func.id)
            self._direct_effects_name_call(node, func.id)
        elif isinstance(func, ast.Attribute):
            receiver = self._receiver_of(func.value)
            raw = RawCall(line=node.lineno, attr=func.attr, receiver=receiver)
            self._direct_effects_attr_call(node, func, receiver)
        if raw is not None:
            self.table.raw_calls[self._current.qualname].append(raw)

    def _direct_effects_name_call(self, node: ast.Call, name: str) -> None:
        if name == "open":
            self._effect(Effect.FILE_IO, node, "open() call")
        elif name == "derive_seed" or (
            self.table.from_imports.get(name, ("", ""))
            == ("repro.sim.rng", "derive_seed")
        ):
            self._effect(Effect.RNG_DRAW, node, "derive_seed() consumption")
        else:
            from_import = self.table.from_imports.get(name)
            if from_import is not None and from_import[0] == "random":
                if from_import[1] in ("Random", "SystemRandom"):
                    self._effect(
                        Effect.RNG_DRAW, node, f"random.{from_import[1]}() construction"
                    )
                else:
                    self._effect(
                        Effect.RNG_DRAW, node, f"random.{from_import[1]}() draw"
                    )
            elif from_import is not None and (
                from_import[0] == "time"
                and from_import[1] in WALLCLOCK_TIME_FUNCS
            ):
                self._effect(
                    Effect.WALLCLOCK, node, f"time.{from_import[1]}() read"
                )
            elif from_import is not None and from_import[0] in FILE_IO_MODULES:
                self._effect(
                    Effect.FILE_IO,
                    node,
                    f"{from_import[0]}.{from_import[1]}() call",
                )

    def _direct_effects_attr_call(
        self,
        node: ast.Call,
        func: ast.Attribute,
        receiver: Optional[Tuple[str, str]],
    ) -> None:
        attr = func.attr
        module = receiver[1] if receiver and receiver[0] == RECV_MODULE else None
        if module == "time" and attr in WALLCLOCK_TIME_FUNCS:
            self._effect(Effect.WALLCLOCK, node, f"time.{attr}() read")
            return
        if attr in WALLCLOCK_DATETIME_METHODS and self._is_datetime_receiver(
            func.value
        ):
            self._effect(Effect.WALLCLOCK, node, f"datetime {attr}() read")
            return
        if module == "random":
            if attr in ("Random", "SystemRandom"):
                self._effect(
                    Effect.RNG_DRAW, node, f"random.{attr}() construction"
                )
            else:
                self._effect(Effect.RNG_DRAW, node, f"random.{attr}() draw")
            return
        if module == "os" and attr in OS_FILE_FUNCS:
            self._effect(Effect.FILE_IO, node, f"os.{attr}() call")
            return
        if module in FILE_IO_MODULES:
            self._effect(Effect.FILE_IO, node, f"{module}.{attr}() call")
            return
        if module is None and attr in PATH_IO_ATTRS:
            self._effect(Effect.FILE_IO, node, f".{attr}() path I/O")
            return
        if attr in SCHEDULE_ATTRS:
            self._effect(Effect.SCHEDULE, node, f".{attr}() event insertion")
            return
        rngish = UnorderedIterationVisitor._is_rngish(func.value)
        if attr in RNG_DRAW_METHODS and rngish:
            self._effect(Effect.RNG_DRAW, node, f"rng.{attr}() draw")
        elif attr == "stream" and rngish:
            self._effect(Effect.RNG_DRAW, node, "rng.stream() acquisition")
        elif attr == "derive_seed":
            self._effect(Effect.RNG_DRAW, node, "derive_seed() consumption")

    def _is_datetime_receiver(self, value: ast.expr) -> bool:
        if isinstance(value, ast.Attribute):
            return (
                value.attr in ("datetime", "date")
                and isinstance(value.value, ast.Name)
                and self.table.module_aliases.get(value.value.id) == "datetime"
            )
        if isinstance(value, ast.Name):
            from_import = self.table.from_imports.get(value.id)
            return from_import is not None and from_import == (
                "datetime",
                value.id,
            )
        return False

    # Recording ----------------------------------------------------------

    def _effect(self, effect: Effect, node: ast.AST, detail: str) -> None:
        self._current.add_direct(
            effect,
            EffectSite(
                path=self.table.path,
                line=getattr(node, "lineno", self._current.lineno),
                detail=detail,
            ),
        )


class _StreamNameCollector(ast.NodeVisitor):
    """Second pass: ``derive_seed``/``.stream`` name arguments (RD007)."""

    def __init__(self, table: ModuleTable, extents: "FunctionExtents") -> None:
        self.table = table
        self.extents = extents

    def visit_Call(self, node: ast.Call) -> None:
        self.generic_visit(node)
        func = node.func
        name_arg: Optional[ast.expr] = None
        callee: Optional[str] = None
        if isinstance(func, ast.Name) and func.id == "derive_seed":
            callee = "derive_seed"
            if len(node.args) >= 2:
                name_arg = node.args[1]
        elif isinstance(func, ast.Attribute):
            if func.attr == "derive_seed":
                callee = "derive_seed"
                if len(node.args) >= 2:
                    name_arg = node.args[1]
            elif func.attr == "stream" and UnorderedIterationVisitor._is_rngish(
                func.value
            ):
                callee = "stream"
                if node.args:
                    name_arg = node.args[0]
        if callee is None:
            return
        prefix, constant = _literal_prefix(name_arg)
        self.table.stream_calls.append(
            StreamNameCall(
                line=node.lineno,
                function=self.extents.function_at(node.lineno),
                callee=callee,
                literal_prefix=prefix,
                is_constant=constant,
            )
        )


class FunctionExtents:
    """Maps a line number to the qualname of the innermost enclosing def."""

    def __init__(self, table: ModuleTable) -> None:
        self._spans: List[Tuple[int, int, str]] = []
        self._module_qualname = f"{table.name}.<module>"

    def add(self, start: int, end: int, qualname: str) -> None:
        self._spans.append((start, end, qualname))

    def function_at(self, line: int) -> str:
        best: Optional[Tuple[int, int, str]] = None
        for start, end, qualname in self._spans:
            if start <= line <= end and (best is None or start > best[0]):
                best = (start, end, qualname)
        return best[2] if best is not None else self._module_qualname


def _build_extents(tree: ast.Module, table: ModuleTable) -> FunctionExtents:
    extents = FunctionExtents(table)
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            extents.add(
                node.lineno,
                node.end_lineno or node.lineno,
                f"{table.name}.{node.name}",
            )
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    extents.add(
                        item.lineno,
                        item.end_lineno or item.lineno,
                        f"{table.name}.{node.name}.{item.name}",
                    )
    return extents


def _collect_unordered_iteration(
    tree: ast.Module, table: ModuleTable, extents: FunctionExtents
) -> None:
    """Attribute RD003-style unordered-iteration findings as effects."""
    functions = {info.qualname: info for info in table.all_functions()}

    def report(rule: object, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        info = functions.get(extents.function_at(line))
        if info is not None:
            info.add_direct(
                Effect.UNORDERED_ITER,
                EffectSite(path=table.path, line=line, detail=message),
            )

    ctx = FileContext(path=table.path, report=report)
    UnorderedIterationVisitor(ctx).visit(tree)


def extract_module(name: str, path: str, source: str) -> ModuleTable:
    """Parse ``source`` and build its :class:`ModuleTable`.

    Raises:
        SyntaxError: the module does not parse; the caller reports it as
            a file-level error (exit code 2 from the CLI).
    """
    tree = ast.parse(source, filename=path)
    table = ModuleTable(name=name, path=path)
    table.pragmas = SuppressionIndex.from_source(source, tree)
    _ModuleExtractor(table).visit(tree)
    extents = _build_extents(tree, table)
    _StreamNameCollector(table, extents).visit(tree)
    _collect_unordered_iteration(tree, table, extents)
    return table
