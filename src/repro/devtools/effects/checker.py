"""Contract evaluation: inferred effects + contracts -> RD006-RD010 findings.

Findings are reported at the *origin site* — the line whose code directly
performs the forbidden effect — with a witness call chain from a contract
root in the message.  Suppression, in precedence order:

1. a ``# repro: allow-effect-<slug>`` pragma on the origin line;
2. the same pragma on the ``def`` line of the origin function
   (per-function suppression);
3. a committed baseline entry ``(rule, origin-function qualname)``.

Unused baseline entries are reported as errors: the baseline may only
shrink honestly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.devtools.effects.callgraph import Program
from repro.devtools.effects.contracts import Baseline, Contract
from repro.devtools.effects.inference import apply_intrinsics, propagate
from repro.devtools.effects.model import Effect, EffectSite, EffectTable
from repro.devtools.rules import RULES, Violation


@dataclass
class EffectCheckResult:
    """Outcome of one contract-checking pass over a program."""

    violations: List[Violation] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    #: The global (no-opaque) effect table, for ``--effects-report``.
    table: Optional[EffectTable] = None


def _suppressed(
    program: Program,
    rule_id: str,
    origin_function: str,
    site: EffectSite,
    baseline: Baseline,
    used_baseline: Set[Tuple[str, str]],
) -> bool:
    info = program.functions.get(origin_function)
    if info is not None:
        table = program.modules.get(info.module)
        if table is not None:
            if table.pragmas.suppresses(rule_id, site.line):
                return True
            if table.pragmas.suppresses(rule_id, info.lineno):
                return True
    if baseline.accepts(rule_id, origin_function):
        used_baseline.add((rule_id, origin_function))
        return True
    return False


def _entry_module_analyzed(program: Program, qualname: str) -> bool:
    """Whether the module owning ``qualname`` is part of this program."""
    parts = qualname.split(".")
    return any(
        ".".join(parts[:i]) in program.modules
        for i in range(len(parts) - 1, 0, -1)
    )


def _shorten(qualname: str) -> str:
    """Drop the shared ``repro.`` prefix for readable chains."""
    return qualname[6:] if qualname.startswith("repro.") else qualname


def _check_forbid(
    program: Program,
    contract: Contract,
    table: EffectTable,
    baseline: Baseline,
    used_baseline: Set[Tuple[str, str]],
    out: List[Violation],
) -> None:
    rule = RULES[contract.rule_id]
    #: (effect, origin path, origin line) -> (site, origin fn, roots)
    grouped: Dict[
        Tuple[str, str, int], Tuple[EffectSite, str, List[str]]
    ] = {}
    for qualname in sorted(program.functions):
        info = program.functions[qualname]
        if not contract.in_scope(info.module) or contract.is_exempt(qualname):
            continue
        forbidden = table.effects_of(qualname) & contract.forbid
        for effect in sorted(forbidden, key=lambda e: e.value):
            site = table.origin_site(qualname, effect)
            if site is None:  # pragma: no cover - defensive
                continue
            origin_fn = table.origin_function(qualname, effect)
            key = (effect.value, site.path, site.line)
            if key in grouped:
                grouped[key][2].append(qualname)
            else:
                grouped[key] = (site, origin_fn, [qualname])
    for key in sorted(grouped):
        effect_name, path, line = key
        site, origin_fn, roots = grouped[key]
        if _suppressed(
            program, contract.rule_id, origin_fn, site, baseline, used_baseline
        ):
            continue
        root = roots[0]
        chain = table.chain(root, Effect(effect_name))
        chain_text = " -> ".join(_shorten(q) for q in chain)
        extra = f" (+{len(roots) - 1} more roots)" if len(roots) > 1 else ""
        out.append(
            Violation(
                rule=rule,
                path=path,
                line=line,
                column=1,
                message=(
                    f"{effect_name} ({site.detail}) reachable from contract "
                    f"root {_shorten(root)}{extra} via {chain_text}; "
                    f"{contract.reason}"
                ),
            )
        )


def _check_substreams(
    program: Program,
    contract: Contract,
    baseline: Baseline,
    used_baseline: Set[Tuple[str, str]],
    out: List[Violation],
) -> None:
    rule = RULES[contract.rule_id]
    prefix = contract.substream_prefix
    assert prefix is not None
    for module_name in sorted(program.modules):
        if not contract.in_scope(module_name):
            continue
        module = program.modules[module_name]
        for call in module.stream_calls:
            if contract.is_exempt(call.function):
                continue
            if call.literal_prefix is not None and call.literal_prefix.startswith(
                prefix
            ):
                continue
            site = EffectSite(
                path=module.path, line=call.line, detail=call.callee
            )
            if _suppressed(
                program, contract.rule_id, call.function, site, baseline,
                used_baseline,
            ):
                continue
            if call.literal_prefix is None:
                shape = "a name that cannot be proven constant"
            elif call.is_constant:
                shape = f"constant name {call.literal_prefix!r}"
            else:
                shape = f"literal prefix {call.literal_prefix!r}"
            out.append(
                Violation(
                    rule=rule,
                    path=module.path,
                    line=call.line,
                    column=1,
                    message=(
                        f"{call.callee}() in {_shorten(call.function)} uses "
                        f"{shape}; this scope must draw only from "
                        f"{prefix}* substreams — {contract.reason}"
                    ),
                )
            )


def _check_imports(
    program: Program,
    contract: Contract,
    baseline: Baseline,
    used_baseline: Set[Tuple[str, str]],
    out: List[Violation],
) -> None:
    rule = RULES[contract.rule_id]
    for module_name in sorted(program.modules):
        if not contract.in_scope(module_name):
            continue
        module = program.modules[module_name]
        pseudo = f"{module_name}.<module>"
        for site in module.import_sites:
            if site.type_checking:
                continue
            if not any(
                site.module == prefix or site.module.startswith(prefix + ".")
                for prefix in contract.forbid_imports
            ):
                continue
            effect_site = EffectSite(
                path=module.path, line=site.line, detail=site.module
            )
            if _suppressed(
                program, contract.rule_id, pseudo, effect_site, baseline,
                used_baseline,
            ):
                continue
            out.append(
                Violation(
                    rule=rule,
                    path=module.path,
                    line=site.line,
                    column=1,
                    message=(
                        f"import of {site.module} inside {module_name}: "
                        f"{contract.reason}"
                    ),
                )
            )


def check_effects(
    program: Program,
    contracts: List[Contract],
    baseline: Baseline,
    rule_ids: Optional[Set[str]] = None,
) -> EffectCheckResult:
    """Evaluate ``contracts`` (optionally filtered to ``rule_ids``)."""
    result = EffectCheckResult(errors=list(program.errors))
    apply_intrinsics(program)
    result.table = propagate(program)
    used_baseline: Set[Tuple[str, str]] = set()
    active = [
        c for c in contracts if rule_ids is None or c.rule_id in rule_ids
    ]
    for contract in active:
        if contract.forbid:
            table = (
                result.table
                if not contract.opaque
                else propagate(program, opaque=contract.opaque)
            )
            _check_forbid(
                program, contract, table, baseline, used_baseline,
                result.violations,
            )
        if contract.substream_prefix is not None:
            _check_substreams(
                program, contract, baseline, used_baseline, result.violations
            )
        if contract.forbid_imports:
            _check_imports(
                program, contract, baseline, used_baseline, result.violations
            )
    active_rules = {c.rule_id for c in active}
    for entry in baseline.unused(used_baseline):
        if entry.rule_id not in active_rules:
            continue
        if not _entry_module_analyzed(program, entry.function):
            # Partial lint (e.g. one file): the entry's module is not in
            # this program, so the entry is out of scope, not stale.
            continue
        result.errors.append(
            f"stale baseline entry: {entry.rule_id} {entry.function} "
            "matched no finding — remove it from effect_baseline.toml"
        )
    result.violations.sort(key=lambda v: (v.path, v.line, v.rule.id))
    return result
