"""Data model for the static effect analysis.

The engine describes a program as a set of *functions* (module-level
functions, methods, and one ``<module>`` pseudo-function per module for
import-time code), each carrying

* the *direct* effects its own statements perform, and
* resolved call edges to other functions in the program.

Effects form a small powerset lattice: the inferred effect set of a
function is the union of its direct effects and the effect sets of every
resolvable callee, computed to a fixpoint by
:func:`repro.devtools.effects.inference.propagate`.  Calls that cannot be
resolved are *unknown* and contribute nothing — the analysis is
deliberately false-negative-tolerant (like the RD001-RD005 visitors), and
the dynamic trace-hash pins backstop what it cannot prove.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple


class Effect(enum.Enum):
    """One observable side effect a function may (transitively) perform."""

    RNG_DRAW = "RNG_DRAW"
    SCHEDULE = "SCHEDULE"
    WALLCLOCK = "WALLCLOCK"
    FILE_IO = "FILE_IO"
    UNORDERED_ITER = "UNORDERED_ITER"
    GLOBAL_MUT = "GLOBAL_MUT"

    def __str__(self) -> str:
        return self.value


#: Stable ordering for rendering effect sets.
EFFECT_ORDER: Tuple[Effect, ...] = tuple(Effect)


def effect_names(effects: FrozenSet[Effect]) -> str:
    """Render an effect set in declaration order: ``RNG_DRAW+SCHEDULE``."""
    return "+".join(e.value for e in EFFECT_ORDER if e in effects) or "-"


@dataclass(frozen=True, slots=True)
class EffectSite:
    """Where a direct effect happens: file, line, and what was seen there."""

    path: str
    line: int
    detail: str


@dataclass(frozen=True, slots=True)
class CallEdge:
    """One resolved call: ``callee`` is a qualname in the program."""

    callee: str
    line: int


@dataclass
class FunctionInfo:
    """One analyzed function (or method, or module pseudo-function).

    Attributes:
        qualname: fully qualified name — ``repro.sim.engine.Simulator.step``
            or ``repro.faults.plan.<module>`` for import-time code.
        module: the dotted module the function lives in.
        path: file path the module was analyzed under (for reporting).
        lineno: line of the ``def`` (module pseudo-functions use line 1).
        direct: first-seen site per direct effect of this function's body.
        calls: resolved call edges, in source order.
        unknown_calls: count of call sites the resolver gave up on.
    """

    qualname: str
    module: str
    path: str
    lineno: int
    direct: Dict[Effect, EffectSite] = field(default_factory=dict)
    calls: List[CallEdge] = field(default_factory=list)
    unknown_calls: int = 0

    def add_direct(self, effect: Effect, site: EffectSite) -> None:
        """Record a direct effect (first site wins, for stable reports)."""
        self.direct.setdefault(effect, site)


@dataclass(frozen=True, slots=True)
class EffectOrigin:
    """Why a function carries an effect: either its own site or a callee.

    ``via`` is ``None`` when the effect is direct; otherwise it is the
    qualname of the (first, in deterministic order) callee the effect was
    inherited from, and ``site`` is the ultimate direct site.
    """

    site: EffectSite
    via: Optional[str]


@dataclass
class EffectTable:
    """Fixpoint result: per-function transitive effect sets with origins."""

    effects: Dict[str, FrozenSet[Effect]]
    origins: Dict[str, Dict[Effect, EffectOrigin]]

    def effects_of(self, qualname: str) -> FrozenSet[Effect]:
        return self.effects.get(qualname, frozenset())

    def chain(self, qualname: str, effect: Effect, limit: int = 12) -> List[str]:
        """Call chain from ``qualname`` to the direct site of ``effect``."""
        chain = [qualname]
        current = qualname
        for _ in range(limit):
            origin = self.origins.get(current, {}).get(effect)
            if origin is None or origin.via is None:
                break
            chain.append(origin.via)
            current = origin.via
        return chain

    def origin_site(self, qualname: str, effect: Effect) -> Optional[EffectSite]:
        origin = self.origins.get(qualname, {}).get(effect)
        return origin.site if origin is not None else None

    def origin_function(self, qualname: str, effect: Effect) -> str:
        """Qualname of the function whose body performs ``effect``."""
        return self.chain(qualname, effect)[-1]
