"""Whole-program static effect analysis for the determinism contracts.

The RD001-RD005 visitors check one file at a time; the golden-digest
pins check one config at a time.  This subpackage closes the gap between
them: it builds a module- and call-graph over ``src/repro``, infers a
per-function effect set from a six-element lattice —

========  =====================================================
Effect    Meaning
========  =====================================================
RNG_DRAW       draws from (or derives seeds for) a random stream
SCHEDULE       inserts/cancels/executes engine events
WALLCLOCK      reads the host clock
FILE_IO        touches the filesystem
UNORDERED_ITER iterates a set where order feeds a decision
GLOBAL_MUT     mutates module-global state
========  =====================================================

— propagates it transitively to a fixpoint, and checks the declared
contracts in ``effect_contracts.toml`` (rules RD006-RD010), proving for
*every call path* what the digest pins prove for pinned configs:
observation is invisible, fault draws stay on ``fault:*`` substreams,
reporting never schedules, the supervisor touches no simulation state,
and the kernel does no I/O.

Unknown calls contribute no effects: like the per-file visitors, the
engine prefers false negatives over false positives, and the dynamic
trace-hash pins backstop what it cannot prove.
"""

from repro.devtools.effects.callgraph import Program, build_program
from repro.devtools.effects.checker import EffectCheckResult, check_effects
from repro.devtools.effects.contracts import (
    Baseline,
    BaselineEntry,
    Contract,
    ContractError,
    load_baseline,
    load_contracts,
)
from repro.devtools.effects.driver import (
    analyze_paths,
    analyze_sources,
    collect_sources,
    module_name_for,
)
from repro.devtools.effects.inference import apply_intrinsics, propagate
from repro.devtools.effects.model import Effect, EffectSite, EffectTable
from repro.devtools.effects.report import render_effect_table

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Contract",
    "ContractError",
    "Effect",
    "EffectCheckResult",
    "EffectSite",
    "EffectTable",
    "Program",
    "analyze_paths",
    "analyze_sources",
    "apply_intrinsics",
    "build_program",
    "check_effects",
    "collect_sources",
    "load_baseline",
    "load_contracts",
    "module_name_for",
    "propagate",
    "render_effect_table",
]
