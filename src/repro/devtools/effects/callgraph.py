"""Whole-program call graph over a set of analyzed modules.

Resolution strategy (most to least precise, first match wins):

1. bare-name calls resolve through the module's own defs and its
   ``from``-imports into other program modules (including class
   constructors, which resolve to ``Class.__init__``);
2. attribute calls on a module alias resolve to that module's functions
   and classes;
3. attribute calls on ``self``/``cls`` resolve within the enclosing class
   and its program-resident base classes;
4. attribute calls on a receiver with a statically known class (parameter
   annotation, ``v = ClassName(...)`` binding, or ``self.attr``
   class-body type) resolve the same way;
5. otherwise, if the method name is defined by **exactly one** class in
   the whole program — and is not a common container/stdlib method name —
   the call resolves to that method;
6. anything else is *unknown* and contributes no effects (conservative:
   the analysis never invents effects it cannot locate, mirroring the
   false-positive-averse RD001-RD005 visitors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.devtools.effects.model import CallEdge, FunctionInfo
from repro.devtools.effects.symbols import (
    RECV_MODULE,
    RECV_SELF,
    RECV_TYPED,
    ClassInfo,
    ModuleTable,
    RawCall,
    extract_module,
)

#: Method names too generic for the unique-definer fallback: they collide
#: with builtin container / concurrent.futures / IO methods, so a single
#: program class defining one must not capture every call to it.
AMBIGUOUS_METHOD_NAMES = frozenset(
    {
        "add", "append", "cancel", "clear", "close", "copy", "count",
        "extend", "get", "index", "insert", "items", "join", "keys", "map",
        "pop", "popleft", "put", "read", "remove", "result", "run", "set",
        "sort", "split", "start", "stop", "strip", "submit", "update",
        "values", "wait", "write",
    }
)


@dataclass
class Program:
    """All analyzed modules plus cross-module resolution indexes."""

    modules: Dict[str, ModuleTable] = field(default_factory=dict)
    #: Every function by qualname (module functions + methods).
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: Every class by fully qualified name.
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: Method name -> class fqns defining it (for the uniqueness fallback).
    method_definers: Dict[str, List[str]] = field(default_factory=dict)
    #: File-level problems (unreadable/unparsable files).
    errors: List[str] = field(default_factory=list)

    def function_at_def(self, path: str, line: int) -> Optional[FunctionInfo]:
        for info in self.functions.values():
            if info.path == path and info.lineno == line:
                return info
        return None


def build_program(sources: Dict[str, Tuple[str, str]]) -> Program:
    """Build and resolve a program from ``{module: (path, source)}``."""
    program = Program()
    for name in sorted(sources):
        path, source = sources[name]
        try:
            table = extract_module(name, path, source)
        except SyntaxError as exc:
            program.errors.append(
                f"{path}:{exc.lineno or 0}: syntax error: {exc.msg}"
            )
            continue
        program.modules[name] = table
        for info in table.all_functions():
            program.functions[info.qualname] = info
        for cls in table.classes.values():
            program.classes[cls.qualname] = cls
            for method in cls.methods:
                program.method_definers.setdefault(method, []).append(
                    cls.qualname
                )
    _resolve_calls(program)
    return program


# ----------------------------------------------------------------------
# Resolution
# ----------------------------------------------------------------------


def _class_fqn(table: ModuleTable, local_name: str, program: Program) -> Optional[str]:
    """Fully qualified class name a local name denotes, if resolvable."""
    if local_name in table.classes:
        return table.classes[local_name].qualname
    from_import = table.from_imports.get(local_name)
    if from_import is not None:
        module, original = from_import
        target = program.modules.get(module)
        if target is not None and original in target.classes:
            return target.classes[original].qualname
    return None


def _lookup_method(
    program: Program, class_fqn: str, method: str, _depth: int = 0
) -> Optional[str]:
    """Resolve ``method`` on ``class_fqn``, walking program-resident bases."""
    if _depth > 8:
        return None
    cls = program.classes.get(class_fqn)
    if cls is None:
        return None
    if method in cls.methods:
        return cls.methods[method].qualname
    owner_module = program.modules.get(class_fqn.rsplit(".", 1)[0])
    if owner_module is None:
        return None
    for base in cls.bases:
        base_fqn = _class_fqn(owner_module, base, program)
        if base_fqn is not None:
            found = _lookup_method(program, base_fqn, method, _depth + 1)
            if found is not None:
                return found
    return None


def _resolve_constructor(program: Program, class_fqn: str) -> Optional[str]:
    return _lookup_method(program, class_fqn, "__init__")


def _resolve_name_call(
    program: Program, table: ModuleTable, call: RawCall
) -> Optional[str]:
    name = call.func_name
    assert name is not None
    if name in table.functions and name != "<module>":
        return table.functions[name].qualname
    if name in table.classes:
        return _resolve_constructor(program, table.classes[name].qualname)
    from_import = table.from_imports.get(name)
    if from_import is not None:
        module, original = from_import
        target = program.modules.get(module)
        if target is None:
            return None
        if original in target.functions:
            return target.functions[original].qualname
        if original in target.classes:
            return _resolve_constructor(
                program, target.classes[original].qualname
            )
    return None


def _resolve_attr_call(
    program: Program, table: ModuleTable, owner: FunctionInfo, call: RawCall
) -> Optional[str]:
    attr = call.attr
    assert attr is not None
    receiver = call.receiver
    if receiver is not None:
        kind, value = receiver
        if kind == RECV_MODULE:
            target = program.modules.get(value)
            if target is None:
                return None
            if attr in target.functions:
                return target.functions[attr].qualname
            if attr in target.classes:
                return _resolve_constructor(
                    program, target.classes[attr].qualname
                )
            return None
        if kind in (RECV_SELF, RECV_TYPED):
            fqn = _class_fqn(table, value, program)
            if fqn is not None:
                resolved = _lookup_method(program, fqn, attr)
                if resolved is not None:
                    return resolved
            # A known receiver with an unknown method falls through to
            # the uniqueness heuristic below.
    if attr in AMBIGUOUS_METHOD_NAMES:
        return None
    definers = program.method_definers.get(attr)
    if definers is not None and len(definers) == 1:
        return _lookup_method(program, definers[0], attr)
    return None


def _resolve_calls(program: Program) -> None:
    """Fill every function's resolved ``calls`` list from its raw calls."""
    for module_name in sorted(program.modules):
        table = program.modules[module_name]
        for qualname in sorted(table.raw_calls):
            owner = program.functions.get(qualname)
            if owner is None:
                continue
            for call in table.raw_calls[qualname]:
                resolved: Optional[str] = None
                if call.func_name is not None:
                    resolved = _resolve_name_call(program, table, call)
                elif call.attr is not None:
                    resolved = _resolve_attr_call(program, table, owner, call)
                if resolved is not None and resolved != qualname:
                    owner.calls.append(CallEdge(callee=resolved, line=call.line))
                elif resolved is None:
                    owner.unknown_calls += 1
