"""Developer tooling that enforces the simulator's determinism contract.

DESIGN.md promises that the same ``(seed, params)`` pair reproduces a run
bit-for-bit.  That property rests on coding rules that used to live only in
prose — randomness flows through named streams, simulation code never reads
the wall clock, unordered collections are sorted before they feed policy
decisions.  This package turns those rules into a custom AST-based lint
pass:

========  ==================  ==============================================
Rule id   Pragma slug         What it forbids
========  ==================  ==============================================
RD001     global-random       module-level ``random.*`` calls and unseeded
                              ``random.Random()`` outside ``repro.sim.rng``
RD002     wallclock           ``time.time()`` / ``datetime.now()`` /
                              ``time.monotonic()`` (and friends) inside the
                              ``repro`` package — wall-clock is
                              reporting-only
RD003     unordered-iter      iterating a ``set`` (or feeding one to an
                              RNG) where the order reaches selection, heap
                              pushes, or cache eviction without ``sorted()``
RD004     float-time-eq       ``==`` / ``!=`` between two floating-point
                              simulation timestamps
RD005     heap-mutation       touching the engine's ``_heap`` / ``_seq`` /
                              ``_now`` internals outside its ``schedule()``
                              API
========  ==================  ==============================================

Any finding can be suppressed on its line with ``# repro: allow-<slug>``
(or ``# repro: allow-<rule id>``).  The CLI::

    python -m repro.devtools.lint src/ tests/ benchmarks/

exits non-zero if any violation is found; ``tests/devtools/test_lint_repo.py``
runs the same pass in CI so the repository stays clean.  The static pass is
validated dynamically by the engine's trace-hash sanitizer
(``Simulator(trace_hash=True)``), which digests the executed event stream so
two same-seed runs can be compared bit-for-bit.
"""

from repro.devtools.linter import LintResult, lint_file, lint_paths, lint_source
from repro.devtools.rules import RULES, Rule, Violation

__all__ = [
    "RULES",
    "Rule",
    "Violation",
    "LintResult",
    "lint_file",
    "lint_paths",
    "lint_source",
]
