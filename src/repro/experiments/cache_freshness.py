"""Cache-freshness-under-churn suite (beyond the paper).

The paper's link caches learn about departures only the hard way: a
probe times out, the entry is evicted, and the probe's cost has already
been paid.  Under correlated churn the whole network pays it at once —
every survivor's cache is suddenly full of pointers at corpses.  The
:mod:`repro.freshness` layer attacks that waste from two sides:

* **push invalidation** — a departing peer's former contacts are told
  (pong-piggybacked :class:`~repro.core.messages.CacheUpdate`
  exchanges) so stale entries are purged *before* they cost a dead
  probe, and the ack's pong refreshes the vacated slot;
* **capacity-proportional cache sizing** — per-peer cache capacities
  track library size (:class:`~repro.freshness.CacheSizing`), so the
  peers everyone probes most keep the most pointers fresh.

The suite measures what each side buys, separately and together:

* ``freshness_grid`` — storm fraction × {off, invalidate, size, full}:
  satisfaction, dead probes per query with the **stale/fresh split**
  (stale = the pointer's target departed after it was acquired —
  exactly the waste invalidation can prevent), notice overhead per
  query, purge/refresh counts, and time-to-recovery.
* ``freshness_recovery`` — time-to-recovery vs storm fraction, one
  curve per mode.

All four modes of a fraction share one base seed, so the storm kills
the same peers at the same times: the stale-dead-probe delta between
the ``off`` and ``invalidate`` rows is push invalidation's doing alone
(freshness draws live on ``freshness:*`` RNG substreams).

Run via ``python -m repro.experiments.run_all --suite cache_freshness``
or directly::

    python -m repro.experiments.cache_freshness --profile smoke --workers 2

The module CLI's ``--verify-parallel`` flag re-runs the suite serially
and on a process pool and fails unless the rendered reports are
byte-identical — the freshness subsystem's serial-vs-parallel
determinism check used by the ``freshness-smoke`` CI job.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Tuple

from repro.core.params import ProtocolParams, SystemParams
from repro.errors import TrialFailure
from repro.experiments.executor import TrialExecutor, get_executor
from repro.experiments.profiles import PROFILES, Profile, get_profile
from repro.experiments.runner import (
    ExperimentResult,
    averaged,
    run_guess_config,
)
from repro.freshness import CacheSizing, FreshnessPlan
from repro.metrics.summary import mean, ratio
from repro.observe.staleness import summarize_staleness
from repro.resilience import (
    ChurnStorm,
    ScenarioPlan,
    baseline_rate,
    time_to_recovery,
)
from repro.resilience.recovery import to_windows

#: Fraction of the live population each storm removes.
STORM_FRACTIONS: Tuple[float, ...] = (0.3, 0.5)

#: Seconds over which the storm's departures spread.
STORM_WIDTH = 20.0

#: Width of the windowed satisfaction channel feeding time-to-recovery.
SATISFACTION_WINDOW = 25.0

#: Recovered = windowed satisfaction back within this much of baseline.
RECOVERY_THRESHOLD = 0.9

#: Windows with fewer queries than this are too sparse to call recovery.
MIN_WINDOW_QUERIES = 5

#: Not anchored to a paper figure; only sharing across the grid matters.
BASE_SEED = 0xF4E5

PROTOCOL = ProtocolParams(cache_size=30)

#: Median sharer holds DEFAULT_MEDIAN_FILES = 100 files, so a median
#: peer keeps the base capacity; free riders drop to the floor and the
#: Pareto-tail whales are capped at 4x base rather than tracking their
#: (unbounded) libraries.
SIZING = CacheSizing(
    policy="proportional", reference_files=100, min_capacity=5,
    max_capacity=4 * PROTOCOL.cache_size,
)

#: Invalidation tuning: budget 6 / depth 2 buys a consistent stale-dead
#: reduction at a few notices per query (notices concentrate where the
#: deaths do); deeper/wider settings (e.g. 8/3) halve stale probes but
#: roughly double the notice traffic again.
INVALIDATE = FreshnessPlan(notify_budget=6, depth=2)

#: Mode name -> FreshnessPlan (None = paper baseline), sweep order.
MODES: Tuple[Tuple[str, Optional[FreshnessPlan]], ...] = (
    ("off", None),
    ("invalidate", INVALIDATE),
    ("size", FreshnessPlan(sizing=SIZING)),
    ("full", INVALIDATE.with_(sizing=SIZING)),
)


def storm_plan(profile: Profile, fraction: float) -> ScenarioPlan:
    """One storm landing 30% of the way into the measured window.

    No flash crowd rides it (unlike the ``churn_storm`` suite): the
    question here is cache staleness, not overload, so the query rate
    stays flat and every dead probe is churn's doing.
    """
    start = profile.warmup + 0.3 * profile.duration
    return ScenarioPlan(
        storms=(
            ChurnStorm(start=start, width=STORM_WIDTH, fraction=fraction),
        ),
    )


def _recovery_seconds(report, plan: ScenarioPlan) -> float:
    """Time-to-recovery for one trial (inf when it never recovers)."""
    storm = plan.storms[0]
    windows = to_windows(report.satisfaction_windows)
    baseline = baseline_rate(windows, before=storm.start)
    return time_to_recovery(
        windows,
        after=storm.start + storm.width,
        baseline=baseline,
        threshold=RECOVERY_THRESHOLD,
        min_queries=MIN_WINDOW_QUERIES,
    )


def _measure_cell(
    profile: Profile,
    fraction: float,
    freshness: Optional[FreshnessPlan],
    executor: TrialExecutor | None = None,
    scheduler: str = "heap",
) -> Dict[str, float]:
    """Run one (storm fraction, mode) cell and fold its metrics."""
    plan = storm_plan(profile, fraction)
    reports = run_guess_config(
        SystemParams(network_size=profile.network_sizes[0]),
        PROTOCOL,
        duration=profile.duration,
        warmup=profile.warmup,
        trials=profile.trials,
        base_seed=BASE_SEED,
        scenarios=plan,
        freshness=freshness,
        satisfaction_window=SATISFACTION_WINDOW,
        executor=executor,
        scheduler=scheduler,
    )
    completed = [r for r in reports if not isinstance(r, TrialFailure)]
    recoveries = [_recovery_seconds(report, plan) for report in completed]
    staleness = [summarize_staleness(report) for report in completed]
    return {
        "satisfied": averaged(reports, "satisfaction_rate"),
        "dead_per_query": averaged(reports, "dead_probes_per_query"),
        "stale_dead": mean([s.stale_dead_probes for s in staleness]),
        "fresh_dead": mean([s.fresh_dead_probes for s in staleness]),
        "stale_frac": mean([s.stale_fraction for s in staleness]),
        "notices_per_query": mean(
            [ratio(r.freshness_notices, r.queries) for r in completed]
        ),
        "purges": averaged(reports, "freshness_purges"),
        "refresh": averaged(reports, "freshness_refresh_imports"),
        "recovery": mean(recoveries),
    }


def _sweep(
    profile: Profile,
    executor: TrialExecutor | None = None,
    scheduler: str = "heap",
) -> Dict[Tuple[float, str], Dict[str, float]]:
    """The fraction × mode grid, cells in deterministic order."""
    return {
        (fraction, mode): _measure_cell(
            profile, fraction, freshness, executor, scheduler
        )
        for mode, freshness in MODES
        for fraction in STORM_FRACTIONS
    }


def run_freshness_grid(
    profile: Profile,
    executor: TrialExecutor | None = None,
    scheduler: str = "heap",
) -> List[ExperimentResult]:
    """Both results from one grid sweep (the cells are shared)."""
    cells = _sweep(profile, executor, scheduler)
    rows = tuple(
        (
            fraction,
            mode,
            cell["satisfied"],
            cell["dead_per_query"],
            cell["stale_dead"],
            cell["fresh_dead"],
            cell["stale_frac"],
            cell["notices_per_query"],
            cell["purges"],
            cell["refresh"],
            cell["recovery"],
        )
        for (fraction, mode), cell in cells.items()
    )
    grid = ExperimentResult(
        experiment_id="freshness_grid",
        title="Cache freshness under churn: storm fraction × mechanism",
        columns=(
            "Fraction",
            "Mode",
            "Satisfied",
            "DeadIP/Query",
            "StaleDead",
            "FreshDead",
            "StaleFrac",
            "Notices/Query",
            "Purges",
            "Refresh",
            "Recovery(s)",
        ),
        rows=rows,
        notes=(
            "stale dead probes (target departed after the pointer was "
            "acquired) are the waste push invalidation can prevent; "
            "'invalidate' purges them for a few notices per query, "
            "'size' concentrates capacity on the peers queries "
            "actually hit, 'full' composes both"
        ),
    )
    recovery = ExperimentResult(
        experiment_id="freshness_recovery",
        title="Time-to-recovery vs storm fraction, per freshness mode",
        series={
            f"mode={mode}": [
                (fraction, cells[(fraction, mode)]["recovery"])
                for fraction in STORM_FRACTIONS
            ]
            for mode, _ in MODES
        },
        x_label="storm fraction",
        notes=(
            "push invalidation purges corpses ahead of the probe path, "
            "so post-storm caches heal faster than dead-probe eviction "
            "alone allows"
        ),
    )
    return [grid, recovery]


def run_suite(
    profile: Profile,
    workers: int = 1,
    executor: TrialExecutor | None = None,
    scheduler: str = "heap",
) -> List[ExperimentResult]:
    """``freshness_grid`` and ``freshness_recovery``.

    An explicit ``executor`` (e.g. the supervised executor shared by
    ``run_all --supervise``) overrides ``workers`` and stays open for
    the caller to close.  ``scheduler`` picks the engine event queue
    per trial ("heap" or "wheel"); results are identical either way.
    """
    if executor is None:
        with get_executor(workers) as owned:
            return run_suite(profile, executor=owned, scheduler=scheduler)
    return run_freshness_grid(profile, executor, scheduler)


def _render(results: List[ExperimentResult]) -> str:
    return "\n\n".join(result.render() for result in results)


def main(argv: List[str] | None = None) -> int:
    """Module CLI; see the module docstring.  Returns an exit code."""
    parser = argparse.ArgumentParser(
        description="Run the cache-freshness-under-churn suite."
    )
    parser.add_argument(
        "--profile",
        default="smoke",
        choices=sorted(PROFILES),
        help="scale profile (default: smoke)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="trial-level parallelism (0 = one per CPU, default: serial)",
    )
    parser.add_argument(
        "--verify-parallel",
        action="store_true",
        help=(
            "run the suite serially AND on --workers processes and fail "
            "unless the rendered reports are byte-identical"
        ),
    )
    parser.add_argument(
        "--scheduler",
        default="heap",
        choices=("heap", "wheel"),
        help=(
            "engine event queue per trial (default: heap); the wheel is "
            "faster at scale and fires events in exactly the same order"
        ),
    )
    parser.add_argument(
        "--output",
        default=None,
        help="also write the rendered results to this file",
    )
    args = parser.parse_args(argv)
    if args.workers < 0:
        parser.error(f"--workers must be >= 0, got {args.workers}")
    profile = get_profile(args.profile)

    if args.verify_parallel:
        if args.workers == 1:
            parser.error("--verify-parallel needs --workers N (N != 1)")
        serial = _render(run_suite(profile, workers=1, scheduler=args.scheduler))
        parallel = _render(
            run_suite(profile, workers=args.workers, scheduler=args.scheduler)
        )
        if serial != parallel:
            print("FAIL: serial and parallel reports differ", file=sys.stderr)
            return 1
        print(f"serial == workers={args.workers}: reports byte-identical")
        text = serial
    else:
        text = _render(
            run_suite(profile, workers=args.workers, scheduler=args.scheduler)
        )

    print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
