"""Parallel trial execution for experiment sweeps.

The paper's evaluation is ~20 figures/tables, each a sweep of
*independent* seeded :class:`~repro.core.network_sim.GuessSimulation`
runs — an embarrassingly parallel workload the serial runner left on one
core.  This module supplies the missing abstraction:

* :class:`TrialSpec` — a frozen, picklable description of one seeded
  trial (the seed is derived *before* dispatch, in the parent, so worker
  placement can never change which seed a trial gets);
* :func:`execute_trial` — a module-level worker function (picklable by
  reference) that builds, runs, and reports one simulation;
* :class:`TrialExecutor` — the strategy interface, with
  :class:`SerialTrialExecutor` (in-process, zero overhead) and
  :class:`ProcessTrialExecutor` (a lazily started
  :class:`~concurrent.futures.ProcessPoolExecutor`) implementations;
* :func:`get_executor` — the ``workers=N`` factory used by
  :func:`~repro.experiments.runner.run_guess_config`, every suite's
  ``run_suite(..., workers=N)``, and ``run_all --workers N``.

Determinism guarantee: each trial owns a private
:class:`~repro.sim.rng.RngRegistry` seeded from its spec — no RNG state
is shared between trials, processes inherit nothing mutable — and
results are returned **in spec order** regardless of completion order.
A parallel sweep is therefore byte-identical to the serial one, which
``tests/experiments/test_executor.py`` asserts report-by-report.
"""

from __future__ import annotations

import os
import time
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional, Sequence, TypeVar

from repro.baselines.gossip import GossipPlan
from repro.core.network_sim import GuessSimulation
from repro.core.params import ProtocolParams, SystemParams
from repro.errors import ChaosError, ConfigError
from repro.faults.plan import FaultPlan
from repro.freshness.plan import FreshnessPlan
from repro.metrics.collectors import SimulationReport
from repro.observe.profiler import active_profiler
from repro.resilience.policy import ResiliencePolicy
from repro.resilience.scenarios import ScenarioPlan

#: Chaos failure modes understood by :func:`execute_trial`.
CHAOS_MODES = ("raise", "exit", "hang")


@dataclass(frozen=True)
class ChaosSpec:
    """Deterministic crash injection carried on a :class:`TrialSpec`.

    The hook fires in :func:`execute_trial` *before* the simulation is
    constructed, so an attempt that survives chaos produces a report
    byte-identical to one that never carried chaos at all — which is how
    the supervisor's retry path stays inside the determinism contract.

    Attributes:
        mode: ``"raise"`` (raise :class:`~repro.errors.ChaosError`),
            ``"exit"`` (``os._exit`` — kills the worker process and
            breaks a process pool), or ``"hang"`` (sleep past any
            watchdog deadline).
        times: sabotage only the first ``times`` attempts, then run
            clean; ``None`` sabotages every attempt (the quarantine
            path).  Attempt counting crosses process boundaries via a
            marker file, so ``times`` requires ``marker_dir``.
        marker_dir: directory for the attempt-count marker file.
        key: marker-file stem; must be unique per sabotaged trial.
        hang_seconds: sleep length for ``"hang"`` mode.
    """

    mode: str
    times: Optional[int] = None
    marker_dir: Optional[str] = None
    key: str = "chaos"
    hang_seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.mode not in CHAOS_MODES:
            raise ConfigError(
                f"chaos mode must be one of {CHAOS_MODES}, got {self.mode!r}"
            )
        if self.times is not None and self.marker_dir is None:
            raise ConfigError(
                "bounded chaos (times=N) needs marker_dir to count "
                "attempts across worker processes"
            )


def _apply_chaos(chaos: ChaosSpec) -> None:
    """Fire the chaos failure mode unless its sabotage budget is spent."""
    if chaos.times is not None:
        path = os.path.join(chaos.marker_dir, f"{chaos.key}.attempts")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                spent = int(handle.read().strip() or 0)
        except (FileNotFoundError, ValueError):
            spent = 0
        if spent >= chaos.times:
            return
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(str(spent + 1))
    if chaos.mode == "raise":
        raise ChaosError(f"injected failure (key={chaos.key})")
    if chaos.mode == "exit":
        os._exit(23)
    # "hang": sleep far past any reasonable deadline.  The watchdog is
    # expected to kill this worker long before the sleep returns.
    time.sleep(chaos.hang_seconds)  # repro: allow-wallclock (chaos hook)


@dataclass(frozen=True)
class TrialSpec:
    """Everything needed to run one seeded trial, picklable.

    Attributes:
        system / protocol: the configuration under test.
        duration: measured simulation seconds (after warmup).
        warmup: seconds before metrics collection starts.
        seed: the trial's master seed, already derived by the caller.
        keep_queries: retain per-query records in the report.
        health_sample_interval: cache-health sampling period (None = off).
        faults: optional fault plan (frozen, hence picklable); ``None``
            or an all-zeros plan runs the fault-free code path.
        trace_hash: enable the engine's determinism sanitizer.
        scheduler: engine event-queue structure (``"heap"`` or
            ``"wheel"``); either fires events in exactly the same order,
            so this knob trades wall-clock only, never results.
        chaos: optional crash injection (:class:`ChaosSpec`); fires in
            :func:`execute_trial` before the simulation exists, so a
            surviving attempt's report is untouched by it.
        scenarios: optional correlated-failure plan (churn storms, flash
            crowds; frozen, hence picklable); ``None`` or an all-noop
            plan runs the scenario-free code path bit-identically.
        resilience: optional per-peer graceful-degradation policy
            (breakers, retry budgets, graded shedding); ``None`` or an
            all-off policy changes nothing.
        satisfaction_window: width of the collector's windowed
            satisfaction channel (``None`` = off), feeding the
            time-to-recovery metric.
        gossip: optional gossip-assisted GUESS plan (frozen, hence
            picklable); ``None`` or a no-op plan runs the gossip-free
            code path bit-identically.
        freshness: optional cache-freshness plan (push invalidation +
            heterogeneous cache sizing; frozen, hence picklable);
            ``None`` or a no-op plan runs the freshness-free code path
            bit-identically.
    """

    system: SystemParams
    protocol: ProtocolParams
    duration: float
    warmup: float
    seed: int
    keep_queries: bool = False
    health_sample_interval: Optional[float] = 60.0
    faults: Optional[FaultPlan] = None
    trace_hash: bool = False
    scheduler: str = "heap"
    chaos: Optional[ChaosSpec] = None
    scenarios: Optional[ScenarioPlan] = None
    resilience: Optional[ResiliencePolicy] = None
    satisfaction_window: Optional[float] = None
    gossip: Optional[GossipPlan] = None
    freshness: Optional[FreshnessPlan] = None


def execute_trial(spec: TrialSpec) -> SimulationReport:
    """Run one trial to completion (module-level, hence process-picklable)."""
    if spec.chaos is not None:
        _apply_chaos(spec.chaos)
    sim = GuessSimulation(
        spec.system,
        spec.protocol,
        seed=spec.seed,
        warmup=spec.warmup,
        keep_queries=spec.keep_queries,
        health_sample_interval=spec.health_sample_interval,
        faults=spec.faults,
        trace_hash=spec.trace_hash,
        scheduler=spec.scheduler,
        scenarios=spec.scenarios,
        resilience=spec.resilience,
        satisfaction_window=spec.satisfaction_window,
        gossip=spec.gossip,
        freshness=spec.freshness,
    )
    # Profiling hook: when a profiler is active in this process, the
    # engine reports this trial's (events, wall, sim-seconds) sample.
    # The profiler only reads engine counters — the simulation itself is
    # untouched.  Pool workers see no active profiler (it does not cross
    # process boundaries); their wall time is covered by the parent's
    # batch samples.
    profiler = active_profiler()
    if profiler is not None:
        sim.engine.profiler = profiler
    sim.run(spec.warmup + spec.duration)
    return sim.report()


_Item = TypeVar("_Item")


class TrialExecutor(ABC):
    """Strategy for running batches of independent, picklable work items.

    Executors are reusable across many batches (a suite runs one executor
    over every sweep cell) and are context managers; :meth:`close` is
    idempotent.  The core primitive is :meth:`map` — order-preserving
    application of a module-level function — with :meth:`run_trials` as
    the :class:`TrialSpec` convenience wrapper.
    """

    #: Degree of parallelism this executor targets (1 for serial).
    workers: int = 1

    @abstractmethod
    def map(
        self,
        fn: Callable[[_Item], Any],
        items: Iterable[_Item],
    ) -> List[Any]:
        """Apply ``fn`` to every item; results come back **in item order**.

        ``fn`` must be a module-level callable and the items picklable
        when the executor is process-backed.
        """

    def run_trials(self, specs: Sequence[TrialSpec]) -> List[SimulationReport]:
        """Run every spec; reports are returned **in spec order**."""
        return self.map(execute_trial, specs)

    def close(self) -> None:
        """Release any pooled resources (default: nothing to release)."""

    def __enter__(self) -> "TrialExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialTrialExecutor(TrialExecutor):
    """Run work items one after another in the calling process."""

    workers = 1

    def map(
        self,
        fn: Callable[[_Item], Any],
        items: Iterable[_Item],
    ) -> List[Any]:
        profiler = active_profiler()
        if profiler is None:
            return [fn(item) for item in items]
        batch = list(items)
        started = time.perf_counter()  # repro: allow-wallclock (profiling)
        results = [fn(item) for item in batch]
        elapsed = time.perf_counter() - started  # repro: allow-wallclock
        profiler.record_batch(len(batch), elapsed)
        return results


class ProcessTrialExecutor(TrialExecutor):
    """Run work items on a pool of worker processes.

    The pool starts lazily on the first multi-item batch and is reused
    for the executor's lifetime, so per-sweep-cell pool spin-up is paid
    once per suite, not once per configuration.  Single-item batches run
    in-process: dispatch/pickling overhead would only add latency.

    Args:
        workers: pool size; ``None`` or 0 means ``os.cpu_count()``.
    """

    def __init__(self, workers: Optional[int] = None) -> None:
        resolved = workers or os.cpu_count() or 1
        if resolved < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        self.workers = int(resolved)
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """The live pool, spawning (or respawning after discard) lazily."""
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _discard_pool(self) -> None:
        """Retire the current pool (broken or poisoned) without raising.

        The next batch respawns a fresh pool via :meth:`_ensure_pool`;
        pending work is cancelled — nothing keeps running unobserved.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # a broken pool may refuse even a shutdown
            pass

    def map(
        self,
        fn: Callable[[_Item], Any],
        items: Iterable[_Item],
    ) -> List[Any]:
        items = list(items)
        profiler = active_profiler()
        if len(items) <= 1 or self.workers == 1:
            if profiler is None:
                return [fn(item) for item in items]
            started = time.perf_counter()  # repro: allow-wallclock (profiling)
            results = [fn(item) for item in items]
            elapsed = time.perf_counter() - started  # repro: allow-wallclock
            profiler.record_batch(len(items), elapsed)
            return results
        pool = self._ensure_pool()
        # Executor.map preserves input order regardless of which worker
        # finishes first — the trial-order-stability guarantee.  Any
        # exception escaping the batch (a worker raising, or the pool
        # breaking outright) retires the pool: a BrokenProcessPool
        # would otherwise leave self._pool permanently unusable, and a
        # mid-iteration error would leave queued work running with no
        # one reading the results.
        try:
            if profiler is None:
                return list(pool.map(fn, items))
            started = time.perf_counter()  # repro: allow-wallclock (profiling)
            results = list(pool.map(fn, items))
            elapsed = time.perf_counter() - started  # repro: allow-wallclock
            profiler.record_batch(len(items), elapsed)
            return results
        except BaseException:
            self._discard_pool()
            raise

    def close(self) -> None:
        """Shut the pool down; safe to call repeatedly or on a dead pool."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        try:
            pool.shutdown(wait=True)
        except Exception:  # already-broken pools shut down best-effort
            pass


def get_executor(workers: Optional[int]) -> TrialExecutor:
    """The executor for a ``workers=N`` request.

    ``None`` or 1 selects the serial executor; 0 means "one worker per
    CPU"; N > 1 selects a process pool of exactly N workers.

    Raises:
        ConfigError: for negative worker counts.
    """
    if workers is not None and workers < 0:
        raise ConfigError(f"workers must be >= 0, got {workers}")
    if workers is None or workers == 1:
        return SerialTrialExecutor()
    return ProcessTrialExecutor(workers)
