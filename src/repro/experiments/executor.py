"""Parallel trial execution for experiment sweeps.

The paper's evaluation is ~20 figures/tables, each a sweep of
*independent* seeded :class:`~repro.core.network_sim.GuessSimulation`
runs — an embarrassingly parallel workload the serial runner left on one
core.  This module supplies the missing abstraction:

* :class:`TrialSpec` — a frozen, picklable description of one seeded
  trial (the seed is derived *before* dispatch, in the parent, so worker
  placement can never change which seed a trial gets);
* :func:`execute_trial` — a module-level worker function (picklable by
  reference) that builds, runs, and reports one simulation;
* :class:`TrialExecutor` — the strategy interface, with
  :class:`SerialTrialExecutor` (in-process, zero overhead) and
  :class:`ProcessTrialExecutor` (a lazily started
  :class:`~concurrent.futures.ProcessPoolExecutor`) implementations;
* :func:`get_executor` — the ``workers=N`` factory used by
  :func:`~repro.experiments.runner.run_guess_config`, every suite's
  ``run_suite(..., workers=N)``, and ``run_all --workers N``.

Determinism guarantee: each trial owns a private
:class:`~repro.sim.rng.RngRegistry` seeded from its spec — no RNG state
is shared between trials, processes inherit nothing mutable — and
results are returned **in spec order** regardless of completion order.
A parallel sweep is therefore byte-identical to the serial one, which
``tests/experiments/test_executor.py`` asserts report-by-report.
"""

from __future__ import annotations

import os
import time
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional, Sequence, TypeVar

from repro.core.network_sim import GuessSimulation
from repro.core.params import ProtocolParams, SystemParams
from repro.errors import ConfigError
from repro.faults.plan import FaultPlan
from repro.metrics.collectors import SimulationReport
from repro.observe.profiler import active_profiler


@dataclass(frozen=True)
class TrialSpec:
    """Everything needed to run one seeded trial, picklable.

    Attributes:
        system / protocol: the configuration under test.
        duration: measured simulation seconds (after warmup).
        warmup: seconds before metrics collection starts.
        seed: the trial's master seed, already derived by the caller.
        keep_queries: retain per-query records in the report.
        health_sample_interval: cache-health sampling period (None = off).
        faults: optional fault plan (frozen, hence picklable); ``None``
            or an all-zeros plan runs the fault-free code path.
        trace_hash: enable the engine's determinism sanitizer.
    """

    system: SystemParams
    protocol: ProtocolParams
    duration: float
    warmup: float
    seed: int
    keep_queries: bool = False
    health_sample_interval: Optional[float] = 60.0
    faults: Optional[FaultPlan] = None
    trace_hash: bool = False


def execute_trial(spec: TrialSpec) -> SimulationReport:
    """Run one trial to completion (module-level, hence process-picklable)."""
    sim = GuessSimulation(
        spec.system,
        spec.protocol,
        seed=spec.seed,
        warmup=spec.warmup,
        keep_queries=spec.keep_queries,
        health_sample_interval=spec.health_sample_interval,
        faults=spec.faults,
        trace_hash=spec.trace_hash,
    )
    # Profiling hook: when a profiler is active in this process, the
    # engine reports this trial's (events, wall, sim-seconds) sample.
    # The profiler only reads engine counters — the simulation itself is
    # untouched.  Pool workers see no active profiler (it does not cross
    # process boundaries); their wall time is covered by the parent's
    # batch samples.
    profiler = active_profiler()
    if profiler is not None:
        sim.engine.profiler = profiler
    sim.run(spec.warmup + spec.duration)
    return sim.report()


_Item = TypeVar("_Item")


class TrialExecutor(ABC):
    """Strategy for running batches of independent, picklable work items.

    Executors are reusable across many batches (a suite runs one executor
    over every sweep cell) and are context managers; :meth:`close` is
    idempotent.  The core primitive is :meth:`map` — order-preserving
    application of a module-level function — with :meth:`run_trials` as
    the :class:`TrialSpec` convenience wrapper.
    """

    #: Degree of parallelism this executor targets (1 for serial).
    workers: int = 1

    @abstractmethod
    def map(
        self,
        fn: Callable[[_Item], Any],
        items: Iterable[_Item],
    ) -> List[Any]:
        """Apply ``fn`` to every item; results come back **in item order**.

        ``fn`` must be a module-level callable and the items picklable
        when the executor is process-backed.
        """

    def run_trials(self, specs: Sequence[TrialSpec]) -> List[SimulationReport]:
        """Run every spec; reports are returned **in spec order**."""
        return self.map(execute_trial, specs)

    def close(self) -> None:
        """Release any pooled resources (default: nothing to release)."""

    def __enter__(self) -> "TrialExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialTrialExecutor(TrialExecutor):
    """Run work items one after another in the calling process."""

    workers = 1

    def map(
        self,
        fn: Callable[[_Item], Any],
        items: Iterable[_Item],
    ) -> List[Any]:
        profiler = active_profiler()
        if profiler is None:
            return [fn(item) for item in items]
        batch = list(items)
        started = time.perf_counter()  # repro: allow-wallclock (profiling)
        results = [fn(item) for item in batch]
        elapsed = time.perf_counter() - started  # repro: allow-wallclock
        profiler.record_batch(len(batch), elapsed)
        return results


class ProcessTrialExecutor(TrialExecutor):
    """Run work items on a pool of worker processes.

    The pool starts lazily on the first multi-item batch and is reused
    for the executor's lifetime, so per-sweep-cell pool spin-up is paid
    once per suite, not once per configuration.  Single-item batches run
    in-process: dispatch/pickling overhead would only add latency.

    Args:
        workers: pool size; ``None`` or 0 means ``os.cpu_count()``.
    """

    def __init__(self, workers: Optional[int] = None) -> None:
        resolved = workers or os.cpu_count() or 1
        if resolved < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        self.workers = int(resolved)
        self._pool: Optional[ProcessPoolExecutor] = None

    def map(
        self,
        fn: Callable[[_Item], Any],
        items: Iterable[_Item],
    ) -> List[Any]:
        items = list(items)
        profiler = active_profiler()
        if len(items) <= 1 or self.workers == 1:
            if profiler is None:
                return [fn(item) for item in items]
            started = time.perf_counter()  # repro: allow-wallclock (profiling)
            results = [fn(item) for item in items]
            elapsed = time.perf_counter() - started  # repro: allow-wallclock
            profiler.record_batch(len(items), elapsed)
            return results
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        # Executor.map preserves input order regardless of which worker
        # finishes first — the trial-order-stability guarantee.
        if profiler is None:
            return list(self._pool.map(fn, items))
        started = time.perf_counter()  # repro: allow-wallclock (profiling)
        results = list(self._pool.map(fn, items))
        elapsed = time.perf_counter() - started  # repro: allow-wallclock
        profiler.record_batch(len(items), elapsed)
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def get_executor(workers: Optional[int]) -> TrialExecutor:
    """The executor for a ``workers=N`` request.

    ``None`` or 1 selects the serial executor; 0 means "one worker per
    CPU"; N > 1 selects a process pool of exactly N workers.

    Raises:
        ConfigError: for negative worker counts.
    """
    if workers is not None and workers < 0:
        raise ConfigError(f"workers must be >= 0, got {workers}")
    if workers is None or workers == 1:
        return SerialTrialExecutor()
    return ProcessTrialExecutor(workers)
