"""Gossip-search comparison suite (beyond the paper).

The paper's related-work section flags epidemic (rumor-spreading) search
as the other non-forwarding family but never evaluates it.  This suite
closes that gap with two results:

* ``gossip_compare`` — one table comparing, at a shared population and
  seed: Gnutella flooding, the three rumor-spreading modes
  (push / pull / push-pull, :class:`~repro.baselines.gossip.GossipSearch`),
  plain GUESS, and two **gossip-assisted GUESS** cells
  (:class:`~repro.baselines.gossip.GossipPlan`) tuned to spend the same
  total message budget as plain GUESS by stretching the ping interval to
  pay for the epidemic pushes.  Columns: satisfaction, messages per
  query, max per-peer load, results per query, and (for the simulated
  rows) wasted dead probes per query and mean live-entry fraction —
  the axis gossip assistance wins at equal budget.
* ``gossip_faulty`` — faulty-reporter fraction × mode
  (inflate / suppress) over the rumor-spreading baseline, showing the
  divergence between *claimed* and *honest* results per query (the
  honest channel stays correct while the perceived one is poisoned).

All static-population randomness (view/overlay synthesis, workloads)
derives from ``BASE_SEED`` under ``gossip:*`` stream names; the
simulated GUESS cells run through
:func:`~repro.experiments.runner.run_guess_config` at the same base
seed, so every row of a table shares its population story.

Run via ``python -m repro.experiments.run_all --suite gossip_search`` or
directly::

    python -m repro.experiments.gossip_search --profile smoke --workers 2

The module CLI's ``--verify-parallel`` flag re-runs the suite serially
and on a process pool and fails unless the rendered reports are
byte-identical — the gossip subsystem's serial-vs-parallel determinism
check used by the ``gossip-smoke`` CI job.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Dict, List, Optional, Tuple

from repro.baselines.extent import PopulationView
from repro.baselines.gnutella import GnutellaOverlay
from repro.baselines.gossip import GossipParams, GossipPlan, GossipSearch
from repro.core.params import ProtocolParams, SystemParams
from repro.errors import TrialFailure
from repro.experiments.executor import TrialExecutor, get_executor
from repro.experiments.profiles import PROFILES, Profile, get_profile
from repro.experiments.runner import (
    ExperimentResult,
    averaged,
    run_guess_config,
)
from repro.sim.rng import RngRegistry, derive_seed
from repro.workload.content import ContentModel
from repro.workload.files import FileCountModel

#: Not anchored to a paper figure; just shared by every cell of a table.
BASE_SEED = 0x905

#: Overlay degree for the flooding / rumor-spreading rows.
OVERLAY_DEGREE = 6

#: Flood TTL: with degree 6 this reaches most of a reference-size
#: population — flooding's "extent is everything it can touch" regime.
FLOOD_TTL = 3

#: Rumor fanout (``k``) and TTL (rounds) for the standalone baseline.
GOSSIP_FANOUT = 2
GOSSIP_ROUNDS = 5

#: Faulty-reporter fractions swept by ``gossip_faulty``.
FAULTY_FRACTIONS: Tuple[float, ...] = (0.1, 0.3)

#: GUESS protocol shared by the simulated rows (cache sized like the
#: churn suite so the smoke profile is comparable across suites).
GUESS_PING_INTERVAL = 30.0
GUESS_PROTOCOL = ProtocolParams(
    cache_size=30, ping_interval=GUESS_PING_INTERVAL
)

#: The simulated rows run a churn-stressed population (lifetimes halved):
#: cache staleness is the problem epidemic harvest-sharing attacks, so
#: this is where the budget comparison is informative — under the
#: default calm churn both rows ride near-perfect caches and the delta
#: drowns in seed noise.
GUESS_LIFESPAN_MULTIPLIER = 0.5

#: Seed repetitions floor for the simulated rows: per-trial variance at
#: smoke scale is larger than the assisted-vs-plain delta, so single-
#: trial cells would make the committed table a coin flip.
MIN_GUESS_TRIALS = 4

#: The two gossip-assisted cells: (label, plan, ping-interval stretch).
#: Each armed plan costs at most ``fanout + fanout**2`` pushes per
#: successful ping (ttl=2) or ``fanout`` (ttl=1), so the stretch factor
#: is 1 + that bound — the ping budget the pushes replace — keeping the
#: cell's total message budget at (or just below) plain GUESS's.
ASSISTED_CELLS: Tuple[Tuple[str, GossipPlan, float], ...] = (
    ("guess+gossip k=1 t=1", GossipPlan(fanout=1, ttl=1), 2.0),
    ("guess+gossip k=2 t=2", GossipPlan(fanout=2, ttl=2), 7.0),
)


def _population(
    profile: Profile,
) -> Tuple[GnutellaOverlay, PopulationView]:
    """The shared static population for the flooding and gossip rows."""
    n = profile.reference_size
    content = ContentModel()
    view = PopulationView.synthesize(
        n,
        random.Random(derive_seed(BASE_SEED, "gossip:population")),
        content,
        FileCountModel(),
    )
    overlay = GnutellaOverlay(
        n,
        degree=OVERLAY_DEGREE,
        rng=random.Random(derive_seed(BASE_SEED, "gossip:topology")),
    )
    return overlay, view


def _flood_row(
    profile: Profile, overlay: GnutellaOverlay, view: PopulationView
) -> Dict[str, float]:
    """Flooding's satisfaction / cost / load over the shared workload."""
    rng = random.Random(derive_seed(BASE_SEED, "gossip:workload"))
    n = overlay.n
    queries = profile.baseline_queries
    satisfied = 0
    messages = 0
    results = 0
    loads = [0] * n
    for _ in range(queries):
        source = rng.randrange(n)
        target = view.content.draw_query_target(rng)
        sent, found = overlay.flood_query(view, source, target, FLOOD_TTL)
        messages += sent
        results += found
        satisfied += 1 if found >= 1 else 0
        for peer, receipts in overlay.flood_receipts(
            source, FLOOD_TTL
        ).items():
            loads[peer] += receipts
    return {
        "satisfied": satisfied / queries,
        "messages": messages / queries,
        "max_load": float(max(loads)),
        "results": results / queries,
    }


def _gossip_row(
    profile: Profile,
    overlay: GnutellaOverlay,
    view: PopulationView,
    mode: str,
    faulty_fraction: float = 0.0,
    faulty_mode: str = "inflate",
) -> Dict[str, float]:
    """One rumor-spreading cell (mode × adversary mix)."""
    search = GossipSearch(
        overlay,
        view,
        GossipParams(
            mode=mode,
            fanout=GOSSIP_FANOUT,
            rounds=GOSSIP_ROUNDS,
            faulty_fraction=faulty_fraction,
            faulty_mode=faulty_mode,
        ),
        RngRegistry(BASE_SEED),
    )
    summary = search.run_workload(profile.baseline_queries)
    return {
        "satisfied": summary.satisfaction_rate,
        "messages": summary.messages_per_query,
        "max_load": float(summary.max_load),
        "results": summary.honest_results_per_query,
        "claimed": summary.claimed_results_per_query,
        "suppressed": float(summary.suppressed_reports),
    }


def _guess_row(
    profile: Profile,
    plan: Optional[GossipPlan],
    ping_stretch: float,
    executor: TrialExecutor | None,
    scheduler: str,
) -> Dict[str, float]:
    """One simulated GUESS cell (plain or gossip-assisted).

    ``Msgs/Query`` folds the *whole* post-warmup wire bill — query
    probes, maintenance pings, and gossip pushes — over the measured
    queries, so the assisted rows' budget is directly comparable to
    plain GUESS's.
    """
    protocol = ProtocolParams(
        cache_size=GUESS_PROTOCOL.cache_size,
        ping_interval=GUESS_PING_INTERVAL * ping_stretch,
    )
    reports = run_guess_config(
        SystemParams(
            network_size=profile.reference_size,
            lifespan_multiplier=GUESS_LIFESPAN_MULTIPLIER,
        ),
        protocol,
        duration=profile.duration,
        warmup=profile.warmup,
        trials=max(profile.trials, MIN_GUESS_TRIALS),
        base_seed=BASE_SEED,
        gossip=plan,
        executor=executor,
        scheduler=scheduler,
    )
    live = [r for r in reports if not isinstance(r, TrialFailure)]
    messages = [
        (r.total_probes + r.pings_sent + r.gossip_pushes) / r.queries
        for r in live
        if r.queries
    ]
    max_loads = [
        float(r.load_distribution().load_at_rank(1))
        for r in live
        if len(r.load_distribution())
    ]
    return {
        "satisfied": averaged(reports, "satisfaction_rate"),
        "messages": sum(messages) / len(messages) if messages else 0.0,
        "max_load": sum(max_loads) / len(max_loads) if max_loads else 0.0,
        "results": averaged(reports, "results_per_query"),
        "dead": averaged(reports, "dead_probes_per_query"),
        "frac_live": averaged(reports, "mean_fraction_live"),
    }


def run_gossip_compare(
    profile: Profile,
    executor: TrialExecutor | None = None,
    scheduler: str = "heap",
) -> ExperimentResult:
    """The seven-row comparison table (flooding, three rumor modes,
    plain GUESS, two gossip-assisted cells)."""
    overlay, view = _population(profile)
    rows: List[tuple] = []

    flood = _flood_row(profile, overlay, view)
    rows.append((
        f"flooding ttl={FLOOD_TTL}",
        flood["satisfied"],
        flood["messages"],
        flood["max_load"],
        flood["results"],
        "-",
        "-",
    ))
    for mode in ("push", "pull", "push-pull"):
        cell = _gossip_row(profile, overlay, view, mode)
        rows.append((
            f"gossip {mode} k={GOSSIP_FANOUT} r={GOSSIP_ROUNDS}",
            cell["satisfied"],
            cell["messages"],
            cell["max_load"],
            cell["results"],
            "-",
            "-",
        ))
    plain = _guess_row(profile, None, 1.0, executor, scheduler)
    rows.append((
        "guess",
        plain["satisfied"],
        plain["messages"],
        plain["max_load"],
        plain["results"],
        plain["dead"],
        plain["frac_live"],
    ))
    for label, plan, stretch in ASSISTED_CELLS:
        cell = _guess_row(profile, plan, stretch, executor, scheduler)
        rows.append((
            label,
            cell["satisfied"],
            cell["messages"],
            cell["max_load"],
            cell["results"],
            cell["dead"],
            cell["frac_live"],
        ))

    return ExperimentResult(
        experiment_id="gossip_compare",
        title=(
            "Search mechanisms compared: flooding, rumor spreading, "
            "GUESS, gossip-assisted GUESS"
        ),
        columns=(
            "Mechanism",
            "Satisfied",
            "Msgs/Query",
            "MaxLoad",
            "Results/Query",
            "Dead/Query",
            "FracLive",
        ),
        rows=tuple(rows),
        notes=(
            "flooding buys satisfaction with an order-of-magnitude "
            "message bill; rumor spreading trades a tunable slice of "
            "both; at an equal-or-lower total message budget (ping "
            "interval stretched to pay for the pushes, churn-stressed "
            "population) gossip-assisted GUESS holds satisfaction "
            "within a point of plain GUESS while cutting both wasted "
            "dead probes per query and the total wire bill"
        ),
    )


def run_gossip_faulty(profile: Profile) -> ExperimentResult:
    """Faulty-reporter sweep over the rumor-spreading baseline."""
    overlay, view = _population(profile)
    rows: List[tuple] = []
    honest = _gossip_row(profile, overlay, view, "push")
    rows.append((
        0.0,
        "-",
        honest["satisfied"],
        honest["claimed"],
        honest["results"],
        honest["suppressed"],
    ))
    for mode in ("inflate", "suppress"):
        for fraction in FAULTY_FRACTIONS:
            cell = _gossip_row(
                profile,
                overlay,
                view,
                "push",
                faulty_fraction=fraction,
                faulty_mode=mode,
            )
            rows.append((
                fraction,
                mode,
                cell["satisfied"],
                cell["claimed"],
                cell["results"],
                cell["suppressed"],
            ))
    return ExperimentResult(
        experiment_id="gossip_faulty",
        title="Faulty reporters vs the gossip baseline: claimed vs honest",
        columns=(
            "Fraction",
            "Mode",
            "Satisfied",
            "Claimed/Query",
            "Honest/Query",
            "Suppressed",
        ),
        rows=tuple(rows),
        notes=(
            "inflate-mode reporters blow the claimed count far past the "
            "honest one while honest satisfaction accounting is "
            "unmoved; suppress-mode reporters drop real reports, so "
            "claimed and honest fall together and the suppression "
            "counter attributes the loss"
        ),
    )


def run_suite(
    profile: Profile,
    workers: int = 1,
    executor: TrialExecutor | None = None,
    scheduler: str = "heap",
) -> List[ExperimentResult]:
    """``gossip_compare`` and ``gossip_faulty``.

    An explicit ``executor`` (e.g. the supervised executor shared by
    ``run_all --supervise``) overrides ``workers`` and stays open for
    the caller to close.  ``scheduler`` picks the engine event queue
    per trial ("heap" or "wheel"); results are identical either way.
    """
    if executor is None:
        with get_executor(workers) as owned:
            return run_suite(profile, executor=owned, scheduler=scheduler)
    return [
        run_gossip_compare(profile, executor, scheduler),
        run_gossip_faulty(profile),
    ]


def _render(results: List[ExperimentResult]) -> str:
    return "\n\n".join(result.render() for result in results)


def main(argv: List[str] | None = None) -> int:
    """Module CLI; see the module docstring.  Returns an exit code."""
    parser = argparse.ArgumentParser(
        description="Run the gossip-search comparison suite."
    )
    parser.add_argument(
        "--profile",
        default="smoke",
        choices=sorted(PROFILES),
        help="scale profile (default: smoke)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="trial-level parallelism (0 = one per CPU, default: serial)",
    )
    parser.add_argument(
        "--verify-parallel",
        action="store_true",
        help=(
            "run the suite serially AND on --workers processes and fail "
            "unless the rendered reports are byte-identical"
        ),
    )
    parser.add_argument(
        "--scheduler",
        default="heap",
        choices=("heap", "wheel"),
        help=(
            "engine event queue per trial (default: heap); the wheel is "
            "faster at scale and fires events in exactly the same order"
        ),
    )
    parser.add_argument(
        "--output",
        default=None,
        help="also write the rendered results to this file",
    )
    args = parser.parse_args(argv)
    if args.workers < 0:
        parser.error(f"--workers must be >= 0, got {args.workers}")
    profile = get_profile(args.profile)

    if args.verify_parallel:
        if args.workers == 1:
            parser.error("--verify-parallel needs --workers N (N != 1)")
        serial = _render(run_suite(profile, workers=1, scheduler=args.scheduler))
        parallel = _render(
            run_suite(profile, workers=args.workers, scheduler=args.scheduler)
        )
        if serial != parallel:
            print("FAIL: serial and parallel reports differ", file=sys.stderr)
            return 1
        print(f"serial == workers={args.workers}: reports byte-identical")
        text = serial
    else:
        text = _render(
            run_suite(profile, workers=args.workers, scheduler=args.scheduler)
        )

    print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
