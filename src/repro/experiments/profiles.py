"""Scale profiles for the experiment harness.

The paper's sweeps are expensive (minutes per configuration at
NetworkSize 5000), so every experiment takes a profile:

* ``smoke`` — seconds per experiment; exercises every code path (used by
  the test suite and as the pytest-benchmark payload).
* ``quick`` — minutes for the full suite; large enough that every
  qualitative paper result is visible.
* ``full`` — the paper's scales (up to NetworkSize 5000); for an
  unattended run.

Profiles only change *scale* (durations, sizes, trials); parameters that
define an experiment (policies, multipliers, attacker mix) are fixed by
the experiment modules to the paper's values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ConfigError


@dataclass(frozen=True)
class Profile:
    """Scale knobs shared by all experiments.

    Attributes:
        name: registry key.
        duration: measured simulation seconds per run (after warmup).
        warmup: seconds before metrics collection starts.
        trials: seeded repetitions averaged per configuration.
        network_sizes: the sweep of NetworkSize values (largest last).
        reference_size: the single-network-size experiments' N
            (the paper's default is 1000).
        cache_sizes: CacheSize sweep for Table 3 / Figures 3-6.
        ping_intervals: PingInterval sweep for Figures 6-7.
        baseline_queries: query draws for the analytic Figure 8 curves.
        max_extent: largest fixed extent swept in Figure 8.
    """

    name: str
    duration: float
    warmup: float
    trials: int
    network_sizes: Tuple[int, ...]
    reference_size: int
    cache_sizes: Tuple[int, ...]
    ping_intervals: Tuple[float, ...]
    baseline_queries: int
    max_extent: int

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ConfigError(f"duration must be > 0, got {self.duration}")
        if self.warmup < 0:
            raise ConfigError(f"warmup must be >= 0, got {self.warmup}")
        if self.trials < 1:
            raise ConfigError(f"trials must be >= 1, got {self.trials}")
        if not self.network_sizes:
            raise ConfigError("network_sizes must be non-empty")
        if self.reference_size < 2:
            raise ConfigError(
                f"reference_size must be >= 2, got {self.reference_size}"
            )
        if not self.cache_sizes or not self.ping_intervals:
            raise ConfigError("cache_sizes and ping_intervals must be non-empty")
        if self.baseline_queries < 1:
            raise ConfigError(
                f"baseline_queries must be >= 1, got {self.baseline_queries}"
            )
        if self.max_extent < 1:
            raise ConfigError(f"max_extent must be >= 1, got {self.max_extent}")

    @property
    def total_time(self) -> float:
        """Simulated seconds per run including warmup."""
        return self.duration + self.warmup


PROFILES: Dict[str, Profile] = {
    "smoke": Profile(
        name="smoke",
        duration=240.0,
        warmup=60.0,
        trials=1,
        network_sizes=(100, 200),
        reference_size=200,
        cache_sizes=(5, 10, 20, 50, 100),
        ping_intervals=(10.0, 30.0, 120.0, 480.0),
        baseline_queries=200,
        max_extent=200,
    ),
    "quick": Profile(
        name="quick",
        duration=900.0,
        warmup=300.0,
        trials=1,
        network_sizes=(200, 500, 1000),
        reference_size=1000,
        cache_sizes=(5, 10, 20, 50, 100, 200, 500),
        ping_intervals=(10.0, 30.0, 60.0, 120.0, 240.0, 480.0),
        baseline_queries=1000,
        max_extent=1000,
    ),
    # The profile used to produce EXPERIMENTS.md on a single-core box:
    # every qualitative shape at a reference size of 500 peers, with the
    # multi-size sweeps still reaching 1000.
    "report": Profile(
        name="report",
        duration=900.0,
        warmup=300.0,
        trials=1,
        network_sizes=(200, 500, 1000),
        reference_size=500,
        cache_sizes=(5, 10, 20, 50, 100, 200, 500),
        ping_intervals=(10.0, 30.0, 60.0, 120.0, 300.0, 600.0),
        baseline_queries=1500,
        max_extent=500,
    ),
    "full": Profile(
        name="full",
        duration=1800.0,
        warmup=600.0,
        trials=2,
        network_sizes=(200, 500, 1000, 2000, 5000),
        reference_size=1000,
        cache_sizes=(5, 10, 20, 50, 100, 200, 500, 1000),
        ping_intervals=(10.0, 30.0, 60.0, 120.0, 240.0, 360.0, 480.0, 600.0),
        baseline_queries=2000,
        max_extent=1000,
    ),
}


def get_profile(name: str) -> Profile:
    """Look up a profile by name.

    Raises:
        ConfigError: for unknown names.
    """
    try:
        return PROFILES[name]
    except KeyError:
        raise ConfigError(
            f"unknown profile {name!r}; known: {sorted(PROFILES)}"
        ) from None
