"""CLI: regenerate every table and figure.

Usage::

    python -m repro.experiments.run_all --profile quick
    python -m repro.experiments.run_all --profile smoke --only fig8 fig13
    python -m repro.experiments.run_all --suite packet_loss --workers 2
    python -m repro.experiments.run_all --workers 2 --supervise
    python -m repro.experiments.run_all --workers 2 --resume supervise.d
    repro-experiments --profile full --output results.txt

``--only`` takes experiment ids (``table3``, ``fig3`` ... ``fig21``,
``loss_grid``, ``loss_satisfaction``, ``storm_grid``,
``storm_recovery``, ``gossip_compare``, ``gossip_faulty``,
``freshness_grid``, ``freshness_recovery``) or suite names
(``cache_size``, ``ping_interval``, ``flexible_extent``,
``policy_comparison``, ``fairness``, ``capacity``, ``malicious``,
``ablations``, ``packet_loss``, ``churn_storm``, ``gossip_search``,
``cache_freshness``); ``--suite`` is an alias accepting the same
tokens.

``--supervise`` runs every trial under
:class:`~repro.experiments.supervisor.SupervisedTrialExecutor`:
crashed/hung workers are retried (``--max-attempts``, ``--trial-timeout``),
trials that fail every attempt are quarantined instead of aborting the
sweep, each completed trial is checkpointed to
``<checkpoint dir>/trials.journal.jsonl`` as it finishes, and SIGINT
drains in-flight trials, flushes partial outputs plus a partial
manifest, and exits 130.  ``--resume DIR`` (implies ``--supervise``)
verifies the journal against the partial manifest and re-runs only
missing/failed trials — the resumed output is byte-identical to an
uninterrupted run.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import time
from contextlib import ExitStack, nullcontext
from typing import Callable, Dict, List, Optional

from repro.experiments import (
    ablations,
    cache_freshness,
    cache_size,
    capacity,
    churn_storm,
    fairness,
    flexible_extent,
    gossip_search,
    malicious,
    packet_loss,
    ping_interval,
    policy_comparison,
)
from repro.experiments.profiles import PROFILES, get_profile
from repro.experiments.runner import ExperimentResult
from repro.experiments.supervisor import (
    JOURNAL_FILENAME,
    PARTIAL_MANIFEST_FILENAME,
    SupervisedTrialExecutor,
    SweepInterrupted,
    verify_journal_against_manifest,
)
from repro.observe.manifest import (
    ManifestRecorder,
    load_manifest,
    write_manifest,
)
from repro.observe.manifest import activated as manifest_activated
from repro.observe.profiler import Profiler
from repro.observe.profiler import activated as profiler_activated

#: Suite name -> suite runner.
SUITES: Dict[str, Callable] = {
    "cache_size": cache_size.run_suite,
    "ping_interval": ping_interval.run_suite,
    "flexible_extent": flexible_extent.run_suite,
    "policy_comparison": policy_comparison.run_suite,
    "fairness": fairness.run_suite,
    "capacity": capacity.run_suite,
    "malicious": malicious.run_suite,
    "ablations": ablations.run_suite,
    "packet_loss": packet_loss.run_suite,
    "churn_storm": churn_storm.run_suite,
    "gossip_search": gossip_search.run_suite,
    "cache_freshness": cache_freshness.run_suite,
}

#: Experiment id -> the suite that produces it.
EXPERIMENT_SUITE: Dict[str, str] = {
    "table3": "cache_size",
    "fig3": "cache_size",
    "fig4": "cache_size",
    "fig5": "cache_size",
    "fig6": "ping_interval",
    "fig7": "ping_interval",
    "fig8": "flexible_extent",
    "fig9": "policy_comparison",
    "fig10": "policy_comparison",
    "fig11": "policy_comparison",
    "fig12": "policy_comparison",
    "fig13": "fairness",
    "fig14": "capacity",
    "fig15": "capacity",
    "fig16": "malicious",
    "fig17": "malicious",
    "fig18": "malicious",
    "fig19": "malicious",
    "fig20": "malicious",
    "fig21": "malicious",
    "loss_grid": "packet_loss",
    "loss_satisfaction": "packet_loss",
    "storm_grid": "churn_storm",
    "storm_recovery": "churn_storm",
    "gossip_compare": "gossip_search",
    "gossip_faulty": "gossip_search",
    "freshness_grid": "cache_freshness",
    "freshness_recovery": "cache_freshness",
}

#: Exit codes beyond 0/1: quarantines happened (sweep completed but some
#: trials failed every retry) and interrupted-but-resumable.
EXIT_QUARANTINED = 3
EXIT_INTERRUPTED = 130


def resolve_suites(only: List[str] | None) -> List[str]:
    """Map ``--only`` tokens (ids or suite names) to a suite list.

    Raises:
        SystemExit: on an unknown token (argparse-style error).
    """
    if not only:
        return list(SUITES)
    picked: List[str] = []
    for token in only:
        if token in SUITES:
            suite = token
        elif token in EXPERIMENT_SUITE:
            suite = EXPERIMENT_SUITE[token]
        else:
            known = sorted(set(SUITES) | set(EXPERIMENT_SUITE))
            raise SystemExit(f"unknown experiment {token!r}; known: {known}")
        if suite not in picked:
            picked.append(suite)
    return picked


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (shared with tests)."""
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures."
    )
    parser.add_argument(
        "--profile",
        default="quick",
        choices=sorted(PROFILES),
        help="scale profile (default: quick)",
    )
    parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        metavar="ID",
        help="experiment ids or suite names to run (default: everything)",
    )
    parser.add_argument(
        "--suite",
        action="append",
        default=None,
        metavar="NAME",
        help="suite to run (repeatable; alias for --only NAME)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="also write the rendered results to this file",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help=(
            "run each configuration's trials on N worker processes "
            "(0 = one per CPU, default: 1 = serial); results are "
            "byte-identical to a serial run — seeds derive per trial "
            "before dispatch and reports return in trial order"
        ),
    )
    parser.add_argument(
        "--supervise",
        action="store_true",
        help=(
            "run trials under the supervisor: retry crashed/hung workers, "
            "quarantine trials that fail every attempt, checkpoint each "
            "completed trial to the journal, and drain gracefully on "
            "SIGINT (results stay byte-identical to an unsupervised run)"
        ),
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="DIR",
        help=(
            "resume an interrupted --supervise run from its checkpoint "
            "directory: verify the journal against the partial manifest, "
            "re-run only missing/failed trials (implies --supervise)"
        ),
    )
    parser.add_argument(
        "--checkpoint-dir",
        default="supervise.d",
        metavar="DIR",
        help=(
            "where --supervise keeps its journal and partial manifest "
            "(default: supervise.d; ignored when --resume names a dir)"
        ),
    )
    parser.add_argument(
        "--trial-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "supervised watchdog: kill and retry any trial attempt that "
            "produces no result within SECONDS (default: no watchdog)"
        ),
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        metavar="N",
        help=(
            "supervised retry budget: failed attempts tolerated per "
            "trial before it is quarantined (default: 3)"
        ),
    )
    parser.add_argument(
        "--profile-report",
        action="store_true",
        help=(
            "append a per-suite profiling table (wall seconds, engine "
            "events/s, simulated-seconds/s) to the output"
        ),
    )
    parser.add_argument(
        "--manifest",
        default="manifest.json",
        metavar="PATH",
        help=(
            "write a reproducibility manifest (params, fault plans, "
            "derived seeds, per-trial trace digests, package version) to "
            "PATH (default: manifest.json); verify it later with "
            "'python -m repro.observe.manifest PATH'"
        ),
    )
    parser.add_argument(
        "--no-manifest",
        action="store_true",
        help="skip writing the manifest (also skips per-trial trace hashing)",
    )
    return parser


def main(argv: List[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.workers < 0:
        parser.error(f"--workers must be >= 0, got {args.workers}")
    if args.max_attempts < 1:
        parser.error(f"--max-attempts must be >= 1, got {args.max_attempts}")

    profile = get_profile(args.profile)
    tokens = (args.only or []) + (args.suite or [])
    suites = resolve_suites(tokens or None)

    supervise = args.supervise or args.resume is not None
    checkpoint_dir = args.resume or args.checkpoint_dir
    supervised: Optional[SupervisedTrialExecutor] = None
    if supervise:
        os.makedirs(checkpoint_dir, exist_ok=True)
        resuming = args.resume is not None
        supervised = SupervisedTrialExecutor(
            workers=args.workers,
            trial_timeout=args.trial_timeout,
            max_attempts=args.max_attempts,
            journal=os.path.join(checkpoint_dir, JOURNAL_FILENAME),
            resume=resuming,
        )
        if resuming:
            partial = os.path.join(checkpoint_dir, PARTIAL_MANIFEST_FILENAME)
            if os.path.exists(partial):
                problems = verify_journal_against_manifest(
                    supervised.journal, load_manifest(partial)
                )
                if problems:
                    for problem in problems:
                        print(problem, file=sys.stderr)
                    print(
                        "refusing to resume: journal contradicts the "
                        "partial manifest",
                        file=sys.stderr,
                    )
                    supervised.close()
                    return 2
            print(
                f"resuming from {checkpoint_dir}: "
                f"{len(supervised.journal)} trial(s) already journaled"
            )

    blocks: List[str] = [
        f"GUESS reproduction — profile={profile.name} "
        f"(duration={profile.duration:.0f}s, warmup={profile.warmup:.0f}s, "
        f"trials={profile.trials}, workers={args.workers})"
    ]
    recorder = None if args.no_manifest else ManifestRecorder()
    profiler = Profiler() if args.profile_report else None
    timings: List[tuple] = []
    interrupted = False
    started = time.time()  # repro: allow-wallclock (reporting-only timing)
    with ExitStack() as stack:
        if recorder is not None:
            stack.enter_context(manifest_activated(recorder))
        if profiler is not None:
            stack.enter_context(profiler_activated(profiler))
        if supervised is not None:
            stack.callback(supervised.close)
            # Graceful SIGINT: first ^C drains in-flight trials (each is
            # journaled as it lands) and flushes partial outputs; a
            # second ^C aborts hard through the default KeyboardInterrupt
            # path.  Restored on exit from the stack.
            previous = signal.getsignal(signal.SIGINT)

            def _on_sigint(signum, frame):
                if supervised.stop_requested:
                    raise KeyboardInterrupt
                supervised.request_stop()
                print(
                    "\nSIGINT: draining in-flight trials, flushing the "
                    "journal (^C again to abort hard)",
                    file=sys.stderr,
                )

            signal.signal(signal.SIGINT, _on_sigint)
            stack.callback(signal.signal, signal.SIGINT, previous)
        for suite_name in suites:
            if supervised is not None and supervised.stop_requested:
                interrupted = True
                break
            suite_started = time.time()  # repro: allow-wallclock
            phase = (
                profiler.phase(suite_name)
                if profiler is not None
                else nullcontext()
            )
            try:
                with phase:
                    results: List[ExperimentResult] = SUITES[suite_name](
                        profile, workers=args.workers, executor=supervised
                    )
            except SweepInterrupted:
                interrupted = True
                elapsed = time.time() - suite_started  # repro: allow-wallclock
                timings.append((suite_name, elapsed))
                blocks.append(
                    f"-- suite {suite_name} interrupted after "
                    f"{elapsed:.1f}s (completed trials journaled) --"
                )
                break
            elapsed = time.time() - suite_started  # repro: allow-wallclock
            timings.append((suite_name, elapsed))
            blocks.append(f"-- suite {suite_name} ({elapsed:.1f}s) --")
            for result in results:
                blocks.append(result.render())
    total = time.time() - started  # repro: allow-wallclock
    summary = ["-- wall-clock summary --"]
    for suite_name, elapsed in timings:
        share = 100.0 * elapsed / total if total > 0 else 0.0
        summary.append(f"{suite_name:<20} {elapsed:9.1f}s  ({share:4.1f}%)")
    summary.append(
        f"{'total wall time':<20} {total:9.1f}s  (workers={args.workers})"
    )
    blocks.append("\n".join(summary))
    if profiler is not None:
        blocks.append(profiler.render())
    if supervised is not None and supervised.failures:
        quarantine = ["-- quarantined trials --"]
        quarantine.extend(str(failure) for failure in supervised.failures)
        quarantine.append("(quarantined trials are re-run on --resume)")
        blocks.append("\n".join(quarantine))
    if interrupted:
        blocks.append(
            "** interrupted — resume with: python -m "
            f"repro.experiments.run_all --resume {checkpoint_dir} "
            "(plus your original flags) **"
        )

    text = "\n\n".join(blocks)
    print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    if recorder is not None:
        manifest = recorder.build(
            profile=profile.name,
            suites=suites,
            workers=args.workers,
            wall_clock_seconds=total,
            command=["python", "-m", "repro.experiments.run_all"]
            + list(argv if argv is not None else sys.argv[1:]),
        )
        if interrupted:
            partial = os.path.join(checkpoint_dir, PARTIAL_MANIFEST_FILENAME)
            write_manifest(partial, manifest)
            print(f"partial manifest written to {partial}")
        else:
            write_manifest(args.manifest, manifest)
            print(f"manifest written to {args.manifest}")
    if interrupted:
        return EXIT_INTERRUPTED
    if supervised is not None and supervised.failures:
        return EXIT_QUARANTINED
    return 0


if __name__ == "__main__":
    sys.exit(main())
