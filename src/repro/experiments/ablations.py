"""Ablation experiments for design choices beyond the paper's figures.

These quantify the extension mechanisms (DESIGN.md §5) with the same
harness as the paper artifacts:

* ``ablation-parallel`` — fixed k-parallel probing: probes vs response
  time as k grows (§6.2's arithmetic, measured).
* ``ablation-backoff`` — the ``DoBackoff`` flag under tight capacity.
* ``ablation-adaptive-search`` — serial vs fixed-k vs adaptive
  escalation on a static network.
* ``ablation-detection`` — pong-provenance defense vs the colluding
  attack that defeats MR.
"""

from __future__ import annotations

import random
from typing import List

from repro.baselines.extent import PopulationView
from repro.core.entry import CacheEntry
from repro.core.params import BadPongBehavior, ProtocolParams, SystemParams
from repro.core.search import execute_query
from repro.experiments.executor import TrialExecutor, get_executor
from repro.experiments.profiles import Profile
from repro.experiments.runner import (
    ExperimentResult,
    averaged,
    run_guess_config,
)
from repro.extensions.adaptive_search import execute_adaptive_query
from repro.extensions.detection import DefenseConfig, install_defense
from repro.metrics.summary import mean, quantile
from repro.network.transport import Transport

#: Walker counts swept by the parallel ablation.
PARALLEL_WALKERS = (1, 2, 5, 10)


def run_parallel_ablation(
    profile: Profile, executor: TrialExecutor | None = None
) -> ExperimentResult:
    """Fixed-k parallel probing: probes vs response time."""
    rows = []
    for k in PARALLEL_WALKERS:
        reports = run_guess_config(
            SystemParams(network_size=profile.reference_size),
            ProtocolParams(parallel_probes=k),
            duration=profile.duration,
            warmup=profile.warmup,
            trials=profile.trials,
            base_seed=0xAB1,
            executor=executor,
        )
        rows.append(
            (
                k,
                averaged(reports, "probes_per_query"),
                averaged(reports, "unsatisfied_rate"),
                mean([
                    r.mean_response_time
                    for r in reports
                    if r.mean_response_time is not None
                ]),
            )
        )
    return ExperimentResult(
        experiment_id="ablation-parallel",
        title="k-parallel probing: probes vs response time",
        columns=("k", "Probes/Query", "Unsatisfied", "MeanResponse(s)"),
        rows=tuple(rows),
        notes="probes grow by <= ~k-1; response time shrinks ~k-fold",
    )


def run_backoff_ablation(
    profile: Profile, executor: TrialExecutor | None = None
) -> ExperimentResult:
    """The DoBackoff flag under tight capacity and the MR stack."""
    rows = []
    for do_backoff in (False, True):
        protocol = ProtocolParams.all_same_policy("MR", do_backoff=do_backoff)
        reports = run_guess_config(
            SystemParams(
                network_size=profile.reference_size,
                max_probes_per_second=2,
            ),
            protocol,
            duration=profile.duration,
            warmup=profile.warmup,
            trials=profile.trials,
            base_seed=0xAB2,
            executor=executor,
        )
        rows.append(
            (
                do_backoff,
                averaged(reports, "probes_per_query"),
                averaged(reports, "refused_probes_per_query"),
                averaged(reports, "unsatisfied_rate"),
            )
        )
    return ExperimentResult(
        experiment_id="ablation-backoff",
        title="DoBackoff under tight capacity (MR policies)",
        columns=("DoBackoff", "Probes/Query", "Refused/Query", "Unsatisfied"),
        rows=tuple(rows),
        notes=(
            "evict-on-refusal (DoBackoff=No) sheds hotspot load; keeping "
            "entries (Yes) re-probes overloaded peers"
        ),
    )


def _build_static_network(n: int, seed: int):
    """A static (no churn) network whose content follows the workload."""
    rng = random.Random(seed)
    view = PopulationView.synthesize(n, rng)
    protocol = ProtocolParams(cache_size=n, probe_spacing=0.2)
    transport = Transport()

    # Local import avoids a cycle: the test helpers build peers the same
    # way, but the library needs its own constructor here.
    from repro.core.peer import GuessPeer
    from repro.core.policies import PolicySet

    def build_peer(address, library, num_files):
        return GuessPeer(
            address,
            num_files=num_files,
            library=library,
            birth_time=0.0,
            death_time=1e12,
            protocol=protocol,
            policies=PolicySet.from_protocol(protocol),
            max_probes_per_second=None,
            policy_rng=random.Random(address),
            intro_rng=random.Random(address + 1),
        )

    querier = build_peer(0, frozenset(), 0)
    transport.register(0, querier)
    for index, library in enumerate(view.libraries, start=1):
        peer = build_peer(index, library, len(library))
        transport.register(index, peer)
        querier.link_cache.insert(
            CacheEntry(address=index, num_files=len(library)),
            querier.policies.replacement, 0.0, querier._policy_rng,
        )
    targets = view.draw_query_targets(rng, 150)
    return querier, transport, targets


def run_adaptive_search_ablation(profile: Profile) -> ExperimentResult:
    """Serial vs fixed-k vs adaptive probing on a static network."""
    querier, transport, targets = _build_static_network(
        profile.reference_size, seed=0xADA
    )
    rng = random.Random(1)

    def fixed_k(target, now):
        original = querier.protocol
        querier.protocol = original.with_(parallel_probes=10)
        try:
            return execute_query(querier, target, transport, now, rng=rng)
        finally:
            querier.protocol = original

    modes = {
        "serial (k=1)": lambda target, now: execute_query(
            querier, target, transport, now, rng=rng
        ),
        "fixed k=10": fixed_k,
        "adaptive": lambda target, now: execute_adaptive_query(
            querier, target, transport, now, rng=rng,
            initial_walkers=1, escalation_period=3, max_walkers=32,
        ),
    }

    rows = []
    now = 0.0
    for label, run_one in modes.items():
        probes: List[float] = []
        responses: List[float] = []
        for target in targets:
            result = run_one(target, now)
            now += max(result.duration, 1.0)
            probes.append(float(result.probes))
            if result.response_time is not None:
                responses.append(result.response_time)
        rows.append(
            (
                label,
                mean(probes),
                mean(responses) if responses else 0.0,
                quantile(responses, 0.95) if responses else 0.0,
            )
        )
    return ExperimentResult(
        experiment_id="ablation-adaptive-search",
        title="Probing discipline: probes vs response time (static network)",
        columns=("Mode", "Probes/Query", "MeanResponse(s)", "p95Response(s)"),
        rows=tuple(rows),
        notes=(
            "adaptive ~matches serial probe cost on popular items while "
            "cutting tail response time toward the fixed-k level"
        ),
    )


def run_detection_ablation(profile: Profile) -> ExperimentResult:
    """Pong-provenance defense vs the colluding attack (MR stack)."""
    rows = []
    for defended in (False, True):

        def mutate(sim, defended=defended):
            if defended:
                install_defense(sim, DefenseConfig(min_observations=5))

        reports = run_guess_config(
            SystemParams(
                network_size=300,
                percent_bad_peers=20.0,
                bad_pong_behavior=BadPongBehavior.BAD,
            ),
            ProtocolParams.all_same_policy("MR", cache_size=30),
            # Poisoning accumulates over time; a fixed 700s exposure
            # shows the collapse regardless of the profile's duration.
            duration=700.0,
            warmup=200.0,
            trials=profile.trials,
            base_seed=0xDEF,
            mutate=mutate,
        )
        rows.append(
            (
                defended,
                mean([r.probes_per_query for r in reports]),
                mean([r.unsatisfied_rate for r in reports]),
                mean([r.mean_good_entries for r in reports]),
            )
        )
    return ExperimentResult(
        experiment_id="ablation-detection",
        title="Pong-provenance defense vs 20% colluding attackers (MR stack)",
        columns=("Defended", "Probes/Query", "Unsatisfied", "Good entries"),
        rows=tuple(rows),
        notes="defense restores most of the satisfaction MR loses to collusion",
    )


def run_selfish_ablation(profile: Profile) -> ExperimentResult:
    """Selfish minority with/without probe payments (§3.3).

    Three scenarios: no selfish peers; 20% selfish with unlimited
    probing; 20% selfish paying per probe from a token-bucket budget.
    The honest columns come from the base report (selfish queries are
    accounted separately), so the damage to protocol-abiding peers is
    read straight off.
    """
    from repro.extensions.selfish import ProbeBudget
    from repro.extensions.selfish_sim import SelfishGuessSimulation
    from repro.sim.rng import derive_seed

    scenarios = (
        ("honest network", 0.0, None),
        ("20% selfish, free probes", 20.0, None),
        (
            "20% selfish, paying",
            20.0,
            lambda: ProbeBudget(refill_rate=0.2, capacity=30),
        ),
    )
    rows = []
    for label, percent, budget_factory in scenarios:
        sim = SelfishGuessSimulation(
            SystemParams(
                network_size=profile.reference_size,
                max_probes_per_second=20,
            ),
            ProtocolParams(cache_size=50),
            seed=derive_seed(0x5E1F, label),
            warmup=profile.warmup,
            percent_selfish=percent,
            budget_factory=budget_factory,
        )
        sim.run(profile.warmup + profile.duration)
        honest = sim.report()
        selfish = sim.selfish_report()
        rows.append(
            (
                label,
                honest.unsatisfied_rate,
                honest.refused_probes_per_query,
                selfish.probes_per_query,
                (
                    selfish.mean_response_time
                    if selfish.mean_response_time is not None
                    else 0.0
                ),
            )
        )
    return ExperimentResult(
        experiment_id="ablation-selfish",
        title="Selfish peers vs probe payments (honest-peer impact)",
        columns=(
            "Scenario",
            "Honest unsat",
            "Honest refused/query",
            "Selfish probes/query",
            "Selfish response(s)",
        ),
        rows=tuple(rows),
        notes=(
            "free-probing cheats blast orders of magnitude more probes and "
            "push refusals onto honest peers; payments cap the blast"
        ),
    )


#: PongSize values swept by the pong-size ablation.
PONG_SIZES = (0, 1, 5, 10)

#: IntroProb values swept by the introduction ablation.
INTRO_PROBS = (0.0, 0.1, 0.5)


def run_pong_size_ablation(
    profile: Profile, executor: TrialExecutor | None = None
) -> ExperimentResult:
    """PongSize: how much entry-sharing does search need?

    PongSize drives both the query cache (how far one query can chain
    beyond the link cache) and maintenance gossip.  The paper fixes it
    at 5; this ablation shows the cliff at 0 (no sharing: a query is
    limited to the link cache, so satisfaction drops) and the
    diminishing returns beyond a handful of entries.
    """
    rows = []
    for pong_size in PONG_SIZES:
        reports = run_guess_config(
            SystemParams(network_size=profile.reference_size),
            ProtocolParams(pong_size=pong_size),
            duration=profile.duration,
            warmup=profile.warmup,
            trials=profile.trials,
            base_seed=0xAB3 + pong_size,
            executor=executor,
        )
        rows.append(
            (
                pong_size,
                averaged(reports, "probes_per_query"),
                averaged(reports, "unsatisfied_rate"),
                averaged(reports, "mean_fraction_live"),
            )
        )
    return ExperimentResult(
        experiment_id="ablation-pongsize",
        title="PongSize: entry sharing vs search reach",
        columns=("PongSize", "Probes/Query", "Unsatisfied", "FractionLive"),
        rows=tuple(rows),
        notes=(
            "PongSize 0 cripples satisfaction (no query-cache chaining); "
            "returns diminish past a handful of shared entries"
        ),
    )


def run_intro_prob_ablation(
    profile: Profile, executor: TrialExecutor | None = None
) -> ExperimentResult:
    """IntroProb: how much introduction does the network need?

    Introduction is how newcomers enter other peers' caches (§2.2).
    The paper fixes the probability at 0.1 and warns that 1.0 would be
    a poisoning hazard; this ablation measures the search-side effect
    of turning it off or up.
    """
    rows = []
    for intro_prob in INTRO_PROBS:
        reports = run_guess_config(
            SystemParams(
                network_size=profile.reference_size,
                lifespan_multiplier=0.3,  # churn makes introduction matter
            ),
            ProtocolParams(intro_prob=intro_prob),
            duration=profile.duration,
            warmup=profile.warmup,
            trials=profile.trials,
            base_seed=0xAB4 + int(intro_prob * 100),
            executor=executor,
        )
        rows.append(
            (
                intro_prob,
                averaged(reports, "probes_per_query"),
                averaged(reports, "unsatisfied_rate"),
                averaged(reports, "mean_cache_fill"),
            )
        )
    return ExperimentResult(
        experiment_id="ablation-introprob",
        title="IntroProb: introduction rate vs cache population under churn",
        columns=("IntroProb", "Probes/Query", "Unsatisfied", "CacheFill"),
        rows=tuple(rows),
        notes=(
            "introduction keeps caches populated under churn; the network "
            "functions across the sweep (pong sharing is the main channel)"
        ),
    )


def run_suite(
    profile: Profile,
    workers: int = 1,
    executor: TrialExecutor | None = None,
) -> List[ExperimentResult]:
    """All seven ablations.

    The adaptive-search, detection, and selfish ablations instrument live
    simulation objects (mutate hooks / bespoke drivers), so they always
    run in-process; the other four fan their trials out over ``workers``
    — or over an explicit ``executor`` (e.g. the supervised executor
    shared by ``run_all --supervise``), which overrides ``workers`` and
    stays open for the caller to close.
    """
    if executor is None:
        with get_executor(workers) as owned:
            return run_suite(profile, executor=owned)
    return [
        run_parallel_ablation(profile, executor),
        run_backoff_ablation(profile, executor),
        run_adaptive_search_ablation(profile),
        run_detection_ablation(profile),
        run_selfish_ablation(profile),
        run_pong_size_ablation(profile, executor),
        run_intro_prob_ablation(profile, executor),
    ]
