"""Churn-storm resilience suite (beyond the paper).

The paper models *independent* peer churn: lifetimes are drawn per peer,
so departures are uncorrelated and the link cache heals continuously.
Real overlays also see *correlated* failures — a provider outage takes
out a large slice of the network at once, and the survivors are hit by a
flash crowd of queries at the exact moment their caches are full of dead
entries.  This suite composes both (:class:`~repro.resilience.ChurnStorm`
plus :class:`~repro.resilience.FlashCrowd`) and measures how much the
resilience layer — per-entry circuit breakers, per-peer retry budgets,
and graded ping shedding — buys back:

* ``storm_grid`` — storm fraction × {mechanisms off, on}: satisfaction,
  results/query, the eviction split (refusal- vs dead-driven), breaker
  suppressions, denied retries, shed pings, and time-to-recovery.
* ``storm_recovery`` — time-to-recovery vs storm fraction, one curve per
  mechanisms setting.

Time-to-recovery derives from the collector's windowed satisfaction
channel: the pre-storm windows pool into a baseline rate and recovery is
the first post-storm window (with enough queries to be meaningful) whose
rate is back within 90% of that baseline.

Both cells of a pair share one base seed, so the storm kills the same
peers and the crowd re-times the same queries: the delta between the
mechanisms-off and mechanisms-on rows is the resilience layer's doing
alone (scenario draws live on ``scenario:*`` RNG substreams and the
mechanisms themselves draw no RNG at all).

Run via ``python -m repro.experiments.run_all --suite churn_storm`` or
directly::

    python -m repro.experiments.churn_storm --profile smoke --workers 2

The module CLI's ``--verify-parallel`` flag re-runs the suite serially
and on a process pool and fails unless the rendered reports are
byte-identical — the resilience subsystem's serial-vs-parallel
determinism check used by the ``storm-smoke`` CI job.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Tuple

from repro.core.params import ProtocolParams, SystemParams
from repro.errors import TrialFailure
from repro.experiments.executor import TrialExecutor, get_executor
from repro.experiments.profiles import PROFILES, Profile, get_profile
from repro.experiments.runner import (
    ExperimentResult,
    averaged,
    run_guess_config,
)
from repro.metrics.summary import mean
from repro.resilience import (
    ChurnStorm,
    FlashCrowd,
    ResiliencePolicy,
    ScenarioPlan,
    baseline_rate,
    time_to_recovery,
)
from repro.resilience.recovery import to_windows

#: Fraction of the live population the storm removes (0 would be a noop).
STORM_FRACTIONS: Tuple[float, ...] = (0.3, 0.5)

#: Query-arrival multiplier during the flash crowd that rides the storm.
CROWD_MULTIPLIER = 5.0

#: Seconds over which the storm's departures spread.
STORM_WIDTH = 20.0

#: Width of the windowed satisfaction channel feeding time-to-recovery.
SATISFACTION_WINDOW = 25.0

#: Recovered = windowed satisfaction back within this much of baseline.
RECOVERY_THRESHOLD = 0.9

#: Windows with fewer queries than this are too sparse to call recovery.
MIN_WINDOW_QUERIES = 5

#: Distinct from the other suites: storm cells are not anchored to any
#: paper figure, so the seed just has to be shared across the grid.
BASE_SEED = 0xC0B

#: A deliberately stressed configuration: a modest per-peer probe window
#: so the flash crowd actually saturates survivors, retries enabled so
#: the retry budget has something to cap, and do_backoff off so refusal
#: evictions (the breaker's counterfactual) are visible.
PROTOCOL = ProtocolParams(cache_size=30, probe_retries=2, do_backoff=False)
MAX_PROBES_PER_SECOND = 4


def storm_plan(profile: Profile, fraction: float) -> ScenarioPlan:
    """The suite's scenario: one storm with a flash crowd riding it.

    The storm lands 30% of the way into the measured window and the
    crowd persists from the storm's onset to the end of the run, so the
    recovery has to happen *under* elevated load.
    """
    start = profile.warmup + 0.3 * profile.duration
    return ScenarioPlan(
        storms=(
            ChurnStorm(start=start, width=STORM_WIDTH, fraction=fraction),
        ),
        crowds=(
            FlashCrowd(
                start=start,
                end=profile.total_time,
                multiplier=CROWD_MULTIPLIER,
            ),
        ),
    )


def _recovery_seconds(report, plan: ScenarioPlan) -> float:
    """Time-to-recovery for one trial (inf when it never recovers)."""
    storm = plan.storms[0]
    windows = to_windows(report.satisfaction_windows)
    baseline = baseline_rate(windows, before=storm.start)
    return time_to_recovery(
        windows,
        after=storm.start + storm.width,
        baseline=baseline,
        threshold=RECOVERY_THRESHOLD,
        min_queries=MIN_WINDOW_QUERIES,
    )


def _measure_cell(
    profile: Profile,
    fraction: float,
    armed: bool,
    executor: TrialExecutor | None = None,
    scheduler: str = "heap",
) -> Dict[str, float]:
    """Run one (storm fraction, mechanisms) cell and fold its metrics."""
    plan = storm_plan(profile, fraction)
    reports = run_guess_config(
        SystemParams(
            network_size=profile.network_sizes[0],
            max_probes_per_second=MAX_PROBES_PER_SECOND,
        ),
        PROTOCOL,
        duration=profile.duration,
        warmup=profile.warmup,
        trials=profile.trials,
        base_seed=BASE_SEED,
        scenarios=plan,
        resilience=ResiliencePolicy.all_on() if armed else None,
        satisfaction_window=SATISFACTION_WINDOW,
        executor=executor,
        scheduler=scheduler,
    )
    recoveries = [
        _recovery_seconds(report, plan)
        for report in reports
        if not isinstance(report, TrialFailure)
    ]
    return {
        "satisfied": averaged(reports, "satisfaction_rate"),
        "results": averaged(reports, "results_per_query"),
        "refusal_evict": averaged(reports, "refusal_evictions"),
        "dead_evict": averaged(reports, "dead_evictions"),
        "suppressed": averaged(reports, "suppressed_probes"),
        "denied": averaged(reports, "retries_denied"),
        "shed": averaged(reports, "pings_shed"),
        "recovery": mean(recoveries),
    }


def _sweep(
    profile: Profile,
    executor: TrialExecutor | None = None,
    scheduler: str = "heap",
) -> Dict[Tuple[float, bool], Dict[str, float]]:
    """The fraction × mechanisms grid, cells in deterministic order."""
    return {
        (fraction, armed): _measure_cell(
            profile, fraction, armed, executor, scheduler
        )
        for armed in (False, True)
        for fraction in STORM_FRACTIONS
    }


def run_storm_grid(
    profile: Profile,
    executor: TrialExecutor | None = None,
    scheduler: str = "heap",
) -> List[ExperimentResult]:
    """Both results from one grid sweep (the cells are shared)."""
    cells = _sweep(profile, executor, scheduler)
    rows = tuple(
        (
            fraction,
            "on" if armed else "off",
            cell["satisfied"],
            cell["results"],
            cell["refusal_evict"],
            cell["dead_evict"],
            cell["suppressed"],
            cell["denied"],
            cell["shed"],
            cell["recovery"],
        )
        for (fraction, armed), cell in cells.items()
    )
    grid = ExperimentResult(
        experiment_id="storm_grid",
        title="GUESS under churn storms: storm fraction × resilience",
        columns=(
            "Fraction",
            "Mechanisms",
            "Satisfied",
            "Results/Query",
            "RefusalEvict",
            "DeadEvict",
            "Suppressed",
            "Denied",
            "Shed",
            "Recovery(s)",
        ),
        rows=rows,
        notes=(
            "the storm craters windowed satisfaction; breakers convert "
            "refusal evictions into suppressions, budgets cap retry "
            "amplification, shedding keeps query capacity — together "
            "they shorten time-to-recovery"
        ),
    )
    recovery = ExperimentResult(
        experiment_id="storm_recovery",
        title="Time-to-recovery vs storm fraction, per mechanisms setting",
        series={
            f"mechanisms={'on' if armed else 'off'}": [
                (fraction, cells[(fraction, armed)]["recovery"])
                for fraction in STORM_FRACTIONS
            ]
            for armed in (False, True)
        },
        x_label="storm fraction",
        notes=(
            "recovery takes longer the larger the storm; the resilience "
            "layer flattens the curve"
        ),
    )
    return [grid, recovery]


def run_suite(
    profile: Profile,
    workers: int = 1,
    executor: TrialExecutor | None = None,
    scheduler: str = "heap",
) -> List[ExperimentResult]:
    """``storm_grid`` and ``storm_recovery``.

    An explicit ``executor`` (e.g. the supervised executor shared by
    ``run_all --supervise``) overrides ``workers`` and stays open for
    the caller to close.  ``scheduler`` picks the engine event queue
    per trial ("heap" or "wheel"); results are identical either way.
    """
    if executor is None:
        with get_executor(workers) as owned:
            return run_suite(profile, executor=owned, scheduler=scheduler)
    return run_storm_grid(profile, executor, scheduler)


def _render(results: List[ExperimentResult]) -> str:
    return "\n\n".join(result.render() for result in results)


def main(argv: List[str] | None = None) -> int:
    """Module CLI; see the module docstring.  Returns an exit code."""
    parser = argparse.ArgumentParser(
        description="Run the churn-storm resilience suite."
    )
    parser.add_argument(
        "--profile",
        default="smoke",
        choices=sorted(PROFILES),
        help="scale profile (default: smoke)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="trial-level parallelism (0 = one per CPU, default: serial)",
    )
    parser.add_argument(
        "--verify-parallel",
        action="store_true",
        help=(
            "run the suite serially AND on --workers processes and fail "
            "unless the rendered reports are byte-identical"
        ),
    )
    parser.add_argument(
        "--scheduler",
        default="heap",
        choices=("heap", "wheel"),
        help=(
            "engine event queue per trial (default: heap); the wheel is "
            "faster at scale and fires events in exactly the same order"
        ),
    )
    parser.add_argument(
        "--output",
        default=None,
        help="also write the rendered results to this file",
    )
    args = parser.parse_args(argv)
    if args.workers < 0:
        parser.error(f"--workers must be >= 0, got {args.workers}")
    profile = get_profile(args.profile)

    if args.verify_parallel:
        if args.workers == 1:
            parser.error("--verify-parallel needs --workers N (N != 1)")
        serial = _render(run_suite(profile, workers=1, scheduler=args.scheduler))
        parallel = _render(
            run_suite(profile, workers=args.workers, scheduler=args.scheduler)
        )
        if serial != parallel:
            print("FAIL: serial and parallel reports differ", file=sys.stderr)
            return 1
        print(f"serial == workers={args.workers}: reports byte-identical")
        text = serial
    else:
        text = _render(
            run_suite(profile, workers=args.workers, scheduler=args.scheduler)
        )

    print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
