"""Basic policy comparison: Figures 9-12 (paper §6.2).

One policy type is varied at a time, everything else held at the Table
1/2 defaults (all other policies Random; PingProbe/PingPong stay Random
throughout, as the paper fixes them).

Expected shapes:

* Figure 9 (QueryProbe) — modest effect (≤ ~25% cost change).
* Figure 10 (QueryPong) — large effect: MFS cuts probes/query by ~4x;
  MR close behind.
* Figure 11 (CacheReplacement) — largest effect: LFS cuts cost >5x;
  MRU eviction is pathological (floods the cache with stale entries →
  dead probes dominate).
* Figure 12 (QueryPong, unsatisfaction) — all policies land in the
  6-14% band; the ~6% floor is queries for items nobody holds.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.params import ProtocolParams, SystemParams
from repro.experiments.executor import TrialExecutor, get_executor
from repro.experiments.profiles import Profile
from repro.experiments.runner import (
    ExperimentResult,
    averaged,
    run_guess_config,
)

ORDERING_POLICIES = ("Random", "MRU", "LRU", "MFS", "MR")
REPLACEMENT_POLICIES = ("Random", "LRU", "MRU", "LFS", "LR")


def _measure(
    profile: Profile,
    protocol: ProtocolParams,
    base_seed: int,
    executor: TrialExecutor | None = None,
) -> Dict[str, float]:
    reports = run_guess_config(
        SystemParams(network_size=profile.reference_size),
        protocol,
        duration=profile.duration,
        warmup=profile.warmup,
        trials=profile.trials,
        base_seed=base_seed,
        executor=executor,
    )
    return {
        "good": averaged(reports, "good_probes_per_query"),
        "dead": averaged(reports, "dead_probes_per_query"),
        "total": averaged(reports, "probes_per_query"),
        "unsat": averaged(reports, "unsatisfied_rate"),
    }


def _policy_sweep(
    profile: Profile,
    role: str,
    policies: Tuple[str, ...],
    seed_salt: int,
    executor: TrialExecutor | None = None,
) -> Dict[str, Dict[str, float]]:
    """Measure one protocol role across its policy menu."""
    results: Dict[str, Dict[str, float]] = {}
    for index, policy in enumerate(policies):
        protocol = ProtocolParams(**{role: policy})
        results[policy] = _measure(
            profile, protocol, base_seed=seed_salt + index, executor=executor
        )
    return results


def _probe_breakdown_result(
    experiment_id: str,
    title: str,
    results: Dict[str, Dict[str, float]],
    notes: str,
) -> ExperimentResult:
    rows = tuple(
        (policy, cell["good"], cell["dead"], cell["total"])
        for policy, cell in results.items()
    )
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        columns=("Policy", "Good Probes/Query", "DeadIPs/Query", "Total"),
        rows=rows,
        notes=notes,
    )


def run_fig9(
    profile: Profile, executor: TrialExecutor | None = None
) -> ExperimentResult:
    """Figure 9: probes/query for each QueryProbe policy."""
    results = _policy_sweep(
        profile, "query_probe", ORDERING_POLICIES, 0x909, executor
    )
    return _probe_breakdown_result(
        "fig9",
        "Probes/Query for different QueryProbe policies",
        results,
        "QueryProbe changes cost by at most ~25%; smallest lever of the three",
    )


def run_fig10_12(
    profile: Profile, executor: TrialExecutor | None = None
) -> List[ExperimentResult]:
    """Figures 10 and 12 share the QueryPong sweep."""
    results = _policy_sweep(
        profile, "query_pong", ORDERING_POLICIES, 0xA10, executor
    )
    fig10 = _probe_breakdown_result(
        "fig10",
        "Probes/Query for different QueryPong policies",
        results,
        "MFS cuts cost ~4x vs Random; MR close behind",
    )
    fig12 = ExperimentResult(
        experiment_id="fig12",
        title="Percentage of queries not satisfied, per QueryPong policy",
        columns=("Policy", "Unsatisfied"),
        rows=tuple(
            (policy, cell["unsat"]) for policy, cell in results.items()
        ),
        notes="all policies within ~6-14%; ~6% is the no-owner floor",
    )
    return [fig10, fig12]


def run_fig10(profile: Profile) -> ExperimentResult:
    """Figure 10 alone (shares a sweep with Figure 12 via run_fig10_12)."""
    return run_fig10_12(profile)[0]


def run_fig12(profile: Profile) -> ExperimentResult:
    """Figure 12 alone (shares a sweep with Figure 10 via run_fig10_12)."""
    return run_fig10_12(profile)[1]


def run_fig11(
    profile: Profile, executor: TrialExecutor | None = None
) -> ExperimentResult:
    """Figure 11: probes/query for each CacheReplacement policy."""
    results = _policy_sweep(
        profile, "cache_replacement", REPLACEMENT_POLICIES, 0xB11, executor
    )
    return _probe_breakdown_result(
        "fig11",
        "Probes/Query for different CacheReplacement policies",
        results,
        "LFS cuts cost >5x vs Random; MRU eviction floods caches with "
        "stale entries (dead probes dominate)",
    )


def run_suite(
    profile: Profile,
    workers: int = 1,
    executor: TrialExecutor | None = None,
) -> List[ExperimentResult]:
    """Figures 9, 10, 11, 12.

    An explicit ``executor`` (e.g. the supervised executor shared by
    ``run_all --supervise``) overrides ``workers`` and stays open for
    the caller to close.
    """
    if executor is None:
        with get_executor(workers) as owned:
            return run_suite(profile, executor=owned)
    fig10, fig12 = run_fig10_12(profile, executor)
    return [
        run_fig9(profile, executor),
        fig10,
        run_fig11(profile, executor),
        fig12,
    ]
