"""Flexible-extent comparison: Figure 8 (paper §6.2).

Plots the cost/quality tradeoff of three search-extent mechanisms over
the same content distribution:

* **Fixed extent (Gnutella)** — a curve: every query costs exactly E
  probes; unsatisfaction is the exact probability that none of E random
  peers owns the target, averaged over a query sample.
* **Iterative deepening** — one point: re-floods at a coarse extent
  schedule, costs accumulating across rounds.
* **GUESS** — two measured points from full protocol simulations: the
  Random baseline policy, and ``QueryPong = MFS``.

Expected shape: for a given unsatisfaction level GUESS costs over an
order of magnitude fewer probes than the fixed-extent mechanism, with
iterative deepening in between (paper: GUESS+MFS ≈ 17 probes at ~8%
unsat vs ~540 fixed-extent probes; GUESS Random ≈ 99 probes at ~6% vs
~1000).
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from repro.baselines.extent import PopulationView
from repro.baselines.gnutella import fixed_extent_tradeoff
from repro.baselines.iterative_deepening import IterativeDeepeningSearch
from repro.core.params import ProtocolParams, SystemParams
from repro.experiments.executor import TrialExecutor, get_executor
from repro.experiments.profiles import Profile
from repro.experiments.runner import (
    ExperimentResult,
    averaged,
    run_guess_config,
)


def _log_spaced_extents(max_extent: int, points: int = 24) -> List[int]:
    """Geometric extent grid from 1 to ``max_extent`` (deduplicated)."""
    if max_extent < 1:
        raise ValueError(f"max_extent must be >= 1, got {max_extent}")
    extents = {1, max_extent}
    value = 1.0
    growth = max_extent ** (1.0 / max(1, points - 1))
    for _ in range(points):
        extents.add(max(1, min(max_extent, int(round(value)))))
        value *= growth
    return sorted(extents)


def run_fig8(
    profile: Profile, executor: TrialExecutor | None = None
) -> ExperimentResult:
    """Figure 8: unsatisfaction vs average query cost for each mechanism."""
    n = profile.reference_size
    max_extent = min(profile.max_extent, n)
    rng = random.Random(0xF160_8)
    view = PopulationView.synthesize(n, rng)
    targets = view.draw_query_targets(rng, profile.baseline_queries)

    fixed_curve = fixed_extent_tradeoff(
        view, targets, _log_spaced_extents(max_extent)
    )
    fixed_series = [(float(extent), unsat) for extent, unsat in fixed_curve]

    schedule = tuple(
        e for e in (100, 250, 500, 1000) if e <= max_extent
    ) or (max_extent,)
    deepening = IterativeDeepeningSearch(view, schedule=schedule)
    itd_cost, itd_unsat = deepening.evaluate(targets, rng)

    guess_points: Dict[str, Tuple[float, float]] = {}
    for label, protocol in (
        ("GUESS Random", ProtocolParams()),
        ("GUESS QueryPong=MFS", ProtocolParams(query_pong="MFS")),
    ):
        reports = run_guess_config(
            SystemParams(network_size=n),
            protocol,
            duration=profile.duration,
            warmup=profile.warmup,
            trials=profile.trials,
            base_seed=0xF1608,
            executor=executor,
        )
        guess_points[label] = (
            averaged(reports, "probes_per_query"),
            averaged(reports, "unsatisfied_rate"),
        )

    series: Dict[str, Sequence[Tuple[float, float]]] = {
        "FixedExtent(Gnutella)": fixed_series,
        "IterativeDeepening": [(itd_cost, itd_unsat)],
    }
    for label, point in guess_points.items():
        series[label] = [point]

    rows = [
        ("IterativeDeepening", itd_cost, itd_unsat),
    ] + [
        (label, cost, unsat) for label, (cost, unsat) in guess_points.items()
    ]
    return ExperimentResult(
        experiment_id="fig8",
        title=(
            "For a given average query cost, unsatisfaction is lowest with "
            "the fine-grained flexible extent of GUESS"
        ),
        columns=("Mechanism", "Avg cost (probes)", "Unsatisfied"),
        rows=tuple(rows),
        series=series,
        x_label="Average query cost (probes)",
        notes=(
            "GUESS points sit far left of the fixed-extent curve at equal "
            "unsatisfaction (>10x cheaper); iterative deepening in between"
        ),
    )


def run_suite(
    profile: Profile,
    workers: int = 1,
    executor: TrialExecutor | None = None,
) -> List[ExperimentResult]:
    """Figure 8.

    An explicit ``executor`` (e.g. the supervised executor shared by
    ``run_all --supervise``) overrides ``workers`` and stays open for
    the caller to close.
    """
    if executor is None:
        with get_executor(workers) as owned:
            return run_suite(profile, executor=owned)
    return [run_fig8(profile, executor)]
