"""Fairness / load distribution: Figure 13 (paper §6.3).

Peers from one run are ranked by probes received over their lifetimes,
for four QueryProbe/CacheReplacement combinations.  Expected shape:

* MFS/LFS and MR/LR concentrate load on a few peers (steep head);
* Random/Random is much flatter — but its *total* probe volume is ~8x
  the MFS/LFS total, so fairness trades against efficiency;
* MRU/LRU sits in between with a high total (stale caches waste probes).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.params import ProtocolParams, SystemParams
from repro.experiments.executor import TrialExecutor, get_executor
from repro.experiments.profiles import Profile
from repro.experiments.runner import ExperimentResult, run_guess_config
from repro.metrics.load import LoadDistribution, merge_loads

#: The figure's QueryProbe/CacheReplacement combinations.
COMBOS: Tuple[Tuple[str, str], ...] = (
    ("Random", "Random"),
    ("MFS", "LFS"),
    ("MR", "LR"),
    ("MRU", "LRU"),
)

#: Ranked points kept per series (log-thinned like the paper's x-axis).
SERIES_POINTS = 40


def measure_load_distribution(
    profile: Profile,
    query_probe: str,
    cache_replacement: str,
    base_seed: int,
    executor: TrialExecutor | None = None,
) -> LoadDistribution:
    """Run one combo and merge per-peer loads across trials."""
    protocol = ProtocolParams(
        query_probe=query_probe,
        query_pong=query_probe if query_probe != "Random" else "Random",
        cache_replacement=cache_replacement,
    )
    reports = run_guess_config(
        SystemParams(network_size=profile.reference_size),
        protocol,
        duration=profile.duration,
        warmup=profile.warmup,
        trials=profile.trials,
        base_seed=base_seed,
        executor=executor,
    )
    return LoadDistribution(merge_loads([r.loads for r in reports]))


def run_fig13(
    profile: Profile, executor: TrialExecutor | None = None
) -> ExperimentResult:
    """Figure 13: ranked load per policy combination."""
    series: Dict[str, Sequence[Tuple[float, float]]] = {}
    rows: List[tuple] = []
    for index, (probe, replacement) in enumerate(COMBOS):
        label = f"{probe}/{replacement}"
        dist = measure_load_distribution(
            profile,
            probe,
            replacement,
            base_seed=0xF13 + index,
            executor=executor,
        )
        series[label] = [
            (float(rank), float(load))
            for rank, load in dist.series(max_points=SERIES_POINTS)
        ]
        rows.append(
            (
                label,
                dist.total,
                dist.top_share(0.01),
                round(dist.gini(), 3),
            )
        )
    return ExperimentResult(
        experiment_id="fig13",
        title=(
            "Ranked distribution of load (probes received) for QueryProbe/"
            "CacheReplacement combinations"
        ),
        columns=("Combo", "Total probes", "Top-1% share", "Gini"),
        rows=tuple(rows),
        series=series,
        x_label="Rank",
        notes=(
            "MFS/LFS and MR/LR steep (hotspots); Random/Random flat but "
            "with ~8x the total probes of MFS/LFS"
        ),
    )


def run_suite(
    profile: Profile,
    workers: int = 1,
    executor: TrialExecutor | None = None,
) -> List[ExperimentResult]:
    """Figure 13.

    An explicit ``executor`` (e.g. the supervised executor shared by
    ``run_all --supervise``) overrides ``workers`` and stays open for
    the caller to close.
    """
    if executor is None:
        with get_executor(workers) as owned:
            return run_suite(profile, executor=owned)
    return [run_fig13(profile, executor)]
