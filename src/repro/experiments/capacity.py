"""Capacity-limit experiments: Figures 14 and 15 (paper §6.3).

Peers refuse probes beyond ``MaxProbesPerSecond``.  Under the load-
concentrating MR policies, the few consistently productive peers sit in
many link caches and get hammered.  Expected shapes:

* Figure 14 — good and dead probes per query stay roughly steady as the
  network grows, but *refused* probes per query increase with
  NetworkSize and with tighter capacity.
* Figure 15 — satisfaction is barely affected even when many probes are
  refused: enough other peers can answer, and the protocol's inherent
  throttling (refused ⇒ evicted ⇒ stops circulating in pongs) sheds
  load from hotspots.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.params import ProtocolParams, SystemParams
from repro.experiments.executor import TrialExecutor, get_executor
from repro.experiments.profiles import Profile
from repro.experiments.runner import (
    ExperimentResult,
    averaged,
    run_guess_config,
)

#: Capacity sweep from the paper's Figure 14 bar groups.
CAPACITIES: Tuple[int, ...] = (50, 10, 5, 1)


def sweep_capacity(
    profile: Profile,
    network_sizes: Sequence[int] | None = None,
    capacities: Sequence[int] = CAPACITIES,
    executor: TrialExecutor | None = None,
) -> Dict[Tuple[int, int], Dict[str, float]]:
    """(NetworkSize × MaxProbesPerSecond) grid under the MR policies."""
    sizes = tuple(network_sizes or profile.network_sizes)
    protocol = ProtocolParams.all_same_policy("MR")
    results: Dict[Tuple[int, int], Dict[str, float]] = {}
    for n in sizes:
        for capacity in capacities:
            system = SystemParams(
                network_size=n, max_probes_per_second=capacity
            )
            reports = run_guess_config(
                system,
                protocol,
                duration=profile.duration,
                warmup=profile.warmup,
                trials=profile.trials,
                base_seed=n * 31 + capacity,
                executor=executor,
            )
            results[(n, capacity)] = {
                "good": averaged(reports, "good_probes_per_query"),
                "refused": averaged(reports, "refused_probes_per_query"),
                "dead": averaged(reports, "dead_probes_per_query"),
                "unsat": averaged(reports, "unsatisfied_rate"),
            }
    return results


def run_fig14(
    profile: Profile,
    sweep: Dict[Tuple[int, int], Dict[str, float]] | None = None,
) -> ExperimentResult:
    """Figure 14: probe breakdown vs (NetworkSize, capacity), MR policies."""
    sweep = sweep if sweep is not None else sweep_capacity(profile)
    rows = tuple(
        (
            n,
            capacity,
            cell["good"],
            cell["refused"],
            cell["dead"],
        )
        for (n, capacity), cell in sorted(
            sweep.items(), key=lambda kv: (kv[0][0], -kv[0][1])
        )
    )
    return ExperimentResult(
        experiment_id="fig14",
        title="For large networks, limited capacity leads to more refused probes",
        columns=(
            "NetworkSize",
            "MaxProbes/s",
            "Good/Query",
            "Refused/Query",
            "DeadIPs/Query",
        ),
        rows=rows,
        notes=(
            "good and dead probes steady across sizes; refused probes grow "
            "with NetworkSize and with tighter capacity"
        ),
    )


def run_fig15(
    profile: Profile,
    sweep: Dict[Tuple[int, int], Dict[str, float]] | None = None,
) -> ExperimentResult:
    """Figure 15: unsatisfaction vs capacity, one series per NetworkSize."""
    sweep = sweep if sweep is not None else sweep_capacity(profile)
    series: Dict[str, List[Tuple[float, float]]] = {}
    for (n, capacity), cell in sorted(sweep.items()):
        series.setdefault(f"N={n}", []).append(
            (float(capacity), cell["unsat"])
        )
    return ExperimentResult(
        experiment_id="fig15",
        title=(
            "Query satisfaction is not affected by capacity limits, even "
            "when a significant number of probes are refused"
        ),
        series=series,
        x_label="MaxProbesPerSecond",
        notes="unsatisfaction roughly flat in capacity for every NetworkSize",
    )


def run_suite(
    profile: Profile,
    workers: int = 1,
    executor: TrialExecutor | None = None,
) -> List[ExperimentResult]:
    """Figures 14 and 15 from one shared sweep.

    An explicit ``executor`` (e.g. the supervised executor shared by
    ``run_all --supervise``) overrides ``workers`` and stays open for
    the caller to close.
    """
    if executor is None:
        with get_executor(workers) as owned:
            return run_suite(profile, executor=owned)
    sweep = sweep_capacity(profile, executor=executor)
    return [run_fig14(profile, sweep), run_fig15(profile, sweep)]
