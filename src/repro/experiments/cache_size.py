"""Cache-size experiments: Table 3 and Figures 3, 4, 5 (paper §6.1).

Setup per the paper: Random policies everywhere, ``LifespanMultiplier =
0.2`` to stress maintenance, CacheSize swept from very small to the
network size, across several NetworkSizes.

Expected shapes:

* Figure 3 — probes/query grows with CacheSize at every NetworkSize.
* Figure 4 — unsatisfaction is high for tiny caches, reaches a minimum
  at moderate CacheSize (paper: ~20-70), then *rises again* for large
  caches; the optimal cache size barely moves with NetworkSize.
* Figure 5 — the explanation: dead probes grow with CacheSize while good
  probes peak at a moderate size (maintenance spread too thin).
* Table 3 — fraction of live entries falls with CacheSize while the
  absolute number of live entries saturates.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Tuple

from repro.core.params import ProtocolParams, SystemParams
from repro.experiments.executor import TrialExecutor, get_executor
from repro.experiments.profiles import Profile
from repro.experiments.runner import (
    ExperimentResult,
    averaged,
    run_guess_config,
)

#: The paper stresses cache maintenance with short lifetimes.
LIFESPAN_MULTIPLIER = 0.2

#: Table 3's cache-size rows.
TABLE3_CACHE_SIZES = (10, 20, 50, 100, 200, 500)

SweepKey = Tuple[int, int]  # (network_size, cache_size)


def sweep_cache_sizes(
    profile: Profile,
    network_sizes: Tuple[int, ...] | None = None,
    executor: TrialExecutor | None = None,
) -> Dict[SweepKey, dict]:
    """Run the (NetworkSize × CacheSize) grid once; share across figures.

    Returns:
        ``{(n, cache): metrics}`` where metrics holds the trial-averaged
        values every consumer of this sweep needs.
    """
    sizes = network_sizes or profile.network_sizes
    results: Dict[SweepKey, dict] = {}
    for n in sizes:
        for cache in profile.cache_sizes:
            cache_size = min(cache, n)
            if (n, cache_size) in results:
                continue
            system = SystemParams(
                network_size=n,
                lifespan_multiplier=LIFESPAN_MULTIPLIER,
            )
            protocol = ProtocolParams(cache_size=cache_size)
            reports = run_guess_config(
                system,
                protocol,
                duration=profile.duration,
                warmup=profile.warmup,
                trials=profile.trials,
                base_seed=hash_seed(n, cache_size),
                executor=executor,
            )
            results[(n, cache_size)] = {
                "probes_per_query": averaged(reports, "probes_per_query"),
                "good_per_query": averaged(reports, "good_probes_per_query"),
                "dead_per_query": averaged(reports, "dead_probes_per_query"),
                "unsatisfied": averaged(reports, "unsatisfied_rate"),
                "fraction_live": averaged(reports, "mean_fraction_live"),
                "absolute_live": averaged(reports, "mean_absolute_live"),
                "cache_fill": averaged(reports, "mean_cache_fill"),
            }
    return results


def hash_seed(n: int, cache: int) -> int:
    """Stable per-cell base seed so sweep cells are independent."""
    return (n * 1_000_003 + cache) & 0x7FFFFFFF


def run_table3(
    profile: Profile, sweep: Dict[SweepKey, dict] | None = None
) -> ExperimentResult:
    """Table 3: live-entry breakdown vs CacheSize at the reference size."""
    n = profile.reference_size
    cache_sizes = [min(c, n) for c in TABLE3_CACHE_SIZES if c <= n] or [
        min(TABLE3_CACHE_SIZES[0], n)
    ]
    if sweep is None:
        narrowed = replace(
            profile, cache_sizes=tuple(dict.fromkeys(cache_sizes))
        )
        sweep = sweep_cache_sizes(narrowed, network_sizes=(n,))
    rows = []
    for cache in dict.fromkeys(cache_sizes):
        cell = sweep.get((n, cache))
        if cell is None:
            continue
        rows.append((cache, cell["fraction_live"], cell["absolute_live"]))
    return ExperimentResult(
        experiment_id="table3",
        title="Breakdown of live cache entries for varying cache sizes",
        columns=("CacheSize", "Fraction Live", "Absolute Live"),
        rows=tuple(rows),
        notes=(
            "fraction live falls as CacheSize grows; absolute live entries "
            "rise then saturate"
        ),
    )


def run_fig3(
    profile: Profile, sweep: Dict[SweepKey, dict] | None = None
) -> ExperimentResult:
    """Figure 3: probes/query vs CacheSize, one series per NetworkSize."""
    sweep = sweep if sweep is not None else sweep_cache_sizes(profile)
    series = _series_by_network(sweep, "probes_per_query")
    return ExperimentResult(
        experiment_id="fig3",
        title="Number of probes increases as cache size increases",
        series=series,
        x_label="CacheSize",
        notes="monotone-increasing probes/query with CacheSize, all sizes",
    )


def run_fig4(
    profile: Profile, sweep: Dict[SweepKey, dict] | None = None
) -> ExperimentResult:
    """Figure 4: unsatisfaction vs CacheSize, one series per NetworkSize."""
    sweep = sweep if sweep is not None else sweep_cache_sizes(profile)
    series = _series_by_network(sweep, "unsatisfied")
    return ExperimentResult(
        experiment_id="fig4",
        title="Unsatisfaction experiences a minimum at moderate cache values",
        series=series,
        x_label="CacheSize",
        notes=(
            "high at tiny caches, minimum around CacheSize 20-70, rising "
            "again at large caches; optimum insensitive to NetworkSize"
        ),
    )


def run_fig5(
    profile: Profile, sweep: Dict[SweepKey, dict] | None = None
) -> ExperimentResult:
    """Figure 5: dead vs good probes per query at the reference size."""
    n = profile.reference_size
    if sweep is None:
        sweep = sweep_cache_sizes(profile, network_sizes=(n,))
    dead = []
    good = []
    for (net, cache), cell in sorted(sweep.items()):
        if net != n:
            continue
        dead.append((cache, cell["dead_per_query"]))
        good.append((cache, cell["good_per_query"]))
    return ExperimentResult(
        experiment_id="fig5",
        title=(
            "Dead probes increase with cache size; good probes peak at a "
            "moderate cache value"
        ),
        series={"Dead": dead, "Good": good},
        x_label="CacheSize",
        notes=(
            "dead probes rise sharply then level; good probes peak near "
            "CacheSize ~20 and do not grow with larger caches"
        ),
    )


def run_suite(
    profile: Profile,
    workers: int = 1,
    executor: TrialExecutor | None = None,
) -> List[ExperimentResult]:
    """Table 3 + Figures 3-5 from a single shared sweep.

    An explicit ``executor`` (e.g. the supervised executor shared by
    ``run_all --supervise``) overrides ``workers`` and stays open for
    the caller to close.
    """
    if executor is None:
        with get_executor(workers) as owned:
            return run_suite(profile, executor=owned)
    sweep = sweep_cache_sizes(profile, executor=executor)
    reference_only = {
        key: value
        for key, value in sweep.items()
        if key[0] == profile.reference_size
    }
    return [
        run_table3(profile, reference_only),
        run_fig3(profile, sweep),
        run_fig4(profile, sweep),
        run_fig5(profile, reference_only),
    ]


def _series_by_network(
    sweep: Dict[SweepKey, dict], metric: str
) -> Dict[str, List[Tuple[float, float]]]:
    series: Dict[str, List[Tuple[float, float]]] = {}
    for (n, cache), cell in sorted(sweep.items()):
        series.setdefault(f"N={n}", []).append((cache, cell[metric]))
    return series
