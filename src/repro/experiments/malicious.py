"""Cache-poisoning robustness: Figures 16-18 and 19-21 (paper §6.4).

Malicious peers return corrupt Pongs; the experiments sweep the attacker
fraction for four policy stacks (Random, MR, MR*, MFS — each applied to
QueryProbe/QueryPong/CacheReplacement simultaneously, as in the paper).

Non-colluding attack (``BadPongBehavior = Dead``, Figures 16-18):
    MFS collapses (poisoned entries advertise huge NumFiles and are
    trusted); Random, MR and MR* stay robust — MR self-corrects because
    one probe zeroes a liar's NumRes.

Colluding attack (``BadPongBehavior = Bad``, Figures 19-21):
    MR collapses too: each probe of a malicious peer imports PongSize
    fresh malicious entries, faster than eviction removes them.  Only
    Random and MR* (which ignores hearsay NumRes) remain robust, with
    MR* beating Random on efficiency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.params import BadPongBehavior, ProtocolParams, SystemParams
from repro.experiments.executor import TrialExecutor, get_executor
from repro.experiments.profiles import Profile
from repro.experiments.runner import (
    ExperimentResult,
    averaged,
    run_guess_config,
)

#: Policy stacks compared in Figures 16-21.
POLICIES: Tuple[str, ...] = ("Random", "MR", "MR*", "MFS")

#: Attacker percentages swept on the x-axis.
BAD_PERCENTS: Tuple[float, ...] = (0.0, 5.0, 10.0, 15.0, 20.0)


def sweep_malicious(
    profile: Profile,
    behavior: BadPongBehavior,
    bad_percents: Sequence[float] = BAD_PERCENTS,
    policies: Sequence[str] = POLICIES,
    cache_size: int | None = None,
    executor: TrialExecutor | None = None,
) -> Dict[Tuple[str, float], Dict[str, float]]:
    """(policy × PercentBadPeers) grid for one BadPongBehavior.

    Args:
        cache_size: CacheSize override.  The colluding-MR collapse needs
            the attacker population to exceed the cache capacity (entries
            dedup by address, so N_bad <= CacheSize caps the poisoning);
            reduced-scale harnesses shrink the cache accordingly.  None
            keeps the Table 2 default (100), correct at the paper's
            NetworkSize 1000.
    """
    results: Dict[Tuple[str, float], Dict[str, float]] = {}
    overrides = {} if cache_size is None else {"cache_size": cache_size}
    for p_index, policy in enumerate(policies):
        protocol = ProtocolParams.all_same_policy(policy, **overrides)
        for b_index, bad in enumerate(bad_percents):
            system = SystemParams(
                network_size=profile.reference_size,
                percent_bad_peers=bad,
                bad_pong_behavior=behavior,
            )
            reports = run_guess_config(
                system,
                protocol,
                duration=profile.duration,
                warmup=profile.warmup,
                trials=profile.trials,
                base_seed=0xBAD + p_index * 101 + b_index,
                executor=executor,
            )
            results[(policy, bad)] = {
                "probes": averaged(reports, "probes_per_query"),
                "unsat": averaged(reports, "unsatisfied_rate"),
                "good_entries": averaged(reports, "mean_good_entries"),
            }
    return results


def _series(
    sweep: Dict[Tuple[str, float], Dict[str, float]], metric: str
) -> Dict[str, List[Tuple[float, float]]]:
    series: Dict[str, List[Tuple[float, float]]] = {}
    for (policy, bad), cell in sorted(
        sweep.items(), key=lambda kv: (kv[0][0], kv[0][1])
    ):
        series.setdefault(policy, []).append((bad, cell[metric]))
    return series


def _three_figures(
    sweep: Dict[Tuple[str, float], Dict[str, float]],
    ids: Tuple[str, str, str],
    collusion: bool,
) -> List[ExperimentResult]:
    mode = "colluding (Bad pongs)" if collusion else "non-colluding (Dead pongs)"
    vulnerable = "MR and MFS" if collusion else "MFS only"
    probes_id, unsat_id, entries_id = ids
    return [
        ExperimentResult(
            experiment_id=probes_id,
            title=f"Average probes per query vs PercentBadPeers — {mode}",
            series=_series(sweep, "probes"),
            x_label="PercentBadPeers",
            notes=f"cost rises with attacker share; worst for {vulnerable}",
        ),
        ExperimentResult(
            experiment_id=unsat_id,
            title=f"Unsatisfied queries vs PercentBadPeers — {mode}",
            series=_series(sweep, "unsat"),
            x_label="PercentBadPeers",
            notes=(
                f"{vulnerable} collapse toward ~100% unsatisfied by 20% "
                "attackers; Random and MR* stay near the no-attack level"
            ),
        ),
        ExperimentResult(
            experiment_id=entries_id,
            title=(
                "Average good (live, non-malicious) link-cache entries vs "
                f"PercentBadPeers — {mode}"
            ),
            series=_series(sweep, "good_entries"),
            x_label="PercentBadPeers",
            notes=f"good-entry counts collapse for {vulnerable}",
        ),
    ]


def run_fig16_18(
    profile: Profile,
    cache_size: int | None = None,
    executor: TrialExecutor | None = None,
) -> List[ExperimentResult]:
    """Figures 16, 17, 18: the non-colluding (Dead-pong) attack."""
    sweep = sweep_malicious(
        profile, BadPongBehavior.DEAD, cache_size=cache_size, executor=executor
    )
    return _three_figures(sweep, ("fig16", "fig17", "fig18"), collusion=False)


def run_fig19_21(
    profile: Profile,
    cache_size: int | None = None,
    executor: TrialExecutor | None = None,
) -> List[ExperimentResult]:
    """Figures 19, 20, 21: the colluding (Bad-pong) attack."""
    sweep = sweep_malicious(
        profile, BadPongBehavior.BAD, cache_size=cache_size, executor=executor
    )
    return _three_figures(sweep, ("fig19", "fig20", "fig21"), collusion=True)


def run_suite(
    profile: Profile,
    workers: int = 1,
    executor: TrialExecutor | None = None,
) -> List[ExperimentResult]:
    """Figures 16-21.

    An explicit ``executor`` (e.g. the supervised executor shared by
    ``run_all --supervise``) overrides ``workers`` and stays open for
    the caller to close.
    """
    if executor is None:
        with get_executor(workers) as owned:
            return run_suite(profile, executor=owned)
    return run_fig16_18(profile, executor=executor) + run_fig19_21(
        profile, executor=executor
    )
