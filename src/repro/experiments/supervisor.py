"""Supervised trial execution: watchdogs, crash retry, checkpoint/resume.

The plain :class:`~repro.experiments.executor.ProcessTrialExecutor`
treats the worker pool as infallible: one crashed worker poisons the
pool and aborts the whole batch, a hung worker stalls it forever, and a
killed sweep restarts from trial zero.  This module wraps the pool in a
*supervisor* that treats trials the way a training job treats workers —
individually expendable, collectively durable:

* **watchdog** — every in-flight trial carries a deadline
  (``trial_timeout`` seconds, enforced through
  :func:`concurrent.futures.wait` timeouts); a trial that blows its
  deadline has its worker pool killed and is retried;
* **crash retry** — a trial whose worker raises or dies
  (:class:`~concurrent.futures.process.BrokenProcessPool`) is retried,
  the pool respawned, up to ``max_attempts`` attempts;
* **quarantine** — a trial that fails every attempt is reported as a
  structured :class:`~repro.errors.TrialFailure` occupying its slot in
  the (spec-ordered) results, so sibling trials survive;
* **checkpoint journal** — each completed trial's pickled report and
  trace digest is appended to a JSONL journal keyed by a
  :func:`trial_fingerprint` of its spec, as it finishes; a resumed run
  loads the journal and re-runs only missing/failed trials
  (``run_all --supervise`` / ``--resume DIR``).

**Determinism contract (the headline guarantee).**  A sweep that
crashed N times and was resumed produces byte-identical reports and
trace digests to a one-shot serial run.  The supervisor can promise
this because it never *creates* work, only re-dispatches it: seeds are
derived pre-dispatch in the parent and frozen into each
:class:`~repro.experiments.executor.TrialSpec`, every retry resubmits
the spec verbatim, results are slotted by spec index regardless of
completion order, and the chaos hook (when present) fires *before* the
simulation is constructed, so a surviving attempt's report carries no
scar tissue.  ``tests/experiments/test_supervisor.py`` pins all of it,
including the three golden digests run under supervision.

**Blame attribution.**  A raised exception or an expired deadline is
attributable to exactly one trial.  A broken pool is not: every
in-flight future fails at once.  The supervisor therefore blames a pool
break only when a single trial was in flight; otherwise it requeues all
victims blame-free into an *isolation* queue that runs them one at a
time, where the next break is attributable with certainty.  An innocent
trial can never be quarantined by a crashing neighbour.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from hashlib import sha256
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional

from repro.errors import ConfigError, ExecutionError, TrialFailure
from repro.experiments.executor import TrialExecutor, execute_trial
from repro.observe.profiler import active_profiler

#: Journal filename used by ``run_all --supervise`` inside its
#: checkpoint directory (gitignored via the ``*.journal.jsonl`` pattern).
JOURNAL_FILENAME = "trials.journal.jsonl"

#: Partial-manifest filename written on interrupt, verified on resume.
PARTIAL_MANIFEST_FILENAME = "manifest.partial.json"

#: Poll granularity for the dispatch loop: bounds both watchdog
#: precision and how long a stop request can go unnoticed.
_POLL_SECONDS = 0.5

#: Consecutive failed pool respawns tolerated before giving up.
_MAX_RESPAWN_FAILURES = 5

_MISS = object()
_PENDING = object()


class SweepInterrupted(ExecutionError):
    """A supervised sweep was stopped before every trial completed.

    Raised by :meth:`SupervisedTrialExecutor.map` after a stop request
    (typically SIGINT) once in-flight trials have drained and been
    journaled.  Completed work is safe in the journal; resume with
    ``run_all --resume DIR``.
    """


def trial_fingerprint(fn: Callable, item: Any) -> str:
    """Stable identity of one unit of work: hash of ``fn`` + ``repr(item)``.

    Valid for module-level functions applied to items with
    value-determined ``repr`` (frozen dataclasses of scalars, tuples of
    scalars — every spec type the experiment harness dispatches).  The
    fingerprint is what lets a resumed run recognise work it already
    did, so it must not depend on object identity, process, or time.
    """
    payload = f"{fn.__module__}.{fn.__qualname__}|{item!r}"
    return sha256(payload.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Checkpoint journal
# ----------------------------------------------------------------------


class TrialJournal:
    """Append-only JSONL checkpoint of completed (and quarantined) trials.

    One line per event, flushed and fsynced as it happens — a crash
    loses at most the trial that was being written:

    * ``{"kind": "report", "fingerprint": ..., "digest": ...,
      "payload": <base64 pickle of the report>}``
    * ``{"kind": "failure", "fingerprint": ..., "index": ...,
      "attempts": ..., "error": ..., "failure_kind": ...}``

    On ``resume=True`` existing ``report`` lines are loaded into the
    lookup cache (failures are *not* — a quarantined trial is re-run on
    resume); a torn final line from a mid-write crash is skipped.
    Without ``resume`` the file is truncated and started fresh.
    """

    def __init__(self, path, *, resume: bool = False) -> None:
        self.path = os.fspath(path)
        self._cache: Dict[str, Any] = {}
        self._digests: Dict[str, Optional[str]] = {}
        if resume:
            self._load()
        self._handle = open(self.path, "a" if resume else "w",
                            encoding="utf-8")

    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail write from a crash mid-append
                if entry.get("kind") != "report":
                    continue
                try:
                    report = pickle.loads(base64.b64decode(entry["payload"]))
                except Exception:
                    continue  # unreadable payload: treat as not done
                fingerprint = entry["fingerprint"]
                self._cache[fingerprint] = report
                self._digests[fingerprint] = entry.get("digest")

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def digests(self) -> Dict[str, Optional[str]]:
        """``fingerprint -> trace digest`` for every journaled report."""
        return dict(self._digests)

    def lookup(self, fingerprint: str) -> Any:
        """The journaled report for ``fingerprint``, or the miss sentinel."""
        return self._cache.get(fingerprint, _MISS)

    def _append(self, entry: dict) -> None:
        self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def record(self, fingerprint: str, report: Any) -> None:
        """Checkpoint one completed trial (report + digest)."""
        digest = getattr(report, "trace_digest", None)
        self._append({
            "kind": "report",
            "fingerprint": fingerprint,
            "digest": digest,
            "payload": base64.b64encode(pickle.dumps(report)).decode("ascii"),
        })
        self._cache[fingerprint] = report
        self._digests[fingerprint] = digest

    def record_failure(self, fingerprint: str, failure: TrialFailure) -> None:
        """Record a quarantine (informational; failures re-run on resume)."""
        self._append({
            "kind": "failure",
            "fingerprint": fingerprint,
            "index": failure.index,
            "attempts": failure.attempts,
            "error": failure.error,
            "failure_kind": failure.kind,
        })

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


# ----------------------------------------------------------------------
# The supervisor
# ----------------------------------------------------------------------


@dataclass
class _Flight:
    """Bookkeeping for one in-flight future."""

    index: int
    deadline: Optional[float]


class SupervisedTrialExecutor(TrialExecutor):
    """A process-pool executor with watchdogs, retries, and a journal.

    Unlike :class:`~repro.experiments.executor.ProcessTrialExecutor`,
    *every* item runs in a worker process — even single-item batches —
    because crash isolation is the point: an ``os._exit`` or a hang must
    take down a worker, never the parent.  ``workers=1`` therefore still
    supervises (a pool of one), it just doesn't parallelise.

    Args:
        workers: pool size; ``None`` or 0 means ``os.cpu_count()``.
        trial_timeout: watchdog deadline in seconds per *attempt*;
            ``None`` disables the watchdog (crashes are still retried).
        max_attempts: failed attempts tolerated per trial before it is
            quarantined as a :class:`~repro.errors.TrialFailure`.
        journal: path of the JSONL checkpoint journal; ``None`` disables
            checkpointing (supervision still applies).
        resume: load an existing journal at ``journal`` and serve
            already-completed trials from it instead of re-running them.

    Attributes:
        failures: every :class:`TrialFailure` quarantined so far, in the
            order the quarantines happened (across batches).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        trial_timeout: Optional[float] = None,
        max_attempts: int = 3,
        journal=None,
        resume: bool = False,
    ) -> None:
        resolved = workers or os.cpu_count() or 1
        if resolved < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        if trial_timeout is not None and trial_timeout <= 0:
            raise ConfigError(
                f"trial_timeout must be positive, got {trial_timeout}"
            )
        self.workers = int(resolved)
        self.trial_timeout = trial_timeout
        self.max_attempts = max_attempts
        self.failures: List[TrialFailure] = []
        self._journal = (
            TrialJournal(journal, resume=resume) if journal is not None
            else None
        )
        self._pool: Optional[ProcessPoolExecutor] = None
        self._stop = False

    # -- lifecycle ------------------------------------------------------

    @property
    def journal(self) -> Optional[TrialJournal]:
        """The checkpoint journal, when checkpointing is enabled."""
        return self._journal

    @property
    def stop_requested(self) -> bool:
        """True once :meth:`request_stop` has been called."""
        return self._stop

    def request_stop(self) -> None:
        """Ask the dispatch loop to drain: finish (and journal) in-flight
        trials, submit nothing new, then raise :class:`SweepInterrupted`.

        Safe to call from a signal handler — it only sets a flag.
        """
        self._stop = True

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.shutdown(wait=True)
            except Exception:  # broken pools shut down best-effort
                pass
        if self._journal is not None:
            self._journal.close()

    # -- pool management ------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _discard_pool(self) -> None:
        """Retire a broken pool; the next submit respawns a fresh one."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass

    def _kill_pool(self) -> None:
        """Forcibly terminate the pool's workers (watchdog path).

        A hung worker never returns on its own, so a plain shutdown
        would block forever; termination is the only way to reclaim the
        slot.  Reaches into ``_processes`` because
        :class:`ProcessPoolExecutor` exposes no kill switch.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        processes = list((getattr(pool, "_processes", None) or {}).values())
        for process in processes:
            try:
                process.terminate()
            except Exception:
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        for process in processes:
            try:
                process.join(timeout=5.0)
            except Exception:
                pass

    # -- supervised dispatch --------------------------------------------

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
    ) -> List[Any]:
        """Supervised, order-preserving ``fn`` over ``items``.

        Results come back in item order; a quarantined item's slot holds
        a :class:`TrialFailure` instead of a result.  Raises
        :class:`SweepInterrupted` if a stop request left items undone.
        """
        items = list(items)
        profiler = active_profiler()
        if profiler is None:
            return self._supervised(fn, items)
        started = time.perf_counter()  # repro: allow-wallclock (profiling)
        results = self._supervised(fn, items)
        elapsed = time.perf_counter() - started  # repro: allow-wallclock
        profiler.record_batch(len(items), elapsed)
        return results

    def _supervised(self, fn: Callable, items: List[Any]) -> List[Any]:
        results: List[Any] = [_PENDING] * len(items)
        fingerprints: List[Optional[str]] = [None] * len(items)
        queue: Deque[int] = deque()
        for index, item in enumerate(items):
            if self._journal is not None:
                fingerprint = trial_fingerprint(fn, item)
                fingerprints[index] = fingerprint
                cached = self._journal.lookup(fingerprint)
                if cached is not _MISS:
                    results[index] = cached
                    continue
            queue.append(index)

        failed = [0] * len(items)
        isolation: Deque[int] = deque()
        inflight: Dict[Future, _Flight] = {}
        respawn_failures = 0

        def blame(index: int, error: str, kind: str,
                  requeue: Deque[int]) -> None:
            """Charge one failed attempt; requeue or quarantine."""
            failed[index] += 1
            if failed[index] >= self.max_attempts:
                failure = TrialFailure(
                    index=index,
                    attempts=failed[index],
                    error=error,
                    kind=kind,
                )
                results[index] = failure
                self.failures.append(failure)
                if self._journal is not None and fingerprints[index]:
                    self._journal.record_failure(
                        fingerprints[index], failure
                    )
            else:
                requeue.append(index)

        def submit(index: int) -> bool:
            nonlocal respawn_failures
            try:
                future = self._ensure_pool().submit(fn, items[index])
            except (BrokenProcessPool, RuntimeError):
                # The pool died between batches or while submitting.
                # Retire it and requeue; _ensure_pool respawns next time.
                self._discard_pool()
                isolation.appendleft(index)
                respawn_failures += 1
                if respawn_failures >= _MAX_RESPAWN_FAILURES:
                    raise ExecutionError(
                        "worker pool cannot be respawned "
                        f"({respawn_failures} consecutive submit failures)"
                    )
                return False
            respawn_failures = 0
            deadline = None
            if self.trial_timeout is not None:
                now = time.monotonic()  # repro: allow-wallclock (watchdog)
                deadline = now + self.trial_timeout
            inflight[future] = _Flight(index=index, deadline=deadline)
            return True

        while queue or isolation or inflight:
            # Submission.  Isolation runs strictly one at a time so the
            # next pool break is attributable; it drains before (and
            # blocks) the parallel queue.
            if not self._stop:
                if isolation:
                    if not inflight:
                        submit(isolation.popleft())
                else:
                    while queue and len(inflight) < self.workers:
                        if not submit(queue.popleft()):
                            break
            if not inflight:
                if self._stop:
                    break
                continue

            now = time.monotonic()  # repro: allow-wallclock (watchdog)
            wait_for = _POLL_SECONDS
            deadlines = [
                flight.deadline for flight in inflight.values()
                if flight.deadline is not None
            ]
            if deadlines:
                wait_for = max(0.0, min(wait_for, min(deadlines) - now))
            done, _ = futures_wait(
                set(inflight), timeout=wait_for,
                return_when=FIRST_COMPLETED,
            )

            broken: List[_Flight] = []
            for future in done:
                flight = inflight.pop(future)
                try:
                    result = future.result()
                except BrokenProcessPool:
                    broken.append(flight)
                except BaseException as exc:
                    # The worker raised: attributable with certainty.
                    blame(flight.index, repr(exc), "error", queue)
                else:
                    results[flight.index] = result
                    if (self._journal is not None
                            and fingerprints[flight.index] is not None):
                        self._journal.record(
                            fingerprints[flight.index], result
                        )
            if broken:
                # The pool is dead: every remaining in-flight future is
                # doomed with it.  Blame only if exactly one trial was
                # in flight; otherwise requeue all victims blame-free
                # into isolation, where reruns are attributable.
                victims = broken + list(inflight.values())
                inflight.clear()
                self._discard_pool()
                if len(victims) == 1:
                    blame(
                        victims[0].index,
                        "worker process died (BrokenProcessPool)",
                        "crash",
                        isolation,
                    )
                else:
                    for flight in victims:
                        isolation.append(flight.index)
                continue

            # Watchdog: deadlines are per-future, so expiry is
            # attributable even with siblings in flight — but reclaiming
            # the hung worker means killing the whole pool, so innocent
            # siblings are requeued blame-free.
            if self.trial_timeout is not None and inflight:
                now = time.monotonic()  # repro: allow-wallclock (watchdog)
                expired = [
                    flight for flight in inflight.values()
                    if flight.deadline is not None and flight.deadline <= now
                ]
                if expired:
                    survivors = [
                        flight for flight in inflight.values()
                        if flight not in expired
                    ]
                    inflight.clear()
                    self._kill_pool()
                    for flight in expired:
                        blame(
                            flight.index,
                            "watchdog: no result within "
                            f"{self.trial_timeout}s",
                            "timeout",
                            isolation,
                        )
                    for flight in survivors:
                        queue.appendleft(flight.index)

        if any(result is _PENDING for result in results):
            undone = sum(1 for result in results if result is _PENDING)
            raise SweepInterrupted(
                f"stop requested with {undone} of {len(items)} trials "
                "not yet run; completed trials are in the journal"
            )
        return results


# ----------------------------------------------------------------------
# Resume verification against the manifest machinery
# ----------------------------------------------------------------------


def manifest_trial_digests(manifest: dict) -> Dict[str, Optional[str]]:
    """``fingerprint -> recorded digest`` for every trial in a manifest.

    Reconstructs each config entry's :class:`TrialSpec` list exactly as
    :func:`~repro.experiments.runner.run_guess_config` built it (seeds
    re-derived, ``trace_hash`` forced as the recorder forces it), so the
    fingerprints match what a supervised run journals.
    """
    from repro.observe.manifest import specs_for_entry

    digests: Dict[str, Optional[str]] = {}
    for entry in manifest.get("configs", []):
        specs = specs_for_entry(entry)
        for spec, digest in zip(specs, entry["trace_digests"]):
            digests[trial_fingerprint(execute_trial, spec)] = digest
    return digests


def verify_journal_against_manifest(
    journal: TrialJournal, manifest: dict
) -> List[str]:
    """Cross-check journaled digests against a (partial) manifest.

    Returns human-readable problem lines; empty means every trial the
    journal and the manifest both know about carries the same trace
    digest — the precondition for a resume to be byte-equivalent to a
    fresh run.  Trials only one side knows about are fine (the manifest
    records whole configs; the journal records single trials).
    """
    problems: List[str] = []
    expected = manifest_trial_digests(manifest)
    for fingerprint, digest in journal.digests.items():
        recorded = expected.get(fingerprint, _MISS)
        if recorded is _MISS:
            continue
        if recorded != digest:
            problems.append(
                f"journal digest {digest} contradicts manifest digest "
                f"{recorded} for trial {fingerprint[:12]}…"
            )
    return problems
