"""Configuration runner shared by all experiment modules.

:func:`run_guess_config` runs one (SystemParams, ProtocolParams)
configuration for ``trials`` seeded repetitions and returns the reports;
:func:`averaged` folds an attribute across them.  Experiments compose
these into sweeps and package the output as
:class:`ExperimentResult` records that the CLI renders.

Trials are independent seeded runs, so ``workers=N`` (or an explicit
:class:`~repro.experiments.executor.TrialExecutor`) fans them out over a
process pool.  Seeds derive in the parent before dispatch and reports
come back in trial order, so parallel output is byte-identical to
serial output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.baselines.gossip import GossipPlan
from repro.core.network_sim import GuessSimulation
from repro.core.params import ProtocolParams, SystemParams
from repro.errors import TrialFailure
from repro.experiments.executor import (
    ChaosSpec,
    TrialExecutor,
    TrialSpec,
    get_executor,
)
from repro.faults.plan import FaultPlan
from repro.freshness.plan import FreshnessPlan
from repro.metrics.collectors import SimulationReport
from repro.metrics.summary import mean
from repro.observe.manifest import active_manifest_recorder
from repro.resilience.policy import ResiliencePolicy
from repro.resilience.scenarios import ScenarioPlan
from repro.reporting.series import format_series_block
from repro.reporting.tables import format_table
from repro.sim.rng import derive_seed


@dataclass(frozen=True)
class ExperimentResult:
    """One regenerated table or figure.

    Attributes:
        experiment_id: e.g. ``"fig4"`` or ``"table3"``.
        title: paper caption paraphrase.
        columns: column labels when the result is tabular.
        rows: table rows (empty when the result is purely series).
        series: named x/y series when the result is a figure.
        x_label: x-axis label for the series block.
        notes: qualitative claim(s) this result should exhibit.
    """

    experiment_id: str
    title: str
    columns: Tuple[str, ...] = ()
    rows: Tuple[tuple, ...] = ()
    series: Dict[str, Sequence[Tuple[float, float]]] = field(
        default_factory=dict
    )
    x_label: str = "x"
    notes: str = ""

    def render(self) -> str:
        """Plain-text rendering (table, series block, or both)."""
        parts: List[str] = [f"== {self.experiment_id}: {self.title} =="]
        if self.rows:
            parts.append(format_table(self.columns, self.rows))
        if self.series:
            parts.append(
                format_series_block(self.series, x_label=self.x_label)
            )
        if self.notes:
            parts.append(f"expected shape: {self.notes}")
        return "\n".join(parts)


def run_guess_config(
    system: SystemParams,
    protocol: ProtocolParams,
    *,
    duration: float,
    warmup: float,
    trials: int = 1,
    base_seed: int = 0,
    keep_queries: bool = False,
    health_sample_interval: Optional[float] = 60.0,
    faults: Optional[FaultPlan] = None,
    mutate: Optional[Callable[[GuessSimulation], None]] = None,
    workers: int = 1,
    executor: Optional[TrialExecutor] = None,
    trace_hash: bool = False,
    scheduler: str = "heap",
    chaos: Optional[Mapping[int, ChaosSpec]] = None,
    scenarios: Optional[ScenarioPlan] = None,
    resilience: Optional[ResiliencePolicy] = None,
    satisfaction_window: Optional[float] = None,
    gossip: Optional[GossipPlan] = None,
    freshness: Optional[FreshnessPlan] = None,
) -> List[SimulationReport]:
    """Run one configuration ``trials`` times with derived seeds.

    Args:
        system / protocol: the configuration.
        duration: measured seconds (simulation runs warmup + duration).
        warmup: seconds before metrics collection starts.
        trials: number of independent seeded runs.
        base_seed: trial seeds derive from this (stable across sweeps).
        keep_queries: retain per-query records in the reports.
        health_sample_interval: cache-health sampling period (None = off).
        faults: optional fault plan applied to every trial; ``None`` or
            an all-zeros plan reproduces the fault-free runs exactly.
        mutate: optional hook called with each simulation before running
            (used by extension analyses to instrument internals).  A
            mutate hook pins execution to this process — it pokes at live
            simulation objects, which cannot cross a process boundary —
            so it composes with ``workers``/``executor`` by ignoring them.
        workers: trial-level parallelism; ``workers=N`` runs trials on N
            worker processes (0 = one per CPU).  Reports are identical to
            ``workers=1`` and arrive in the same (trial) order.
        executor: run trials on this executor instead of building one
            from ``workers`` (suites reuse one pool across a whole sweep).
        trace_hash: fold every trial's event stream into a trace digest
            (:attr:`SimulationReport.trace_digest`).  Forced on while a
            manifest recorder is active, so every recorded configuration
            carries per-trial digests that :func:`replay_config` can
            verify bit for bit.
        scheduler: engine event-queue structure (``"heap"`` or
            ``"wheel"``) applied to every trial.  Either fires events in
            exactly the same order, so sweep results are independent of
            this knob — big sweeps pick ``"wheel"`` purely for speed.
        chaos: optional ``{trial index: ChaosSpec}`` crash injection for
            supervisor drills — the chosen trials sabotage themselves in
            the worker before their simulation is built.  Ignored on the
            ``mutate`` path (which runs in-process, where an injected
            ``os._exit`` would kill the parent).
        scenarios: optional correlated-failure plan (churn storms, flash
            crowds) applied to every trial; ``None`` or an all-noop plan
            reproduces the scenario-free runs exactly.  Recorded in the
            manifest alongside the fault plan.
        resilience: optional graceful-degradation policy armed on every
            peer of every trial; ``None`` or an all-off policy changes
            nothing.
        satisfaction_window: width of the collector's windowed
            satisfaction channel (feeds time-to-recovery); ``None``
            disables it.
        gossip: optional gossip-assisted GUESS plan applied to every
            trial; ``None`` or a no-op plan reproduces the gossip-free
            runs exactly.  Recorded in the manifest alongside the fault
            plan.
        freshness: optional cache-freshness plan (push invalidation +
            heterogeneous cache sizing) applied to every trial; ``None``
            or a no-op plan reproduces the freshness-free runs exactly.
            Recorded in the manifest alongside the fault plan.

    Returns:
        One report per trial, in trial order.  Under a supervised
        executor a trial that exhausted every retry is represented by a
        :class:`~repro.errors.TrialFailure` in its slot.
    """
    recorder = active_manifest_recorder()
    capture = trace_hash or recorder is not None
    specs = [
        TrialSpec(
            system=system,
            protocol=protocol,
            duration=duration,
            warmup=warmup,
            seed=derive_seed(base_seed, f"trial:{trial}"),
            keep_queries=keep_queries,
            health_sample_interval=health_sample_interval,
            faults=faults,
            trace_hash=capture,
            scheduler=scheduler,
            chaos=chaos.get(trial) if chaos is not None else None,
            scenarios=scenarios,
            resilience=resilience,
            satisfaction_window=satisfaction_window,
            gossip=gossip,
            freshness=freshness,
        )
        for trial in range(trials)
    ]
    if mutate is not None:
        reports: List[SimulationReport] = []
        for spec in specs:
            sim = GuessSimulation(
                system,
                protocol,
                seed=spec.seed,
                warmup=warmup,
                keep_queries=keep_queries,
                health_sample_interval=health_sample_interval,
                faults=faults,
                trace_hash=capture,
                scheduler=scheduler,
                scenarios=scenarios,
                resilience=resilience,
                satisfaction_window=satisfaction_window,
                gossip=gossip,
                freshness=freshness,
            )
            mutate(sim)
            sim.run(warmup + duration)
            reports.append(sim.report())
    elif executor is not None:
        reports = executor.run_trials(specs)
    else:
        with get_executor(workers) as owned:
            reports = owned.run_trials(specs)
    if recorder is not None:
        recorder.record_config(
            system=system,
            protocol=protocol,
            faults=faults,
            duration=duration,
            warmup=warmup,
            trials=trials,
            base_seed=base_seed,
            health_sample_interval=health_sample_interval,
            keep_queries=keep_queries,
            seeds=[spec.seed for spec in specs],
            digests=[report.trace_digest for report in reports],
            scenarios=scenarios,
            resilience=resilience,
            satisfaction_window=satisfaction_window,
            gossip=gossip,
            freshness=freshness,
        )
    return reports


def averaged(
    reports: Sequence[SimulationReport], metric: str
) -> float:
    """Mean of a report property (by name) across trials.

    Quarantined trials (:class:`~repro.errors.TrialFailure` slots left
    by supervised execution) are excluded: the mean is over the trials
    that produced reports, so one failed trial degrades a cell's sample
    size instead of aborting the sweep.
    """
    return mean([
        getattr(report, metric)
        for report in reports
        if not isinstance(report, TrialFailure)
    ])
