"""Experiment harness: one module per paper table/figure.

Every experiment follows the same contract: ``run_<id>(profile)`` takes a
:class:`~repro.experiments.profiles.Profile` (scale knobs: durations,
network sizes, trial counts) and returns one or more
:class:`~repro.experiments.runner.ExperimentResult` records that render
to the table/series the paper reports.

========================  ==========================================
``cache_size``            Table 3, Figures 3, 4, 5
``ping_interval``         Figures 6, 7
``flexible_extent``       Figure 8
``policy_comparison``     Figures 9, 10, 11, 12
``fairness``              Figure 13
``capacity``              Figures 14, 15
``malicious``             Figures 16-18 (Dead), 19-21 (colluding)
========================  ==========================================

Run everything via ``python -m repro.experiments.run_all --profile quick``.
"""

from repro.experiments.executor import (
    ChaosSpec,
    ProcessTrialExecutor,
    SerialTrialExecutor,
    TrialExecutor,
    TrialSpec,
    get_executor,
)
from repro.experiments.profiles import PROFILES, Profile
from repro.experiments.runner import ExperimentResult, run_guess_config
from repro.experiments.supervisor import (
    SupervisedTrialExecutor,
    SweepInterrupted,
    TrialJournal,
    trial_fingerprint,
)

__all__ = [
    "PROFILES",
    "Profile",
    "ExperimentResult",
    "run_guess_config",
    "TrialExecutor",
    "TrialSpec",
    "ChaosSpec",
    "SerialTrialExecutor",
    "ProcessTrialExecutor",
    "SupervisedTrialExecutor",
    "SweepInterrupted",
    "TrialJournal",
    "trial_fingerprint",
    "get_executor",
]
