"""Packet-loss robustness suite (beyond the paper).

The paper evaluates GUESS on a perfectly reliable UDP substrate: a probe
times out only when its target is dead.  Real networks lose packets, and
for a connectionless protocol a lost Pong is *indistinguishable* from a
dead peer — every loss corrupts the DeadIPs accounting, wrongly evicts a
live link-cache entry, and pollutes the pongs that entry would have
seeded.  This suite measures that corruption and how much a retry budget
buys back:

* ``loss_grid`` — the full loss-rate × retry-budget grid: satisfaction,
  results/query, probes/query, DeadIPs/query split into *true* dead
  probes and *spurious* timeouts, retry recovery rate, link-cache live
  fraction, and wrongful evictions (query + ping paths).
* ``loss_satisfaction`` — satisfaction rate vs loss rate, one curve per
  retry budget.

Anchoring: the ``loss=0, retries=0`` cell uses the same ``base_seed``
(0x909), default :class:`~repro.core.params.ProtocolParams`, and system
scale as the policy-comparison suite's Random QueryProbe cell, so a
fault-free sweep reproduces those baseline numbers exactly — the suite's
zero point is pinned to the paper reproduction, not merely near it.

All cells share one base seed, so every (loss, retries) pair sees the
same peers, lifetimes, and query workload: differences between cells are
the fault model's doing alone (fault draws live on ``fault:*`` RNG
substreams and cannot perturb the protocol streams).

Run via ``python -m repro.experiments.run_all --suite packet_loss`` or
directly::

    python -m repro.experiments.packet_loss --profile smoke --workers 2

The module CLI's ``--verify-parallel`` flag re-runs the suite serially
and on a process pool and fails unless the rendered reports are
byte-identical — the fault subsystem's serial-vs-parallel determinism
check used by the ``faults-smoke`` CI job.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Tuple

from repro.core.params import ProtocolParams, SystemParams
from repro.experiments.executor import TrialExecutor, get_executor
from repro.experiments.profiles import PROFILES, Profile, get_profile
from repro.experiments.runner import (
    ExperimentResult,
    averaged,
    run_guess_config,
)
from repro.faults.plan import FaultPlan

#: Per-probe loss rates swept (0 anchors the fault-free baseline).
LOSS_RATES: Tuple[float, ...] = (0.0, 0.05, 0.20)

#: Retry budgets swept (extra sends after a timeout; 0 = paper behaviour).
RETRY_BUDGETS: Tuple[int, ...] = (0, 2)

#: Shared with policy_comparison's fig9 Random cell: same seed + same
#: default protocol makes the (loss=0, retries=0) cell reproduce the
#: baseline numbers bit-for-bit.
BASE_SEED = 0x909


def _measure_cell(
    profile: Profile,
    loss: float,
    retries: int,
    executor: TrialExecutor | None = None,
    scheduler: str = "heap",
) -> Dict[str, float]:
    """Run one (loss rate, retry budget) cell and fold its metrics."""
    protocol = ProtocolParams(probe_retries=retries)
    reports = run_guess_config(
        SystemParams(network_size=profile.reference_size),
        protocol,
        duration=profile.duration,
        warmup=profile.warmup,
        trials=profile.trials,
        base_seed=BASE_SEED,
        faults=FaultPlan(loss_rate=loss),
        executor=executor,
        scheduler=scheduler,
    )
    return {
        "satisfied": averaged(reports, "satisfaction_rate"),
        "results": averaged(reports, "results_per_query"),
        "probes": averaged(reports, "probes_per_query"),
        "dead": averaged(reports, "dead_probes_per_query"),
        "spurious": averaged(reports, "spurious_timeouts_per_query"),
        "recovery": averaged(reports, "retry_recovery_rate"),
        "live": averaged(reports, "mean_fraction_live"),
        "wrongful": averaged(reports, "wrongful_evictions"),
    }


def _sweep(
    profile: Profile,
    executor: TrialExecutor | None = None,
    scheduler: str = "heap",
) -> Dict[Tuple[float, int], Dict[str, float]]:
    """The full loss × retry grid, cells in deterministic sweep order."""
    return {
        (loss, retries): _measure_cell(
            profile, loss, retries, executor, scheduler
        )
        for retries in RETRY_BUDGETS
        for loss in LOSS_RATES
    }


def run_loss_grid(
    profile: Profile,
    executor: TrialExecutor | None = None,
    scheduler: str = "heap",
) -> List[ExperimentResult]:
    """Both results from one grid sweep (the cells are shared)."""
    cells = _sweep(profile, executor, scheduler)
    rows = tuple(
        (
            loss,
            retries,
            cell["satisfied"],
            cell["results"],
            cell["probes"],
            cell["dead"],
            cell["spurious"],
            cell["recovery"],
            cell["live"],
            cell["wrongful"],
        )
        for (loss, retries), cell in cells.items()
    )
    grid = ExperimentResult(
        experiment_id="loss_grid",
        title="GUESS under packet loss: loss rate × retry budget",
        columns=(
            "LossRate",
            "Retries",
            "Satisfied",
            "Results/Query",
            "Probes/Query",
            "DeadIPs/Query",
            "Spurious/Query",
            "RecoveryRate",
            "FractionLive",
            "WrongfulEvict",
        ),
        rows=rows,
        notes=(
            "loss inflates DeadIPs with spurious timeouts and wrongly "
            "evicts live entries (FractionLive sags); retries claw back "
            "satisfaction at the price of extra probes"
        ),
    )
    satisfaction = ExperimentResult(
        experiment_id="loss_satisfaction",
        title="Query satisfaction vs packet loss, per retry budget",
        series={
            f"retries={retries}": [
                (loss, cells[(loss, retries)]["satisfied"])
                for loss in LOSS_RATES
            ]
            for retries in RETRY_BUDGETS
        },
        x_label="loss rate",
        notes=(
            "satisfaction degrades with loss; a small retry budget "
            "recovers most of it"
        ),
    )
    return [grid, satisfaction]


def run_suite(
    profile: Profile,
    workers: int = 1,
    executor: TrialExecutor | None = None,
    scheduler: str = "heap",
) -> List[ExperimentResult]:
    """``loss_grid`` and ``loss_satisfaction``.

    An explicit ``executor`` (e.g. the supervised executor shared by
    ``run_all --supervise``) overrides ``workers`` and stays open for
    the caller to close.  ``scheduler`` picks the engine event queue
    per trial ("heap" or "wheel"); results are identical either way.
    """
    if executor is None:
        with get_executor(workers) as owned:
            return run_suite(profile, executor=owned, scheduler=scheduler)
    return run_loss_grid(profile, executor, scheduler)


def _render(results: List[ExperimentResult]) -> str:
    return "\n\n".join(result.render() for result in results)


def main(argv: List[str] | None = None) -> int:
    """Module CLI; see the module docstring.  Returns an exit code."""
    parser = argparse.ArgumentParser(
        description="Run the packet-loss robustness suite."
    )
    parser.add_argument(
        "--profile",
        default="smoke",
        choices=sorted(PROFILES),
        help="scale profile (default: smoke)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="trial-level parallelism (0 = one per CPU, default: serial)",
    )
    parser.add_argument(
        "--verify-parallel",
        action="store_true",
        help=(
            "run the suite serially AND on --workers processes and fail "
            "unless the rendered reports are byte-identical"
        ),
    )
    parser.add_argument(
        "--scheduler",
        default="heap",
        choices=("heap", "wheel"),
        help=(
            "engine event queue per trial (default: heap); the wheel is "
            "faster at scale and fires events in exactly the same order"
        ),
    )
    parser.add_argument(
        "--output",
        default=None,
        help="also write the rendered results to this file",
    )
    args = parser.parse_args(argv)
    if args.workers < 0:
        parser.error(f"--workers must be >= 0, got {args.workers}")
    profile = get_profile(args.profile)

    if args.verify_parallel:
        if args.workers == 1:
            parser.error("--verify-parallel needs --workers N (N != 1)")
        serial = _render(run_suite(profile, workers=1, scheduler=args.scheduler))
        parallel = _render(
            run_suite(profile, workers=args.workers, scheduler=args.scheduler)
        )
        if serial != parallel:
            print("FAIL: serial and parallel reports differ", file=sys.stderr)
            return 1
        print(f"serial == workers={args.workers}: reports byte-identical")
        text = serial
    else:
        text = _render(
            run_suite(profile, workers=args.workers, scheduler=args.scheduler)
        )

    print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
