"""Ping-interval / connectivity experiments: Figures 6 and 7 (paper §6.1).

To isolate the effect of Pings, queries are disabled (``QueryRate = 0``)
exactly as the paper does.  The metric is the size of the largest
connected component (LCC) of the conceptual overlay after the network has
churned for a while under a given PingInterval.

Expected shapes:

* Figure 6 — smaller PingIntervals keep the overlay connected; as the
  interval grows the overlay fragments, and *small caches fragment
  first* (few pointers, so each dead one hurts; the absolute number of
  live pointers is what carries connectivity).
* Figure 7 — at CacheSize 20, the *relative* LCC-vs-PingInterval curve
  is nearly independent of NetworkSize.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.network_sim import GuessSimulation
from repro.core.params import ProtocolParams, SystemParams
from repro.experiments.executor import TrialExecutor, get_executor
from repro.experiments.profiles import Profile
from repro.experiments.runner import ExperimentResult
from repro.metrics.summary import mean
from repro.sim.rng import derive_seed

#: Churn stress for the connectivity sweeps.  The paper does not restate
#: the multiplier for Figures 6-7; at the unscaled (multiplier 1)
#: Gnutella session times the overlay never fragments within the paper's
#: PingInterval range, while 0.1 reproduces the figure's regime: visible
#: fragmentation that hits the smallest caches first and deepest.
CHURN_STRESS_MULTIPLIER = 0.1

#: Figure 6 sweeps these cache sizes at the reference NetworkSize.
FIG6_CACHE_SIZES = (10, 20, 50, 100, 200, 500)

#: Figure 7 fixes CacheSize at 20 and sweeps NetworkSize.
FIG7_CACHE_SIZE = 20

#: Snapshots averaged per run (taken in the final third of the run).
SNAPSHOTS_PER_RUN = 3


def _lcc_trial(spec: tuple) -> List[float]:
    """One ping-only trial's late-run LCC snapshots (picklable worker)."""
    network_size, cache_size, ping_interval, duration, seed = spec
    system = SystemParams(
        network_size=network_size,
        query_rate=0.0,
        lifespan_multiplier=CHURN_STRESS_MULTIPLIER,
    )
    protocol = ProtocolParams(
        cache_size=min(cache_size, network_size),
        ping_interval=ping_interval,
    )
    sim = GuessSimulation(
        system,
        protocol,
        seed=seed,
        health_sample_interval=None,  # no metrics needed; LCC only
    )
    # Let churn and maintenance reach steady state, then sample the
    # LCC a few times across the final third of the run.
    sim.run(duration * 2.0 / 3.0)
    step = duration / 3.0 / SNAPSHOTS_PER_RUN
    lccs: List[float] = []
    for _ in range(SNAPSHOTS_PER_RUN):
        sim.run(step)
        lccs.append(float(sim.snapshot_overlay().largest_component_size()))
    return lccs


def measure_lcc(
    network_size: int,
    cache_size: int,
    ping_interval: float,
    *,
    duration: float,
    trials: int,
    base_seed: int = 0,
    executor: TrialExecutor | None = None,
) -> float:
    """Mean largest-connected-component size for one configuration.

    Runs a ping-only network (no queries) and averages the LCC over
    several late-run snapshots and over trials.  Trials are independent
    (seeds derived here, snapshots concatenated in trial order), so a
    process-backed ``executor`` yields the identical mean.
    """
    specs = [
        (
            network_size,
            cache_size,
            ping_interval,
            duration,
            derive_seed(base_seed, f"lcc:{trial}"),
        )
        for trial in range(trials)
    ]
    if executor is None:
        chunks = [_lcc_trial(spec) for spec in specs]
    else:
        chunks = executor.map(_lcc_trial, specs)
    return mean([lcc for chunk in chunks for lcc in chunk])


def run_fig6(
    profile: Profile, executor: TrialExecutor | None = None
) -> ExperimentResult:
    """Figure 6: LCC vs PingInterval, one series per CacheSize."""
    n = profile.reference_size
    series: Dict[str, List[Tuple[float, float]]] = {}
    for cache in FIG6_CACHE_SIZES:
        if cache > n:
            continue
        label = f"CacheSize={cache}"
        for interval in profile.ping_intervals:
            lcc = measure_lcc(
                n,
                cache,
                interval,
                duration=profile.total_time,
                trials=profile.trials,
                base_seed=cache * 7919,
                executor=executor,
            )
            series.setdefault(label, []).append((interval, lcc))
    return ExperimentResult(
        experiment_id="fig6",
        title="Small cache sizes are most negatively affected by long ping intervals",
        series=series,
        x_label="PingInterval",
        notes=(
            "LCC shrinks as PingInterval grows; the smallest caches "
            "fragment first (absolute live-pointer count drives connectivity)"
        ),
    )


def run_fig7(
    profile: Profile, executor: TrialExecutor | None = None
) -> ExperimentResult:
    """Figure 7: relative LCC vs PingInterval, one series per NetworkSize."""
    series: Dict[str, List[Tuple[float, float]]] = {}
    for n in profile.network_sizes:
        label = f"N={n}"
        for interval in profile.ping_intervals:
            lcc = measure_lcc(
                n,
                FIG7_CACHE_SIZE,
                interval,
                duration=profile.total_time,
                trials=profile.trials,
                base_seed=n * 104729,
                executor=executor,
            )
            series.setdefault(label, []).append((interval, lcc / n))
    return ExperimentResult(
        experiment_id="fig7",
        title="Selection of ping interval is largely independent of network size",
        series=series,
        x_label="PingInterval",
        notes=(
            "relative LCC curves for different NetworkSizes roughly "
            "coincide at CacheSize 20"
        ),
    )


def run_suite(
    profile: Profile,
    workers: int = 1,
    executor: TrialExecutor | None = None,
) -> List[ExperimentResult]:
    """Figures 6 and 7.

    An explicit ``executor`` (e.g. the supervised executor shared by
    ``run_all --supervise``) overrides ``workers`` and stays open for
    the caller to close.
    """
    if executor is None:
        with get_executor(workers) as owned:
            return run_suite(profile, executor=owned)
    return [run_fig6(profile, executor), run_fig7(profile, executor)]
