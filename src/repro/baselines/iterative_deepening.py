"""Iterative deepening — the coarse-grained flexible extent baseline.

Yang & Garcia-Molina's iterative deepening [22] floods at a small TTL
first, and re-floods at successively larger TTLs until the query is
satisfied.  Its control over extent is therefore *coarse*: "many peers
(e.g., hundreds) are probed in each iteration, instead of just one"
(paper Section 6.2).  Two cost characteristics distinguish it from
GUESS:

* each deeper flood **re-visits** all previously reached peers (the new
  flood is a superset of the old one), so costs accumulate across
  iterations;
* within one iteration the whole extent is charged even if the first
  probed peer would have answered.

The implementation mirrors the statistical extent machinery of the
fixed-extent baseline: successive floods reach nested random supersets,
so a query's fate is fully determined by the position of the first owner
in a random peer ordering.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.baselines.extent import PopulationView
from repro.errors import WorkloadError
from repro.metrics.summary import mean

#: Default extent schedule: hundreds of peers per iteration, per the
#: paper's description of the technique.
DEFAULT_EXTENT_SCHEDULE = (100, 250, 500, 1000)


@dataclass(frozen=True)
class IterativeDeepeningSearch:
    """The iterative-deepening mechanism for a given extent schedule.

    Args:
        view: population snapshot.
        schedule: strictly increasing flood extents; the last entry is
            the give-up point.  Entries are clamped to the population
            size at evaluation time (a flood cannot reach more peers than
            exist).
    """

    view: PopulationView
    schedule: Tuple[int, ...] = DEFAULT_EXTENT_SCHEDULE

    def __post_init__(self) -> None:
        if not self.schedule:
            raise WorkloadError("schedule must be non-empty")
        if any(e < 1 for e in self.schedule):
            raise WorkloadError(f"extents must be >= 1, got {self.schedule}")
        if list(self.schedule) != sorted(set(self.schedule)):
            raise WorkloadError(
                f"schedule must be strictly increasing, got {self.schedule}"
            )

    def _clamped_schedule(self) -> List[int]:
        n = self.view.size
        clamped = sorted({min(extent, n) for extent in self.schedule})
        return clamped

    def run(self, target: int, rng: random.Random) -> Tuple[int, bool]:
        """One sampled query: returns ``(total cost, satisfied)``.

        Successive floods reach nested supersets, so the query succeeds
        at the first scheduled extent that covers the first owner's
        position in a random peer ordering.  Cost sums every flood
        attempted (re-flooding re-visits earlier peers).
        """
        owners = self.view.owners_of(target)
        position = self.view.sample_first_owner_position(owners, rng)
        cost = 0
        for extent in self._clamped_schedule():
            cost += extent
            if position is not None and position <= extent:
                return cost, True
        return cost, False

    def evaluate(
        self, targets: Sequence[int], rng: random.Random
    ) -> Tuple[float, float]:
        """Mean ``(cost, unsat rate)`` over ``targets`` (Figure 8's point)."""
        if not targets:
            raise WorkloadError("need at least one query target")
        costs: List[float] = []
        unsatisfied = 0
        for target in targets:
            cost, satisfied = self.run(target, rng)
            costs.append(float(cost))
            if not satisfied:
                unsatisfied += 1
        return mean(costs), unsatisfied / len(targets)

    def expected_cost_curve(self, target: int) -> Tuple[float, float]:
        """Analytic ``(expected cost, unsat probability)`` for one target.

        Uses the exact hypergeometric no-owner-within-extent
        probabilities, avoiding sampling noise where the experiment wants
        smooth numbers.
        """
        owners = self.view.owners_of(target)
        schedule = self._clamped_schedule()
        max_extent = schedule[-1]
        if owners == 0:
            return float(sum(schedule)), 1.0
        curve = self.view.unsat_probability_curve(owners, max_extent)
        expected_cost = 0.0
        reach_round_p = 1.0  # P(still unsatisfied when this round starts)
        for index, extent in enumerate(schedule):
            expected_cost += reach_round_p * extent
            reach_round_p = curve[extent - 1]
        return expected_cost, curve[schedule[-1] - 1]
