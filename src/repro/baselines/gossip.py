"""Gossip (rumor-spreading) search baselines + the gossip-assisted relay.

Two related mechanisms live here, both driven exclusively by ``gossip:*``
RNG substreams (statically enforced by an RD007 contract in
``effect_contracts.toml``):

* :class:`GossipSearch` — a standalone push/pull/push-pull rumor-spreading
  query baseline over a :class:`~repro.baselines.gnutella.GnutellaOverlay`
  and :class:`~repro.baselines.extent.PopulationView`, the epidemic
  alternative the paper's related-work section (§7) flags but does not
  evaluate (Jaho et al.; Ferretti).  A query is a rumor: each round every
  active peer contacts ``fanout`` random neighbours, infection is
  deduplicated per query (a peer joins the infection tree at most once),
  and results are gossiped back to the originator along the infection
  edges.

* :class:`GossipPlan` / :class:`GossipRelay` — the **gossip-assisted
  GUESS** hybrid: instead of a harvested pong being consumed only by the
  probing peer, the harvest is epidemically disseminated to ``fanout``
  link-cache contacts per hop for ``ttl`` hops (the wiring lives in
  :mod:`repro.core.network_sim`).  :meth:`GossipRelay.from_plan` returns
  ``None`` for disabled plans, mirroring the
  :meth:`repro.faults.FaultInjector.from_plan` convention, so a
  ``fanout=0`` plan keeps the exact pre-gossip code path and the golden
  trace digests stay bit-identical.

Message accounting
------------------

One gossip contact is one request/response *exchange* — the same message
unit as a GUESS probe (query + reply) and as
:meth:`~repro.baselines.gnutella.GnutellaOverlay.flood_query`'s
one-message-per-reached-peer cost.  Result reports flow back up the
infection tree as the (aggregated) response legs of the exchanges that
built it, so they cost no additional message units.  Total messages per
query are therefore bounded by ``n * fanout * rounds`` in every mode:
each peer initiates at most ``fanout`` exchanges per round, for at most
``rounds`` rounds (the TTL).

Adversary semantics (à la Consenzus)
------------------------------------

A *faulty reporter* is a peer with a real library that misreports result
counts: in ``"inflate"`` mode it adds ``report_offset`` to its true count
(so even non-owners claim results); in ``"suppress"`` mode it reports
zero, refuses to share the rumor, and drops result reports relayed
through it.  Honest satisfaction accounting is preserved throughout:
outcomes carry both the *claimed* result count (what the originator
perceives) and the *honest* one (true owners whose reports survived the
return path), and satisfaction is judged on the honest channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.baselines.extent import PopulationView
from repro.baselines.gnutella import GnutellaOverlay
from repro.errors import TopologyError, WorkloadError
from repro.sim.rng import RngRegistry
from repro.workload.content import ContentModel

#: Rumor-spreading variants: who initiates contacts each round.
GOSSIP_MODES: Tuple[str, ...] = ("push", "pull", "push-pull")

#: Faulty-reporter behaviours (see module docstring).
FAULTY_MODES: Tuple[str, ...] = ("inflate", "suppress")


@dataclass(frozen=True)
class GossipParams:
    """Knobs of the standalone rumor-spreading baseline.

    Attributes:
        mode: ``"push"`` (infected peers spread), ``"pull"`` (susceptible
            peers poll), or ``"push-pull"`` (both).
        fanout: contacts each active peer initiates per round (``k``).
        rounds: rumor TTL in rounds; spreading stops after this many.
        desired_results: results needed for a query to be satisfied.
        faulty_fraction: fraction of peers that are faulty reporters.
        faulty_mode: ``"inflate"`` or ``"suppress"`` (module docstring).
        report_offset: count added by inflating reporters.
    """

    mode: str = "push"
    fanout: int = 2
    rounds: int = 4
    desired_results: int = 1
    faulty_fraction: float = 0.0
    faulty_mode: str = "inflate"
    report_offset: int = 3

    def __post_init__(self) -> None:
        if self.mode not in GOSSIP_MODES:
            raise WorkloadError(
                f"mode must be one of {GOSSIP_MODES}, got {self.mode!r}"
            )
        if self.fanout < 1:
            raise WorkloadError(f"fanout must be >= 1, got {self.fanout}")
        if self.rounds < 1:
            raise WorkloadError(f"rounds must be >= 1, got {self.rounds}")
        if self.desired_results < 1:
            raise WorkloadError(
                f"desired_results must be >= 1, got {self.desired_results}"
            )
        if not 0.0 <= self.faulty_fraction <= 1.0:
            raise WorkloadError(
                "faulty_fraction must be in [0, 1], "
                f"got {self.faulty_fraction}"
            )
        if self.faulty_mode not in FAULTY_MODES:
            raise WorkloadError(
                f"faulty_mode must be one of {FAULTY_MODES}, "
                f"got {self.faulty_mode!r}"
            )
        if self.report_offset < 1:
            raise WorkloadError(
                f"report_offset must be >= 1, got {self.report_offset}"
            )


@dataclass(frozen=True)
class GossipQueryOutcome:
    """One rumor query, fully accounted.

    Attributes:
        satisfied: honest satisfaction — true owners whose reports
            survived the return path met ``desired_results``.
        claimed_results: result count as perceived by the originator
            (inflated/deflated by faulty reporters).
        honest_results: true owners whose reports were delivered.
        messages: rumor exchanges initiated (module docstring for the
            unit); bounded by ``n * fanout * rounds``.
        duplicates: exchanges that reached an already-infected peer.
        infected: peers that joined the infection tree (source included).
        rounds_used: rounds before the rumor died or the TTL expired.
        reporters: infected true owners whose reports were delivered,
            in infection order — duplicate-free by construction.
        suppressed_reports: reports dropped by suppressing reporters or
            suppressing relays on the return path.
    """

    satisfied: bool
    claimed_results: int
    honest_results: int
    messages: int
    duplicates: int
    infected: int
    rounds_used: int
    reporters: Tuple[int, ...]
    suppressed_reports: int


@dataclass(frozen=True)
class GossipSummary:
    """Workload-level aggregate of :class:`GossipQueryOutcome` records."""

    queries: int
    satisfaction_rate: float
    claimed_results_per_query: float
    honest_results_per_query: float
    messages_per_query: float
    duplicates_per_query: float
    mean_infected: float
    max_load: int
    suppressed_reports: int


class GossipSearch:
    """Push/pull/push-pull rumor-spreading search over an overlay.

    Args:
        overlay: the neighbour structure (indices aligned with ``view``).
        view: live peers and their libraries.
        params: rumor knobs (:class:`GossipParams`).
        rng: the run's stream registry; this class only ever touches
            ``gossip:*`` streams (``gossip:spread`` for contact choices,
            ``gossip:roles`` for the faulty-reporter roster,
            ``gossip:workload`` for query sources).

    Per-peer message load accumulates across queries in :attr:`loads`
    (one unit per exchange a peer *receives*, matching the GUESS
    ``probes_received`` semantics).
    """

    def __init__(
        self,
        overlay: GnutellaOverlay,
        view: PopulationView,
        params: GossipParams,
        rng: RngRegistry,
    ) -> None:
        if view.size != overlay.n:
            raise TopologyError(
                f"view size {view.size} does not match overlay size {overlay.n}"
            )
        self.overlay = overlay
        self.view = view
        self.params = params
        self._spread_rng = rng.stream("gossip:spread")
        self._workload_rng = rng.stream("gossip:workload")
        # Sorted adjacency so sampling order never depends on set layout.
        self._neighbors: List[List[int]] = [
            sorted(overlay.neighbors(v)) for v in range(overlay.n)
        ]
        count = round(params.faulty_fraction * overlay.n)
        self.faulty: FrozenSet[int] = (
            frozenset(rng.stream("gossip:roles").sample(range(overlay.n), count))
            if count
            else frozenset()
        )
        self.loads: List[int] = [0] * overlay.n

    # ------------------------------------------------------------------
    # One query
    # ------------------------------------------------------------------

    def run_query(self, source: int, target: int) -> GossipQueryOutcome:
        """Spread one rumor from ``source`` asking for ``target``."""
        if not 0 <= source < self.overlay.n:
            raise TopologyError(f"source {source} out of range")
        params = self.params
        rng = self._spread_rng
        suppressors: FrozenSet[int] = (
            self.faulty if params.faulty_mode == "suppress" else frozenset()
        )
        # Infection tree: peer -> infection parent; order = infection order.
        parent: Dict[int, Optional[int]] = {source: None}
        order: List[int] = [source]
        messages = 0
        duplicates = 0
        rounds_used = 0
        n = self.overlay.n
        push = params.mode in ("push", "push-pull")
        pull = params.mode in ("pull", "push-pull")
        for _ in range(params.rounds):
            if len(parent) == n:
                break  # rumor saturated: nothing left to learn
            rounds_used += 1
            # Deterministic sender order: infection order for pushers,
            # index order for pullers.
            if push:
                for sender in list(order):
                    if sender in suppressors:
                        continue  # suppressors never share the rumor
                    for contact in self._pick_contacts(sender):
                        messages += 1
                        self.loads[contact] += 1
                        if contact in parent:
                            duplicates += 1
                        else:
                            parent[contact] = sender
                            order.append(contact)
            if pull:
                for sender in range(n):
                    if sender in parent:
                        continue  # infected (possibly just now): no poll
                    for contact in self._pick_contacts(sender):
                        messages += 1
                        self.loads[contact] += 1
                        if contact not in parent or contact in suppressors:
                            continue  # nothing to learn from this poll
                        if sender in parent:
                            duplicates += 1
                        else:
                            parent[sender] = contact
                            order.append(sender)
        return self._collect_results(
            source, target, parent, order, suppressors,
            messages, duplicates, rounds_used,
        )

    def _pick_contacts(self, sender: int) -> List[int]:
        """``fanout`` distinct neighbours of ``sender`` (all, if fewer)."""
        neighbors = self._neighbors[sender]
        if len(neighbors) <= self.params.fanout:
            return neighbors
        return self._spread_rng.sample(neighbors, self.params.fanout)

    def _collect_results(
        self,
        source: int,
        target: int,
        parent: Dict[int, Optional[int]],
        order: List[int],
        suppressors: FrozenSet[int],
        messages: int,
        duplicates: int,
        rounds_used: int,
    ) -> GossipQueryOutcome:
        """Gossip reports back along infection edges (response legs)."""
        params = self.params
        claimed = 0
        honest = 0
        suppressed = 0
        reporters: List[int] = []
        for node in order[1:]:  # the source does not report to itself
            owns = ContentModel.matches(self.view.libraries[node], target)
            true_count = 1 if owns else 0
            if node in self.faulty:
                if params.faulty_mode == "suppress":
                    if true_count:
                        suppressed += 1
                    continue
                node_claim = true_count + params.report_offset
            else:
                node_claim = true_count
            if node_claim == 0:
                continue  # nothing to report
            delivered = True
            hop = parent[node]
            while hop is not None and hop != source:
                if hop in suppressors:
                    delivered = False
                    suppressed += 1
                    break
                hop = parent[hop]
            if not delivered:
                continue
            claimed += node_claim
            honest += true_count
            if true_count:
                reporters.append(node)
        return GossipQueryOutcome(
            satisfied=honest >= params.desired_results,
            claimed_results=claimed,
            honest_results=honest,
            messages=messages,
            duplicates=duplicates,
            infected=len(parent),
            rounds_used=rounds_used,
            reporters=tuple(reporters),
            suppressed_reports=suppressed,
        )

    # ------------------------------------------------------------------
    # Workloads
    # ------------------------------------------------------------------

    def run_workload(self, queries: int) -> GossipSummary:
        """Run ``queries`` rumor queries from random sources.

        Sources and targets come from the ``gossip:workload`` stream, so
        two mechanisms built from the same registry seed see the same
        query workload.
        """
        if queries < 1:
            raise WorkloadError(f"queries must be >= 1, got {queries}")
        rng = self._workload_rng
        outcomes = [
            self.run_query(
                rng.randrange(self.overlay.n),
                self.view.content.draw_query_target(rng),
            )
            for _ in range(queries)
        ]
        return GossipSummary(
            queries=queries,
            satisfaction_rate=sum(o.satisfied for o in outcomes) / queries,
            claimed_results_per_query=(
                sum(o.claimed_results for o in outcomes) / queries
            ),
            honest_results_per_query=(
                sum(o.honest_results for o in outcomes) / queries
            ),
            messages_per_query=sum(o.messages for o in outcomes) / queries,
            duplicates_per_query=sum(o.duplicates for o in outcomes) / queries,
            mean_infected=sum(o.infected for o in outcomes) / queries,
            max_load=max(self.loads),
            suppressed_reports=sum(o.suppressed_reports for o in outcomes),
        )


# ----------------------------------------------------------------------
# Gossip-assisted GUESS
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class GossipPlan:
    """Epidemic pong dissemination for GUESS (picklable, frozen).

    A harvested pong is normally consumed only by the probing peer; with
    an enabled plan the harvest is also pushed to ``fanout`` link-cache
    contacts per hop, for ``ttl`` hops, each hop ``hop_delay`` seconds
    after the previous one (through the engine, so both schedulers and
    the fault layer apply).

    ``fanout=0`` or ``ttl=0`` is the documented no-op: the simulation
    keeps the exact pre-gossip code path (:meth:`GossipRelay.from_plan`
    returns ``None``) and trace digests are bit-identical to a run with
    no plan at all.
    """

    fanout: int = 0
    ttl: int = 1
    hop_delay: float = 0.05

    def __post_init__(self) -> None:
        if self.fanout < 0:
            raise WorkloadError(f"fanout must be >= 0, got {self.fanout}")
        if self.ttl < 0:
            raise WorkloadError(f"ttl must be >= 0, got {self.ttl}")
        if self.hop_delay <= 0:
            raise WorkloadError(
                f"hop_delay must be > 0, got {self.hop_delay}"
            )

    def is_noop(self) -> bool:
        """True when the plan cannot disseminate anything."""
        return self.fanout == 0 or self.ttl == 0


class GossipRelay:
    """Contact selection for gossip-assisted GUESS dissemination.

    Holds the plan and the single ``gossip:relay`` stream all hybrid-mode
    randomness comes from; the event wiring lives in
    :class:`~repro.core.network_sim.GuessSimulation`.  Build via
    :meth:`from_plan`, which returns ``None`` for disabled plans.
    """

    __slots__ = ("plan", "_rng")

    def __init__(self, plan: GossipPlan, rng: RngRegistry) -> None:
        self.plan = plan
        self._rng = rng.stream("gossip:relay")

    @classmethod
    def from_plan(
        cls, plan: Optional[GossipPlan], rng: RngRegistry
    ) -> Optional["GossipRelay"]:
        """The relay for ``plan``, or None if the plan can do nothing.

        Returning None (not an inert relay) is what makes the disabled
        plan contractually invisible: the ping path's pre-gossip branch
        is taken unchanged, with zero extra draws or scheduled events.
        """
        if plan is None or plan.is_noop():
            return None
        return cls(plan, rng)

    def pick_targets(
        self, candidates: Sequence[object], seen: Set[object]
    ) -> List[object]:
        """Up to ``fanout`` addresses from ``candidates`` not yet rumored.

        ``candidates`` must arrive in a deterministic order (link caches
        iterate in insertion order); the sample preserves determinism by
        drawing only from the ``gossip:relay`` stream.
        """
        fresh = [address for address in candidates if address not in seen]
        if len(fresh) <= self.plan.fanout:
            return fresh
        return self._rng.sample(fresh, self.plan.fanout)
