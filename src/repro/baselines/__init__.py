"""Forwarding-based baselines the paper compares GUESS against.

* :mod:`repro.baselines.extent` — the shared population view and the
  analytic machinery for "a query reaches E peers" semantics.
* :mod:`repro.baselines.gnutella` — fixed-extent flooding (Gnutella):
  cost is always the full extent, adaptivity is zero.
* :mod:`repro.baselines.iterative_deepening` — coarse-grained flexible
  extent: successive re-floods at growing extents (Yang & Garcia-Molina
  [22]).

These drive Figure 8's cost/unsatisfaction tradeoff curves.
"""

from repro.baselines.extent import PopulationView
from repro.baselines.gnutella import (
    FixedExtentSearch,
    GnutellaOverlay,
    fixed_extent_tradeoff,
)
from repro.baselines.iterative_deepening import IterativeDeepeningSearch

__all__ = [
    "PopulationView",
    "FixedExtentSearch",
    "GnutellaOverlay",
    "fixed_extent_tradeoff",
    "IterativeDeepeningSearch",
]
