"""Forwarding-based baselines the paper compares GUESS against.

* :mod:`repro.baselines.extent` — the shared population view and the
  analytic machinery for "a query reaches E peers" semantics.
* :mod:`repro.baselines.gnutella` — fixed-extent flooding (Gnutella):
  cost is always the full extent, adaptivity is zero.
* :mod:`repro.baselines.iterative_deepening` — coarse-grained flexible
  extent: successive re-floods at growing extents (Yang & Garcia-Molina
  [22]).
* :mod:`repro.baselines.gossip` — rumor-spreading (push/pull/push-pull)
  search, plus the :class:`~repro.baselines.gossip.GossipPlan` arming
  gossip-assisted GUESS in :mod:`repro.core.network_sim`.

These drive Figure 8's cost/unsatisfaction tradeoff curves and the
gossip-search comparison suite.
"""

from repro.baselines.extent import PopulationView
from repro.baselines.gnutella import (
    FixedExtentSearch,
    GnutellaOverlay,
    fixed_extent_tradeoff,
)
from repro.baselines.gossip import (
    GossipParams,
    GossipPlan,
    GossipRelay,
    GossipSearch,
    GossipSummary,
)
from repro.baselines.iterative_deepening import IterativeDeepeningSearch

__all__ = [
    "PopulationView",
    "FixedExtentSearch",
    "GnutellaOverlay",
    "fixed_extent_tradeoff",
    "GossipParams",
    "GossipPlan",
    "GossipRelay",
    "GossipSearch",
    "GossipSummary",
    "IterativeDeepeningSearch",
]
