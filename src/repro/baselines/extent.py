"""Shared population view for extent-based (forwarding) baselines.

Forwarding mechanisms are insensitive to link-cache state — a flood
reaches whichever peers sit within the TTL radius, which for the random
overlays Gnutella forms is statistically a random subset of the live
population.  The baselines therefore operate on a :class:`PopulationView`:
the live peers, their libraries, and the content model, either captured
from a running :class:`~repro.core.network_sim.GuessSimulation` (so GUESS
and the baselines see the *same* network state) or synthesised directly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import FrozenSet, List, Tuple

from repro.errors import WorkloadError
from repro.workload.content import ContentModel
from repro.workload.files import FileCountModel


@dataclass(frozen=True)
class PopulationView:
    """An immutable snapshot of live peers and their libraries.

    Attributes:
        libraries: one frozenset of owned file ranks per live peer.
        content: the content model that generated them (supplies query
            targets).
    """

    libraries: Tuple[FrozenSet[int], ...]
    content: ContentModel

    @property
    def size(self) -> int:
        """Number of live peers."""
        return len(self.libraries)

    @classmethod
    def from_simulation(cls, sim) -> "PopulationView":
        """Capture the live good peers of a running GUESS simulation."""
        libraries = tuple(
            peer.library for peer in sim.live_peers if not peer.malicious
        )
        return cls(libraries=libraries, content=sim.content)

    @classmethod
    def synthesize(
        cls,
        n: int,
        rng: random.Random,
        content: ContentModel | None = None,
        files: FileCountModel | None = None,
    ) -> "PopulationView":
        """Generate a fresh population of ``n`` peers.

        Uses the same file-count and content models as the GUESS
        simulation, so baseline and protocol results are comparable.
        """
        if n < 1:
            raise WorkloadError(f"population size must be >= 1, got {n}")
        content = content or ContentModel()
        files = files or FileCountModel()
        libraries = tuple(
            content.build_library(rng, files.sample(rng)) for _ in range(n)
        )
        return cls(libraries=libraries, content=content)

    # ------------------------------------------------------------------
    # Query machinery shared by the baselines
    # ------------------------------------------------------------------

    def owners_of(self, target: int) -> int:
        """How many peers own ``target`` (0 for nonexistent items)."""
        return sum(
            1
            for library in self.libraries
            if ContentModel.matches(library, target)
        )

    def draw_query_targets(
        self, rng: random.Random, count: int
    ) -> List[int]:
        """Draw ``count`` query targets from the content model."""
        if count < 0:
            raise WorkloadError(f"count must be >= 0, got {count}")
        return [self.content.draw_query_target(rng) for _ in range(count)]

    def unsat_probability_curve(
        self, owner_count: int, max_extent: int
    ) -> List[float]:
        """P(no owner among E uniformly chosen peers), for E = 1..max_extent.

        The exact without-replacement (hypergeometric) recurrence::

            P_0 = 1
            P_E = P_{E-1} * (N - m - (E-1)) / (N - (E-1))

        where ``N`` is the population and ``m`` the number of owners.
        This is the analytic core of the fixed-extent baseline: a flood
        reaching E peers fails iff none of them owns the target.
        """
        n = self.size
        if not 0 <= owner_count <= n:
            raise WorkloadError(
                f"owner_count must be in [0, {n}], got {owner_count}"
            )
        if max_extent < 1 or max_extent > n:
            raise WorkloadError(
                f"max_extent must be in [1, {n}], got {max_extent}"
            )
        curve: List[float] = []
        p = 1.0
        for drawn in range(max_extent):
            remaining = n - drawn
            non_owners_left = n - owner_count - drawn
            p *= max(0.0, non_owners_left) / remaining
            curve.append(p)
        return curve

    def sample_first_owner_position(
        self, owner_count: int, rng: random.Random
    ) -> int | None:
        """Position (1-based) of the first owner in a random probe order.

        Simulates drawing peers uniformly without replacement until an
        owner appears; returns None when there is no owner at all.  Used
        by the iterative-deepening baseline, whose successive floods
        reach nested supersets of peers.
        """
        if owner_count <= 0:
            return None
        n = self.size
        remaining_owners = owner_count
        for position in range(1, n + 1):
            remaining_peers = n - position + 1
            if rng.random() < remaining_owners / remaining_peers:
                return position
        # Float round-off could in principle leak past the loop; the last
        # remaining peer must be an owner if we got here with owners left.
        return n
