"""Gnutella-style fixed-extent flooding (paper Sections 3.1 and 6.2).

Gnutella's location and extent are fixed by topology: a query reaches
"whichever peers happen to be within a certain radius of the originator",
costs that full radius regardless of the item's popularity, and cannot
stop early.  Two granularities are provided:

* :class:`GnutellaOverlay` — an explicit random overlay with TTL-bounded
  flooding (used by tests and the response-time extension analyses);
* :class:`FixedExtentSearch` / :func:`fixed_extent_tradeoff` — the
  statistical equivalent the paper sweeps in Figure 8: a query reaching
  extent ``E`` costs ``E`` probes and fails iff none of ``E`` uniformly
  chosen peers owns the target.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.baselines.extent import PopulationView
from repro.errors import TopologyError, WorkloadError
from repro.workload.content import ContentModel


class GnutellaOverlay:
    """A connected random overlay with TTL-bounded flooding.

    Args:
        n: number of peers (indices 0..n-1 aligned with a
            :class:`PopulationView`'s libraries).
        degree: connections per peer (Gnutella clients default to a small
            handful; 4 is typical).
        rng: topology randomness.

    The graph is built as a random Hamiltonian cycle (guaranteeing
    connectivity) plus random chords up to the target degree — the
    standard way to get a connected near-regular random graph.
    """

    def __init__(self, n: int, degree: int, rng: random.Random) -> None:
        if n < 2:
            raise TopologyError(f"overlay needs >= 2 peers, got {n}")
        if degree < 2:
            raise TopologyError(f"degree must be >= 2, got {degree}")
        if degree >= n:
            raise TopologyError(
                f"degree {degree} must be < number of peers {n}"
            )
        self.n = n
        self.degree = degree
        self._neighbors: List[Set[int]] = [set() for _ in range(n)]
        # Hamiltonian cycle for guaranteed connectivity.
        order = list(range(n))
        rng.shuffle(order)
        for i in range(n):
            a, b = order[i], order[(i + 1) % n]
            self._neighbors[a].add(b)
            self._neighbors[b].add(a)
        # Random chords until everyone is at (or near) the target degree.
        attempts = 0
        max_attempts = n * degree * 20
        deficient = [v for v in range(n) if len(self._neighbors[v]) < degree]
        while deficient and attempts < max_attempts:
            attempts += 1
            a = deficient[rng.randrange(len(deficient))]
            b = rng.randrange(n)
            if a == b or b in self._neighbors[a]:
                continue
            if len(self._neighbors[b]) >= degree + 2:
                continue
            self._neighbors[a].add(b)
            self._neighbors[b].add(a)
            deficient = [
                v for v in range(n) if len(self._neighbors[v]) < degree
            ]

    @classmethod
    def power_law(
        cls, n: int, attach: int, rng: random.Random
    ) -> "GnutellaOverlay":
        """A preferential-attachment (Barabási-Albert) overlay.

        The paper (§3.3) attributes Gnutella's fragmentation weakness to
        the power-law topology "that naturally arises from peers' local
        connection decisions" — highly connected hubs whose removal
        shatters the network.  This builder grows exactly that topology:
        each arriving peer attaches to ``attach`` existing peers chosen
        proportionally to their current degree.

        Args:
            n: number of peers.
            attach: links each newcomer creates (>= 1, < n).
            rng: topology randomness.

        Returns:
            An overlay instance (``degree`` reports the attachment
            parameter; realised degrees are heavy-tailed by design).
        """
        if n < 3:
            raise TopologyError(f"power-law overlay needs >= 3 peers, got {n}")
        if not 1 <= attach < n:
            raise TopologyError(
                f"attach must be in [1, {n - 1}], got {attach}"
            )
        overlay = cls.__new__(cls)
        overlay.n = n
        overlay.degree = attach
        overlay._neighbors = [set() for _ in range(n)]
        # Seed clique of attach+1 nodes.
        seed_size = attach + 1
        for a in range(seed_size):
            for b in range(a + 1, seed_size):
                overlay._neighbors[a].add(b)
                overlay._neighbors[b].add(a)
        # Degree-proportional sampling via the repeated-endpoints list.
        endpoints: List[int] = []
        for node in range(seed_size):
            endpoints.extend([node] * len(overlay._neighbors[node]))
        for newcomer in range(seed_size, n):
            chosen: Set[int] = set()
            attempts = 0
            while len(chosen) < attach and attempts < attach * 50:
                attempts += 1
                chosen.add(endpoints[rng.randrange(len(endpoints))])
            for node in chosen:
                overlay._neighbors[newcomer].add(node)
                overlay._neighbors[node].add(newcomer)
                endpoints.append(node)
                endpoints.append(newcomer)
        return overlay

    def neighbors(self, peer: int) -> Set[int]:
        """The neighbor set of ``peer``."""
        return set(self._neighbors[peer])

    def degree_sequence(self) -> List[int]:
        """Realised degrees, descending (power-law overlays: heavy head)."""
        return sorted(
            (len(neighbors) for neighbors in self._neighbors), reverse=True
        )

    def lcc_after_removal(self, doomed: Set[int]) -> int:
        """Largest connected component after deleting ``doomed`` peers.

        The §3.3 fragmentation-attack metric, applied to this overlay.
        """
        from repro.network.unionfind import UnionFind

        survivors = [v for v in range(self.n) if v not in doomed]
        if not survivors:
            return 0
        uf = UnionFind(survivors)
        for v in survivors:
            for neighbor in self._neighbors[v]:
                if neighbor not in doomed:
                    uf.union(v, neighbor)
        return uf.largest_component_size()

    def flood_reach(self, source: int, ttl: int) -> List[int]:
        """Peers reached by a TTL-bounded flood from ``source``.

        Returns peers in BFS order, excluding the source itself (a peer
        does not message itself), matching Gnutella's hop-count
        semantics: TTL 1 reaches the direct neighbors.
        """
        if not 0 <= source < self.n:
            raise TopologyError(f"source {source} out of range")
        if ttl < 0:
            raise TopologyError(f"ttl must be >= 0, got {ttl}")
        seen = {source}
        reached: List[int] = []
        frontier = deque([(source, 0)])
        while frontier:
            node, depth = frontier.popleft()
            if depth == ttl:
                continue
            for neighbor in self._neighbors[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    reached.append(neighbor)
                    frontier.append((neighbor, depth + 1))
        return reached

    def flood_transmissions(self, source: int, ttl: int) -> Tuple[int, int]:
        """Exact transmission count of a TTL-bounded flood.

        Returns:
            ``(transmissions, duplicates)``.  Every peer that receives
            the query with remaining TTL forwards it to all neighbours
            except the link it arrived on; ``transmissions`` counts each
            such message, and ``duplicates`` the ones arriving at peers
            that had already seen the query — the overhead
            :meth:`flood_query`'s probe-unit cost ignores, and the
            "amplification effect" behind the paper's §3.3 DoS
            discussion.
        """
        if not 0 <= source < self.n:
            raise TopologyError(f"source {source} out of range")
        if ttl < 0:
            raise TopologyError(f"ttl must be >= 0, got {ttl}")
        seen = {source}
        transmissions = 0
        duplicates = 0
        # frontier: (node, received_from, depth)
        frontier = deque([(source, None, 0)])
        while frontier:
            node, received_from, depth = frontier.popleft()
            if depth == ttl:
                continue
            for neighbor in self._neighbors[node]:
                if neighbor == received_from:
                    continue
                transmissions += 1
                if neighbor in seen:
                    duplicates += 1
                    continue
                seen.add(neighbor)
                frontier.append((neighbor, node, depth + 1))
        return transmissions, duplicates

    def flood_receipts(self, source: int, ttl: int) -> Dict[int, int]:
        """Per-peer receipt counts of a TTL-bounded flood.

        Returns:
            Mapping of peer to the number of copies of the query it
            received (duplicates included) — the per-peer load column of
            the gossip-search comparison, where flooding's max load is
            its duplicate hot-spots.  The source itself never appears
            (a peer does not message itself).
        """
        if not 0 <= source < self.n:
            raise TopologyError(f"source {source} out of range")
        if ttl < 0:
            raise TopologyError(f"ttl must be >= 0, got {ttl}")
        seen = {source}
        receipts: Dict[int, int] = {}
        frontier = deque([(source, None, 0)])
        while frontier:
            node, received_from, depth = frontier.popleft()
            if depth == ttl:
                continue
            for neighbor in self._neighbors[node]:
                if neighbor == received_from:
                    continue
                receipts[neighbor] = receipts.get(neighbor, 0) + 1
                if neighbor in seen:
                    continue
                seen.add(neighbor)
                frontier.append((neighbor, node, depth + 1))
        return receipts

    def amplification_factor(self, source: int, ttl: int) -> float:
        """Transmissions caused per message the source itself sends.

        The §3.3 DoS lever: a malicious Gnutella peer spends
        ``deg(source)`` messages and the network amplifies them by this
        factor.  GUESS's non-forwarding design pins this at 1.0.
        """
        transmissions, _ = self.flood_transmissions(source, ttl)
        degree = len(self._neighbors[source])
        if degree == 0 or transmissions == 0:
            return 0.0
        return transmissions / degree

    def flood_query(
        self, view: PopulationView, source: int, target: int, ttl: int
    ) -> Tuple[int, int]:
        """Flood a query; returns ``(messages_sent, results_found)``.

        Cost counts one message per reached peer — the paper's probe
        unit — ignoring duplicate-forwarding overhead, which only makes
        Gnutella look worse.
        """
        if view.size != self.n:
            raise TopologyError(
                f"view size {view.size} does not match overlay size {self.n}"
            )
        reached = self.flood_reach(source, ttl)
        results = sum(
            1
            for peer in reached
            if ContentModel.matches(view.libraries[peer], target)
        )
        return len(reached), results


@dataclass(frozen=True)
class FixedExtentSearch:
    """The statistical fixed-extent mechanism swept in Figure 8.

    A query configured with extent ``E`` always costs ``E`` probes and is
    satisfied iff at least ``desired_results`` of ``E`` uniformly chosen
    peers own the target (desired_results=1 in the paper's sweep).
    """

    view: PopulationView
    extent: int

    def __post_init__(self) -> None:
        if not 1 <= self.extent <= self.view.size:
            raise WorkloadError(
                f"extent must be in [1, {self.view.size}], got {self.extent}"
            )

    def unsat_probability(self, target: int) -> float:
        """Exact P(query for ``target`` unsatisfied at this extent)."""
        owners = self.view.owners_of(target)
        if owners == 0:
            return 1.0
        return self.view.unsat_probability_curve(owners, self.extent)[-1]

    def run(self, target: int, rng: random.Random) -> Tuple[int, bool]:
        """One sampled query: returns ``(cost, satisfied)``."""
        position = self.view.sample_first_owner_position(
            self.view.owners_of(target), rng
        )
        satisfied = position is not None and position <= self.extent
        return self.extent, satisfied


def fixed_extent_tradeoff(
    view: PopulationView,
    targets: Sequence[int],
    extents: Sequence[int],
) -> List[Tuple[int, float]]:
    """The Figure 8 fixed-extent curve: ``(extent, mean unsat rate)``.

    Uses the exact hypergeometric failure probability per query, averaged
    over ``targets`` — no sampling noise, so the curve is smooth even
    with modest query counts.
    """
    if not targets:
        raise WorkloadError("need at least one query target")
    max_extent = max(extents)
    if max_extent > view.size:
        raise WorkloadError(
            f"max extent {max_extent} exceeds population {view.size}"
        )
    # One owner-count pass per query, then share the curve across extents.
    per_extent_sums: Dict[int, float] = {extent: 0.0 for extent in extents}
    for target in targets:
        owners = view.owners_of(target)
        if owners == 0:
            for extent in extents:
                per_extent_sums[extent] += 1.0
            continue
        curve = view.unsat_probability_curve(owners, max_extent)
        for extent in extents:
            per_extent_sums[extent] += curve[extent - 1]
    return [
        (extent, per_extent_sums[extent] / len(targets))
        for extent in sorted(per_extent_sums)
    ]
