"""Probe retries with backoff.

Over a lossy network a timeout no longer implies a dead peer, so the
probe paths (the query loop in :mod:`repro.core.search` and the
maintenance-ping path in :mod:`repro.core.network_sim`) may retry a
timed-out probe before concluding the target is gone.  This module
supplies the shared pieces:

* :class:`RetryPolicy` — how many attempts, and the fixed/exponential
  backoff schedule between them (configured by the
  ``probe_retries`` / ``retry_backoff`` / ``retry_base`` /
  ``retry_multiplier`` knobs on
  :class:`~repro.core.params.ProtocolParams`);
* :func:`probe_with_retry` — drive one logical probe through the
  transport, re-sending on timeout, with every attempt charged against
  virtual probe timestamps and the final outcome's RTT accumulating the
  full wait (failed-attempt timeouts + backoff gaps + final round trip).

With ``max_attempts == 1`` (the default, ``probe_retries = 0``) the
helper forwards a single :meth:`Transport.probe` call and returns its
outcome object untouched — the no-retry configuration is bit-identical
to the pre-retry code path.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Optional, Tuple

from repro.errors import ConfigError
from repro.network.address import Address
from repro.network.transport import ProbeOutcome, ProbeStatus, Transport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.params import ProtocolParams
    from repro.resilience.budget import RetryBudget

#: Accepted backoff schedules.
BACKOFF_MODES: Tuple[str, ...] = ("fixed", "exponential")


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget and backoff schedule for one logical probe.

    Attributes:
        max_attempts: total sends allowed (1 = no retries).
        backoff: ``"fixed"`` (every gap is ``base_delay``) or
            ``"exponential"`` (gap *i* is ``base_delay * multiplier**i``).
        base_delay: seconds waited after the first timeout before
            re-sending (on top of the timeout itself).
        multiplier: exponential growth factor (ignored for fixed).
    """

    max_attempts: int = 1
    backoff: str = "fixed"
    base_delay: float = 0.2
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff not in BACKOFF_MODES:
            raise ConfigError(
                f"backoff must be one of {BACKOFF_MODES}, got {self.backoff!r}"
            )
        if self.base_delay < 0.0:
            raise ConfigError(
                f"base_delay must be >= 0, got {self.base_delay}"
            )
        if self.multiplier < 1.0:
            raise ConfigError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )

    @property
    def enabled(self) -> bool:
        """True if this policy can ever re-send a probe."""
        return self.max_attempts > 1

    def delay(self, retry_index: int) -> float:
        """Backoff gap before retry number ``retry_index`` (0-based)."""
        if self.backoff == "fixed":
            return self.base_delay
        return self.base_delay * self.multiplier**retry_index

    @classmethod
    def from_protocol(cls, protocol: "ProtocolParams") -> "RetryPolicy":
        """The policy the protocol knobs describe.

        ``retry_base = None`` defaults the backoff gap to
        ``probe_spacing``: a retry waits exactly one more probe slot,
        which keeps retried timestamps on the spec's serial grid.
        """
        base = (
            protocol.retry_base
            if protocol.retry_base is not None
            else protocol.probe_spacing
        )
        return cls(
            max_attempts=protocol.probe_retries + 1,
            backoff=protocol.retry_backoff,
            base_delay=base,
            multiplier=protocol.retry_multiplier,
        )


@dataclass(frozen=True, slots=True)
class RetriedProbe:
    """One logical probe's final fate after up to ``max_attempts`` sends.

    Attributes:
        outcome: the final attempt's outcome.  Its ``rtt`` accumulates
            the *whole* wait from first send to resolution: every failed
            attempt's timeout charge, every backoff gap, and the final
            attempt's own RTT (or timeout charge) — so response-time
            accounting sees the true cost of retrying.
        attempts: sends actually made (1 = no retry was needed/allowed).
        recovered: True if at least one attempt timed out but the final
            outcome did not — the probe a retry "bought back".
        delay: virtual seconds between the first and final send (0
            without retries); the amount by which a caller's probe
            schedule slips.
        denied: True if the retry schedule was cut short because the
            caller's :class:`~repro.resilience.budget.RetryBudget` was
            out of tokens — the probe resolved with its last *afforded*
            outcome.
    """

    outcome: ProbeOutcome
    attempts: int
    recovered: bool
    delay: float
    denied: bool = False

    @property
    def retries(self) -> int:
        """Extra sends beyond the first."""
        return self.attempts - 1


def probe_with_retry(
    transport: Transport,
    retry: RetryPolicy,
    src: Address,
    dst: Address,
    message: Any,
    time: float,
    budget: "Optional[RetryBudget]" = None,
) -> RetriedProbe:
    """Send ``message`` with up to ``retry.max_attempts`` attempts.

    Attempt *i* goes out only after the previous attempt's timeout has
    elapsed plus the policy's backoff gap, at virtual time
    ``time + delay_i`` — retried probes are later probes, so target-side
    liveness and capacity windows see honest timestamps.

    When the caller carries a retry ``budget``, each re-send first spends
    one token (charged at the re-send's virtual timestamp); an exhausted
    budget ends the schedule early with ``denied=True``, capping retry
    amplification during storms.  With ``budget=None`` the code path is
    bit-identical to the unbudgeted helper.
    """
    outcome = transport.probe(src, dst, message, time)
    if outcome.status is not ProbeStatus.TIMEOUT or not retry.enabled:
        return RetriedProbe(outcome, attempts=1, recovered=False, delay=0.0)
    attempts = 1
    delay = 0.0
    denied = False
    while attempts < retry.max_attempts:
        next_delay = delay + outcome.rtt + retry.delay(attempts - 1)
        if budget is not None and not budget.try_spend(time + next_delay):
            denied = True
            break
        delay = next_delay
        outcome = transport.probe(src, dst, message, time + delay)
        attempts += 1
        if outcome.status is not ProbeStatus.TIMEOUT:
            final = replace(outcome, rtt=delay + outcome.rtt)
            return RetriedProbe(
                final, attempts=attempts, recovered=True, delay=delay
            )
    final = replace(outcome, rtt=delay + outcome.rtt)
    return RetriedProbe(
        final, attempts=attempts, recovered=False, delay=delay, denied=denied
    )
