"""Declarative fault plans.

A :class:`FaultPlan` describes every way the modelled UDP network may
misbehave during a run:

* **independent loss** — each probe round trip is lost with a fixed
  probability (``loss_rate``);
* **burst loss** — a two-state Gilbert-Elliott channel
  (:class:`GilbertElliott`): the chain sits in a *good* or *bad* state
  with per-state loss probabilities, so losses cluster the way radio
  fades and queue overflows cluster in real networks;
* **brownouts** — transient stalls (:class:`BrownoutSpec`): a live
  endpoint simply stops answering for a window, indistinguishable from
  death to the prober (the regime that wrongly evicts live entries);
* **partitions** — timed address-set bipartitions
  (:class:`PartitionWindow`): during the window, probes crossing the cut
  are dropped in both directions.

Plans are frozen, hashable, and picklable, so they travel inside
:class:`~repro.experiments.executor.TrialSpec` records to worker
processes.  A plan only *describes* faults; the runtime machinery (RNG
substreams, the Gilbert-Elliott chain state, memoised brownout windows)
lives in :class:`~repro.faults.injector.FaultInjector`.

The all-zeros plan (:meth:`FaultPlan.is_noop` true) is contractually a
no-op: :meth:`FaultInjector.from_plan` returns ``None`` for it, the
transport takes the exact pre-fault code path, and the golden trace
digests pinned in ``tests/integration/test_determinism.py`` stay
bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Tuple

from repro.errors import ConfigError


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class GilbertElliott:
    """Two-state burst-loss channel (Gilbert-Elliott model).

    The chain steps once per probe: from *good* it moves to *bad* with
    probability ``p_good_to_bad``, from *bad* back to *good* with
    ``p_bad_to_good``; the probe is then lost with the loss probability
    of the state the chain landed in.

    Attributes:
        loss_good: loss probability while the channel is good.
        loss_bad: loss probability while the channel is bad.
        p_good_to_bad: per-probe transition probability good -> bad.
        p_bad_to_good: per-probe transition probability bad -> good.
    """

    loss_good: float = 0.0
    loss_bad: float = 0.0
    p_good_to_bad: float = 0.0
    p_bad_to_good: float = 0.0

    def __post_init__(self) -> None:
        _check_probability("loss_good", self.loss_good)
        _check_probability("loss_bad", self.loss_bad)
        _check_probability("p_good_to_bad", self.p_good_to_bad)
        _check_probability("p_bad_to_good", self.p_bad_to_good)

    @property
    def enabled(self) -> bool:
        """True if the chain can ever lose a probe."""
        if self.loss_good > 0.0:
            return True
        return self.loss_bad > 0.0 and self.p_good_to_bad > 0.0


@dataclass(frozen=True)
class BrownoutSpec:
    """Transient per-peer stalls: live endpoints that stop answering.

    Every address gets its own deterministic schedule of stall windows,
    derived from the fault seed and the address alone (probe order can
    never change a schedule).  Gaps between windows are exponential with
    mean ``1 / rate``; each window lasts exactly ``duration`` seconds.
    While an address is browned out, probes *to* it time out even though
    ``is_alive`` is true — the prober cannot tell a stall from a death.

    Attributes:
        rate: expected brownout onsets per peer per second (0 disables).
        duration: seconds each brownout lasts.
    """

    rate: float = 0.0
    duration: float = 0.0

    def __post_init__(self) -> None:
        if self.rate < 0.0:
            raise ConfigError(f"rate must be >= 0, got {self.rate}")
        if self.duration < 0.0:
            raise ConfigError(f"duration must be >= 0, got {self.duration}")

    @property
    def enabled(self) -> bool:
        return self.rate > 0.0 and self.duration > 0.0


@dataclass(frozen=True)
class PartitionWindow:
    """A timed network bipartition.

    During ``[start, end)`` the address space is split in two sides; any
    probe whose source and destination land on different sides is
    dropped (both directions — the cut is symmetric).  Side assignment
    is a pure hash of ``(salt, address)``: an address keeps its side for
    the window's whole lifetime and across repeated runs, and no RNG
    state is consumed checking it.

    Attributes:
        start: window start (inclusive), simulation seconds.
        end: window end (exclusive).
        fraction: expected fraction of addresses on the minority side.
        salt: hash salt; two windows with different salts cut the
            network differently.
    """

    start: float
    end: float
    fraction: float = 0.5
    salt: int = 0

    def __post_init__(self) -> None:
        if self.start < 0.0:
            raise ConfigError(f"start must be >= 0, got {self.start}")
        if self.end <= self.start:
            raise ConfigError(
                f"end {self.end} must exceed start {self.start}"
            )
        _check_probability("fraction", self.fraction)

    def covers(self, time: float) -> bool:
        """Whether ``time`` falls inside this window."""
        return self.start <= time < self.end


@dataclass(frozen=True)
class FaultPlan:
    """The full fault configuration for one run.

    Attributes:
        loss_rate: independent per-probe loss probability.
        burst: Gilbert-Elliott burst-loss channel (all-zeros = off).
        jitter: maximum extra round-trip latency, drawn uniformly from
            ``[0, jitter]`` per delivered probe.  Jitter only reprices
            RTTs (response-time accounting); it never drops probes.
        brownouts: transient per-peer stall model.
        partitions: timed bipartition windows.
    """

    loss_rate: float = 0.0
    burst: GilbertElliott = GilbertElliott()
    jitter: float = 0.0
    brownouts: BrownoutSpec = BrownoutSpec()
    partitions: Tuple[PartitionWindow, ...] = ()

    def __post_init__(self) -> None:
        _check_probability("loss_rate", self.loss_rate)
        if self.jitter < 0.0:
            raise ConfigError(f"jitter must be >= 0, got {self.jitter}")
        if not isinstance(self.partitions, tuple):
            # Lists are a footgun: they break hashing and pickling
            # round-trips of frozen specs.
            raise ConfigError(
                f"partitions must be a tuple, got {type(self.partitions).__name__}"
            )

    def is_noop(self) -> bool:
        """True if this plan can never alter any probe or RTT.

        A no-op plan is contractually invisible: the simulation builds
        no injector, draws no fault randomness, and reproduces the
        fault-free trace digest bit-for-bit.
        """
        return (
            self.loss_rate == 0.0
            and not self.burst.enabled
            and self.jitter == 0.0
            and not self.brownouts.enabled
            and not self.partitions
        )

    def with_(self, **changes: Any) -> "FaultPlan":
        """Return a copy with ``changes`` applied (sweep helper)."""
        return replace(self, **changes)
