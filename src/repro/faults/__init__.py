"""Deterministic network fault injection.

GUESS runs over UDP: a lost packet and a dead peer produce the same
observable (a timeout), which is exactly the regime that stresses
link-cache maintenance.  This package makes that regime simulable while
preserving the repo's determinism contract:

* :mod:`repro.faults.plan` — frozen, picklable fault descriptions
  (:class:`FaultPlan`: independent + Gilbert-Elliott burst loss, latency
  jitter, per-peer brownouts, timed partitions);
* :mod:`repro.faults.injector` — the runtime :class:`FaultInjector`
  consulted by the transport, with every fault source on its own named
  RNG substream (``fault:*``);
* :mod:`repro.faults.retry` — :class:`RetryPolicy` and
  :func:`probe_with_retry`, the backoff layer the probe paths use to buy
  back spurious timeouts.

An all-zeros :class:`FaultPlan` is contractually a no-op: no injector is
built, no fault stream is ever drawn, and golden trace digests are
bit-identical to a fault-free run.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    BrownoutSpec,
    FaultPlan,
    GilbertElliott,
    PartitionWindow,
)
from repro.faults.retry import RetriedProbe, RetryPolicy, probe_with_retry

__all__ = [
    "BrownoutSpec",
    "FaultInjector",
    "FaultPlan",
    "GilbertElliott",
    "PartitionWindow",
    "RetriedProbe",
    "RetryPolicy",
    "probe_with_retry",
]
