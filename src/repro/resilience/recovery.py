"""Time-to-recovery from windowed satisfaction counters.

A storm's damage shows up twice: the *dip* (how far query satisfaction
falls) and the *scar* (how long it stays depressed while caches purge
dead entries).  Mean satisfaction over a whole run blurs both into one
number; the windowed registry from PR 4 keeps the time axis, and this
module reduces its per-window (queries, satisfied) counters to a single
time-to-recovery scalar: virtual seconds from a reference instant
(usually the storm end) until windowed satisfaction first returns to a
threshold fraction of its pre-storm baseline.

Pure arithmetic over already-collected counters — no RNG, no
scheduling, no clock (RD006 over this module).
"""

from __future__ import annotations

from typing import NamedTuple, Sequence, Tuple


class SatisfactionWindow(NamedTuple):
    """Per-window query counts, mirroring a registry window snapshot.

    Attributes:
        start: window start, simulation seconds.
        end: window end (exclusive).
        queries: queries issued inside the window.
        satisfied: of those, queries that met their result target.
    """

    start: float
    end: float
    queries: int
    satisfied: int

    @property
    def rate(self) -> float:
        """Windowed satisfaction rate; 0.0 for an idle window."""
        return self.satisfied / self.queries if self.queries else 0.0


def baseline_rate(
    windows: Sequence[SatisfactionWindow], before: float
) -> float:
    """Pooled satisfaction rate over windows ending at/before ``before``.

    Pooled (sum of counts, then divide), not a mean of per-window
    rates, so sparse windows do not get outsized weight.  Returns 0.0
    when no window qualifies.
    """
    queries = 0
    satisfied = 0
    for window in windows:
        if window.end <= before and window.queries:
            queries += window.queries
            satisfied += window.satisfied
    return satisfied / queries if queries else 0.0


def time_to_recovery(
    windows: Sequence[SatisfactionWindow],
    *,
    after: float,
    baseline: float,
    threshold: float = 0.9,
    min_queries: int = 1,
) -> float:
    """Seconds past ``after`` until satisfaction recovers, or ``inf``.

    Recovery is the first window ending after ``after`` with at least
    ``min_queries`` queries whose rate reaches ``threshold *
    baseline``; the returned value is that window's end minus
    ``after``.  ``inf`` when the run ends unrecovered — deliberately
    not a sentinel like -1, so "mechanisms strictly improve recovery"
    comparisons remain plain ``<`` even when the degraded cell never
    comes back.

    A zero ``baseline`` (no pre-storm traffic to compare against) also
    returns ``inf``: recovery to nothing is not recovery.
    """
    if baseline <= 0.0:
        return float("inf")
    target = threshold * baseline
    for window in windows:
        if window.end <= after or window.queries < min_queries:
            continue
        if window.rate >= target:
            return window.end - after
    return float("inf")


def to_windows(
    snapshots: Sequence[Tuple[float, float, int, int]]
) -> Tuple[SatisfactionWindow, ...]:
    """Adapt raw ``(start, end, queries, satisfied)`` rows."""
    return tuple(SatisfactionWindow(*row) for row in snapshots)
