"""Per-link-cache-entry circuit breakers.

Under ``PongCachePolicy`` with ``do_backoff=False`` the reproduction's
only reaction to a refusal is eviction: a peer that sheds load because
it is *temporarily* overloaded gets dropped from every prober's cache
exactly when the overlay can least afford to forget live addresses.  A
circuit breaker replaces that reflex with the classic three-state
automaton:

* **closed** — probes flow; consecutive refusals are counted.
* **open** — after ``failure_threshold`` consecutive refusals the
  breaker opens and the prober *suppresses* probes to that address for
  ``cooldown`` virtual seconds, keeping the entry cached.
* **half-open** — once the cool-down expires, exactly one trial probe
  is allowed; success closes the breaker, another refusal re-opens it
  for a fresh cool-down.

Everything here is pure bookkeeping over the caller-supplied virtual
clock: breakers draw no randomness, schedule no events, and never touch
wall time — the effect-contract lint (RD006 over this module) proves it
statically.  Breakers react to *refusals* only; timeouts mean the
target is dead and eviction remains the right answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ScenarioError

#: Breaker states.  Plain string constants (not an Enum) so records and
#: debug output stay trivially picklable and comparable.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerSpec:
    """Tuning for every breaker on one peer's link cache.

    Attributes:
        failure_threshold: consecutive refusals that open the breaker.
        cooldown: virtual seconds an open breaker suppresses probes
            before allowing a half-open trial.
    """

    failure_threshold: int = 3
    cooldown: float = 30.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ScenarioError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.cooldown <= 0.0:
            raise ScenarioError(
                f"cooldown must be > 0, got {self.cooldown}"
            )


class CircuitBreaker:
    """One breaker guarding one cached address."""

    __slots__ = ("_spec", "state", "failures", "open_until")

    def __init__(self, spec: BreakerSpec) -> None:
        self._spec = spec
        self.state = CLOSED
        self.failures = 0
        self.open_until = 0.0

    def allow(self, now: float) -> bool:
        """Whether a probe may be sent at virtual time ``now``.

        An open breaker transitions to half-open exactly at
        ``open_until`` (``now >= open_until``, boundary inclusive) and
        admits the single trial probe in the same call.
        """
        if self.state == OPEN:
            if now >= self.open_until:
                self.state = HALF_OPEN
                return True
            return False
        return True

    def record_success(self) -> None:
        """A probe was answered: close the breaker, forget failures."""
        self.state = CLOSED
        self.failures = 0

    def record_refusal(self, now: float) -> None:
        """A probe was refused: count it, open on the threshold.

        A refusal during half-open re-opens immediately — the trial
        probe failed, so the target gets a fresh cool-down.
        """
        if self.state == HALF_OPEN:
            self.state = OPEN
            self.open_until = now + self._spec.cooldown
            return
        self.failures += 1
        if self.failures >= self._spec.failure_threshold:
            self.state = OPEN
            self.open_until = now + self._spec.cooldown


class BreakerBoard:
    """All breakers for one prober, keyed by cached address.

    Breakers are created lazily on the first refusal-or-check for an
    address and discarded when the address leaves the link cache, so
    the board's footprint tracks the cache, not the network.
    """

    __slots__ = ("spec", "_breakers")

    def __init__(self, spec: BreakerSpec) -> None:
        self.spec = spec
        self._breakers: Dict[int, CircuitBreaker] = {}

    def allow(self, address: int, now: float) -> bool:
        """Whether ``address`` may be probed at ``now``."""
        breaker = self._breakers.get(address)
        if breaker is None:
            return True
        return breaker.allow(now)

    def record_success(self, address: int) -> None:
        """Note a delivered probe; only touches an existing breaker."""
        breaker = self._breakers.get(address)
        if breaker is not None:
            breaker.record_success()

    def record_refusal(self, address: int, now: float) -> None:
        """Note a refusal, creating the breaker on first sight."""
        breaker = self._breakers.get(address)
        if breaker is None:
            breaker = CircuitBreaker(self.spec)
            self._breakers[address] = breaker
        breaker.record_refusal(now)

    def discard(self, address: int) -> None:
        """Drop state for an address that left the link cache."""
        self._breakers.pop(address, None)

    def state_of(self, address: int) -> str:
        """Current state for ``address`` (closed if never tripped)."""
        breaker = self._breakers.get(address)
        return CLOSED if breaker is None else breaker.state

    def __len__(self) -> int:
        return len(self._breakers)
