"""The per-peer resilience policy: which mechanisms are armed.

A :class:`ResiliencePolicy` bundles the three graceful-degradation
mechanisms this package provides — circuit breakers on link-cache
entries, retry-token budgets, and graded load shedding — into one
frozen, picklable value that travels inside
:class:`~repro.experiments.executor.TrialSpec`.  Like
:class:`~repro.resilience.scenarios.ScenarioPlan`, a policy follows the
invisibility contract: ``None`` or an all-off policy arms nothing, the
peers are constructed exactly as before, and every golden trace digest
reproduces bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional

from repro.errors import ScenarioError
from repro.resilience.breaker import BreakerSpec
from repro.resilience.budget import BudgetSpec


@dataclass(frozen=True)
class SheddingSpec:
    """Graded load shedding: pings shed before queries.

    ``max_probes_per_second`` today is a cliff: probe ``n`` is served,
    probe ``n + 1`` refused, regardless of what the probes carry.
    Graded shedding adds a *soft* threshold at ``soft_fraction`` of the
    hard limit: once the current one-second window reaches it, the peer
    refuses further **pings** (cheap for the sender to lose — the entry
    just stays unconfirmed) while still serving **queries** up to the
    hard limit, which directly protects satisfaction during a flash
    crowd.

    Attributes:
        soft_fraction: fraction of the hard per-second limit at which
            ping shedding begins, in ``(0, 1]``; 1.0 disables grading
            (the soft and hard thresholds coincide).
    """

    soft_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.soft_fraction <= 1.0:
            raise ScenarioError(
                f"soft_fraction must be in (0, 1], got {self.soft_fraction}"
            )

    @property
    def enabled(self) -> bool:
        """True if the soft threshold sits below the hard limit."""
        return self.soft_fraction < 1.0


@dataclass(frozen=True)
class ResiliencePolicy:
    """Which resilience mechanisms each peer arms, and how.

    Attributes:
        breaker: circuit-breaker tuning, or ``None`` to keep the
            baseline evict-on-refusal behaviour.
        budget: retry-token budget tuning, or ``None`` for uncapped
            retries.
        shedding: graded-shedding tuning, or ``None`` for the binary
            rate-limit cliff.
    """

    breaker: Optional[BreakerSpec] = None
    budget: Optional[BudgetSpec] = None
    shedding: Optional[SheddingSpec] = None

    def is_noop(self) -> bool:
        """True if this policy changes nothing about a run."""
        return (
            self.breaker is None
            and self.budget is None
            and (self.shedding is None or not self.shedding.enabled)
        )

    def with_(self, **changes: Any) -> "ResiliencePolicy":
        """Return a copy with ``changes`` applied (sweep helper)."""
        return replace(self, **changes)

    @classmethod
    def all_on(cls) -> "ResiliencePolicy":
        """Every mechanism armed at its default tuning."""
        return cls(
            breaker=BreakerSpec(),
            budget=BudgetSpec(),
            shedding=SheddingSpec(),
        )

    @staticmethod
    def normalize(
        policy: Optional["ResiliencePolicy"],
    ) -> Optional["ResiliencePolicy"]:
        """Collapse an all-off policy to ``None``.

        The simulation stores the normalized value, so hot paths test a
        single ``is None`` and an all-off policy is structurally
        indistinguishable from no policy at all — the invisibility
        contract in one place.
        """
        if policy is None or policy.is_noop():
            return None
        return policy


# Re-export for the common "construct a policy in one import" case.
__all__ = [
    "BreakerSpec",
    "BudgetSpec",
    "ResiliencePolicy",
    "ScenarioError",
    "SheddingSpec",
]
