"""Per-peer retry-token budgets.

The retry machinery from PR 3 (:mod:`repro.faults.retry`) is exactly
wrong during a churn storm: every prober independently retries into the
same overloaded or dead targets, multiplying offered load at the moment
the overlay is weakest — the classic retry-amplification spiral.  A
retry *budget* caps that: each peer owns a token bucket; every retry
attempt spends one token, and tokens refill at a fixed rate in virtual
time.  In calm conditions the bucket stays full and behaviour is
unchanged; under a storm the bucket drains and the peer degrades to
single-attempt probes instead of amplifying.

The bucket is order-tolerant: the simulation may consult it from events
that fire at the same virtual instant in any order, and a query's
retries occur at ``now + accumulated delay`` while the *next* query may
start earlier than that; ``last = max(last, now)`` makes refill
monotone regardless.  No randomness, no scheduling, no wall time —
RD006 over this module proves it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ScenarioError


@dataclass(frozen=True)
class BudgetSpec:
    """Tuning for one peer's retry-token bucket.

    Attributes:
        capacity: maximum (and initial) token count.
        refill_interval: virtual seconds to mint one token.
    """

    capacity: int = 10
    refill_interval: float = 5.0

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ScenarioError(
                f"capacity must be >= 1, got {self.capacity}"
            )
        if self.refill_interval <= 0.0:
            raise ScenarioError(
                f"refill_interval must be > 0, got {self.refill_interval}"
            )


class RetryBudget:
    """Virtual-time token bucket; one per peer.

    Tokens are fractional internally so refill is exact: waiting half a
    ``refill_interval`` banks half a token.  ``try_spend`` only grants
    whole tokens.
    """

    __slots__ = ("_spec", "_tokens", "_last", "denied")

    def __init__(self, spec: BudgetSpec) -> None:
        self._spec = spec
        self._tokens = float(spec.capacity)
        self._last = 0.0
        #: Retry attempts refused for lack of a token (telemetry).
        self.denied = 0

    def _refill(self, now: float) -> None:
        if now > self._last:
            minted = (now - self._last) / self._spec.refill_interval
            self._tokens = min(
                float(self._spec.capacity), self._tokens + minted
            )
            self._last = now

    def tokens(self, now: float) -> float:
        """Current (fractional) token balance at virtual time ``now``."""
        self._refill(now)
        return self._tokens

    def try_spend(self, now: float) -> bool:
        """Spend one token for a retry attempt; False if exhausted."""
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        self.denied += 1
        return False
