"""Correlated-failure scenarios and graceful-degradation mechanisms.

This package owns both sides of the resilience story:

* **Scenarios** (:mod:`repro.resilience.scenarios`) — declarative,
  frozen plans for *correlated* trouble: churn storms (mass departures
  inside a window) and flash crowds (query-arrival surges).  They ride
  the same ``is_noop() → None`` invisibility contract as
  :class:`~repro.faults.plan.FaultPlan`.
* **Mechanisms** (:mod:`repro.resilience.policy` and friends) —
  per-peer graceful degradation: circuit breakers on link-cache entries
  (:mod:`~repro.resilience.breaker`), retry-token budgets
  (:mod:`~repro.resilience.budget`), and graded load shedding.
* **Metrics** (:mod:`repro.resilience.recovery`) — time-to-recovery
  derived from the windowed satisfaction counters.

Determinism contracts, statically proven by the effect lint: scenario
draws stay on the ``scenario:*`` RNG substream; breakers, budgets, and
recovery math draw no randomness at all.
"""

from repro.resilience.breaker import (
    BreakerBoard,
    BreakerSpec,
    CircuitBreaker,
)
from repro.resilience.budget import BudgetSpec, RetryBudget
from repro.resilience.policy import ResiliencePolicy, SheddingSpec
from repro.resilience.recovery import (
    SatisfactionWindow,
    baseline_rate,
    time_to_recovery,
)
from repro.resilience.scenarios import (
    ChurnStorm,
    FlashCrowd,
    ScenarioDriver,
    ScenarioPlan,
)

__all__ = [
    "BreakerBoard",
    "BreakerSpec",
    "BudgetSpec",
    "ChurnStorm",
    "CircuitBreaker",
    "FlashCrowd",
    "ResiliencePolicy",
    "RetryBudget",
    "SatisfactionWindow",
    "ScenarioDriver",
    "ScenarioPlan",
    "SheddingSpec",
    "baseline_rate",
    "time_to_recovery",
]
