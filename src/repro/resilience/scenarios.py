"""Correlated failure scenarios: churn storms and flash crowds.

The fault layer (:mod:`repro.faults`) models *independent* network
misbehaviour — each probe is lost or delayed on its own.  What kills
real overlays is correlated trouble: a **churn storm** (a large fraction
of the population departs almost simultaneously, leaving every link
cache full of corpses) and a **flash crowd** (a query-rate surge that
concentrates load on well-known peers until they refuse probes).  This
module supplies the declarative plans and the runtime driver for both:

* :class:`ChurnStorm` — a window ``[start, start + width)`` during which
  a fraction ``f`` of the peers live at ``start`` is forced to depart,
  at per-victim times drawn uniformly inside the window;
* :class:`FlashCrowd` — a window ``[start, end)`` during which the
  query-burst arrival intensity is multiplied by ``multiplier`` (values
  below 1 model query droughts);
* :class:`ScenarioPlan` — the frozen, hashable, picklable composition
  that travels inside :class:`~repro.experiments.executor.TrialSpec`
  records to worker processes;
* :class:`ScenarioDriver` — the runtime state.  Mirroring
  :meth:`FaultInjector.from_plan`, :meth:`ScenarioDriver.from_plan`
  returns ``None`` for a missing or all-noop plan, so the simulation's
  hot paths carry no scenario branches at all and the golden trace
  digests stay bit-identical (the invisibility contract, pinned by
  ``tests/integration/test_determinism.py``).

Determinism: every scenario draw — storm victim selection and departure
offsets — comes from the dedicated ``scenario:churn`` RNG substream, so
enabling a storm can never perturb the protocol's own streams; the
effect-contract lint proves this statically (RD007 over
``repro.resilience``).  Flash-crowd warping consumes **no** randomness:
it deterministically re-times the burst delays the workload already
drew, via the standard inhomogeneous-Poisson time change (a delay drawn
as exponential "load" is spent against the piecewise-constant intensity
profile the crowd windows describe).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, List, Optional, Tuple

from repro.errors import ScenarioError
from repro.sim.rng import RngRegistry

#: The RNG substream every scenario draw lives on.
SCENARIO_STREAM = "scenario:churn"


@dataclass(frozen=True)
class ChurnStorm:
    """Mass departure: fraction ``f`` of live peers dies in a window.

    At ``start`` the driver samples ``round(fraction * live)`` victims
    from the then-live population and assigns each a departure time
    uniform in ``[start, start + width)``.  Victims depart through the
    ordinary death path (silent departure, same-instant replacement), so
    the population size invariant holds — the damage is *staleness*:
    every replacement is a newborn whose copied cache points at the
    storm's corpses.

    Attributes:
        start: storm onset, simulation seconds.
        width: seconds over which the departures spread (> 0).
        fraction: fraction of the live population that departs.
    """

    start: float
    width: float
    fraction: float

    def __post_init__(self) -> None:
        if self.start < 0.0:
            raise ScenarioError(f"start must be >= 0, got {self.start}")
        if self.width <= 0.0:
            raise ScenarioError(f"width must be > 0, got {self.width}")
        if not 0.0 <= self.fraction <= 1.0:
            raise ScenarioError(
                f"fraction must be in [0, 1], got {self.fraction}"
            )

    @property
    def enabled(self) -> bool:
        """True if this storm can ever kill a peer."""
        return self.fraction > 0.0


@dataclass(frozen=True)
class FlashCrowd:
    """Query-arrival surge: intensity × ``multiplier`` on a window.

    Attributes:
        start: window start (inclusive), simulation seconds.
        end: window end (exclusive); must exceed ``start``.
        multiplier: arrival-intensity factor inside the window (> 0;
            1.0 is a no-op, values below 1 model droughts).
    """

    start: float
    end: float
    multiplier: float

    def __post_init__(self) -> None:
        if self.start < 0.0:
            raise ScenarioError(f"start must be >= 0, got {self.start}")
        if self.end <= self.start:
            raise ScenarioError(
                f"end {self.end} must exceed start {self.start}"
            )
        if self.multiplier <= 0.0:
            raise ScenarioError(
                f"multiplier must be > 0, got {self.multiplier}"
            )

    @property
    def enabled(self) -> bool:
        """True if this window changes the arrival intensity at all."""
        return self.multiplier != 1.0


@dataclass(frozen=True)
class ScenarioPlan:
    """The full correlated-scenario configuration for one run.

    Attributes:
        storms: churn-storm windows (any order).
        crowds: flash-crowd windows; *enabled* crowds must not overlap
            (overlap would make the intensity profile ambiguous).
    """

    storms: Tuple[ChurnStorm, ...] = ()
    crowds: Tuple[FlashCrowd, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.storms, tuple):
            # Lists are a footgun: they break hashing and pickling
            # round-trips of frozen specs.
            raise ScenarioError(
                f"storms must be a tuple, got {type(self.storms).__name__}"
            )
        if not isinstance(self.crowds, tuple):
            raise ScenarioError(
                f"crowds must be a tuple, got {type(self.crowds).__name__}"
            )
        active = sorted(
            (c for c in self.crowds if c.enabled), key=lambda c: c.start
        )
        for left, right in zip(active, active[1:]):
            if right.start < left.end:
                raise ScenarioError(
                    f"flash-crowd windows overlap: [{left.start}, {left.end})"
                    f" and [{right.start}, {right.end})"
                )

    def is_noop(self) -> bool:
        """True if this plan can never alter the run.

        A no-op plan is contractually invisible: the simulation builds
        no driver, draws no scenario randomness, schedules no storm
        events, and reproduces the scenario-free trace digest
        bit-for-bit.
        """
        return not any(s.enabled for s in self.storms) and not any(
            c.enabled for c in self.crowds
        )

    def with_(self, **changes: Any) -> "ScenarioPlan":
        """Return a copy with ``changes`` applied (sweep helper)."""
        return replace(self, **changes)


class ScenarioDriver:
    """Runtime scenario state for one simulation.

    Built only for plans that can actually change the run; the
    :meth:`from_plan` gate returns ``None`` otherwise, mirroring
    :meth:`~repro.faults.injector.FaultInjector.from_plan`.
    """

    __slots__ = ("plan", "storms", "_crowds", "_rng")

    def __init__(self, plan: ScenarioPlan, rng: RngRegistry) -> None:
        self.plan = plan
        self.storms: Tuple[ChurnStorm, ...] = tuple(
            s for s in plan.storms if s.enabled
        )
        self._crowds: Tuple[FlashCrowd, ...] = tuple(
            sorted(
                (c for c in plan.crowds if c.enabled), key=lambda c: c.start
            )
        )
        # Literal stream name: the RD007 contract proves the prefix
        # statically, so the call site must spell it out.
        self._rng = rng.stream("scenario:churn")

    @classmethod
    def from_plan(
        cls, plan: Optional[ScenarioPlan], rng: RngRegistry
    ) -> Optional["ScenarioDriver"]:
        """A driver for ``plan``, or ``None`` for a missing/no-op plan."""
        if plan is None or plan.is_noop():
            return None
        return cls(plan, rng)

    # ------------------------------------------------------------------
    # Churn storms
    # ------------------------------------------------------------------

    def draw_departures(
        self, storm: ChurnStorm, live_count: int
    ) -> List[Tuple[int, float]]:
        """Sample one storm's victims from a ``live_count``-peer roster.

        Returns ``(index, offset)`` pairs: ``index`` into the caller's
        live-peer list (whose order is deterministic) and the victim's
        departure offset from the storm start, uniform in
        ``[0, width)``.  All randomness comes from the scenario
        substream; the caller schedules the deaths.
        """
        victims = round(storm.fraction * live_count)
        if victims <= 0:
            return []
        rng = self._rng
        picked = rng.sample(range(live_count), victims)
        return [(index, rng.random() * storm.width) for index in picked]

    # ------------------------------------------------------------------
    # Flash crowds
    # ------------------------------------------------------------------

    def warp_delay(self, now: float, delay: float) -> float:
        """Re-time one burst delay through the crowd intensity profile.

        ``delay`` was drawn as exponential load under baseline intensity
        1; the wall-clock delay returned is the time needed to spend
        that load against the piecewise-constant profile (``multiplier``
        inside enabled crowd windows, 1 elsewhere) — the standard
        inhomogeneous-Poisson time change.  Pure arithmetic, no RNG;
        with no enabled crowds, or a delay that never reaches a window,
        the input delay is returned bit-identically.
        """
        crowds = self._crowds
        if not crowds or delay == float("inf"):
            return delay
        remaining = delay
        wall = 0.0
        t = now
        index = 0
        total = len(crowds)
        while True:
            while index < total and crowds[index].end <= t:
                index += 1
            if index == total:
                # Past every window: baseline intensity forever.
                return wall + remaining
            crowd = crowds[index]
            if t < crowd.start:
                gap = crowd.start - t
                if remaining <= gap:
                    return wall + remaining
                remaining -= gap
                wall += gap
                t = crowd.start
            else:
                span = crowd.end - t
                load = span * crowd.multiplier
                if remaining <= load:
                    return wall + remaining / crowd.multiplier
                remaining -= load
                wall += span
                t = crowd.end
