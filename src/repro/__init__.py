"""repro — a reproduction of *Evaluating GUESS and Non-Forwarding
Peer-to-Peer Search* (Yang, Vinograd, Garcia-Molina; ICDCS 2004).

The package builds the paper's entire stack from scratch: a deterministic
discrete-event simulator (:mod:`repro.sim`), a UDP-like network substrate
(:mod:`repro.network`), synthetic Gnutella-calibrated workloads
(:mod:`repro.workload`), the GUESS protocol with its policy framework and
attacker models (:mod:`repro.core`), the forwarding-based baselines the
paper compares against (:mod:`repro.baselines`), and one experiment module
per table/figure (:mod:`repro.experiments`).

Quickstart::

    from repro import GuessSimulation, SystemParams, ProtocolParams

    sim = GuessSimulation(
        SystemParams(network_size=500),
        ProtocolParams(query_pong="MFS"),
        seed=7,
    )
    sim.run(1800.0)
    report = sim.report()
    print(f"{report.probes_per_query:.1f} probes/query, "
          f"{report.unsatisfied_rate:.1%} unsatisfied")
"""

from repro.baselines import (
    GossipParams,
    GossipPlan,
    GossipSearch,
    GossipSummary,
)
from repro.core import (
    BadPongBehavior,
    CacheEntry,
    FaultyReporter,
    GuessPeer,
    GuessSimulation,
    LinkCache,
    MaliciousPeer,
    PolicySet,
    ProtocolParams,
    QueryCache,
    QueryResult,
    SystemParams,
    execute_query,
    registered_policy_names,
)
from repro.errors import (
    ConfigError,
    ExecutionError,
    PolicyError,
    ReproError,
    ScenarioError,
    SimulationError,
    TopologyError,
    TrialFailure,
    WorkloadError,
)
from repro.faults import FaultPlan, RetryPolicy
from repro.metrics import LoadDistribution, MetricsCollector, SimulationReport
from repro.observe import MetricsRegistry, ObservationPlan, SpanRecorder
from repro.resilience import (
    BreakerSpec,
    BudgetSpec,
    ChurnStorm,
    FlashCrowd,
    ResiliencePolicy,
    ScenarioPlan,
    SheddingSpec,
)

__version__ = "1.0.0"

__all__ = [
    "BadPongBehavior",
    "CacheEntry",
    "GuessPeer",
    "GuessSimulation",
    "LinkCache",
    "MaliciousPeer",
    "PolicySet",
    "ProtocolParams",
    "QueryCache",
    "QueryResult",
    "SystemParams",
    "execute_query",
    "registered_policy_names",
    "FaultPlan",
    "FaultyReporter",
    "RetryPolicy",
    "GossipParams",
    "GossipPlan",
    "GossipSearch",
    "GossipSummary",
    "BreakerSpec",
    "BudgetSpec",
    "ChurnStorm",
    "FlashCrowd",
    "ResiliencePolicy",
    "ScenarioError",
    "ScenarioPlan",
    "SheddingSpec",
    "MetricsRegistry",
    "ObservationPlan",
    "SpanRecorder",
    "ConfigError",
    "ExecutionError",
    "PolicyError",
    "ReproError",
    "SimulationError",
    "TopologyError",
    "TrialFailure",
    "WorkloadError",
    "LoadDistribution",
    "MetricsCollector",
    "SimulationReport",
    "__version__",
]
