"""Network substrate for the GUESS simulator.

Models the pieces of a real deployment that the paper's simulation relies
on but does not make part of the contribution:

* :mod:`repro.network.address` — an address space standing in for IPv4
  addresses; addresses are never reused, so a pointer to a dead peer stays
  dead (exactly the property that makes link-cache staleness a problem).
* :mod:`repro.network.transport` — UDP probe semantics: no connection
  state, silent loss when the target is gone, optional latency model.
* :mod:`repro.network.unionfind` — disjoint-set forest used by the
  connectivity experiments (Figures 6 and 7).
* :mod:`repro.network.overlay` — extraction and analysis of the
  "conceptual overlay" formed by link-cache pointers (paper Figure 2).
"""

from repro.network.address import Address, AddressAllocator
from repro.network.overlay import OverlaySnapshot, largest_component_size
from repro.network.transport import ProbeOutcome, ProbeStatus, Transport
from repro.network.unionfind import UnionFind

__all__ = [
    "Address",
    "AddressAllocator",
    "OverlaySnapshot",
    "largest_component_size",
    "ProbeOutcome",
    "ProbeStatus",
    "Transport",
    "UnionFind",
]
