"""Disjoint-set forest (union-find) with path compression and union by size.

The connectivity experiments (paper Figures 6 and 7) repeatedly compute the
largest connected component of the conceptual overlay.  A hand-rolled
union-find is an order of magnitude faster than building a ``networkx``
graph per snapshot, which matters when sweeping PingInterval × CacheSize ×
NetworkSize.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List


class UnionFind:
    """Union-find over arbitrary hashable items.

    Items are added lazily on first touch.  ``find`` uses iterative path
    compression (halving); ``union`` is by size, so component sizes are
    maintained exactly and :meth:`largest_component_size` is O(1) after the
    unions.
    """

    __slots__ = ("_parent", "_size", "_max_size")

    def __init__(self, items: Iterable[Hashable] = ()) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}
        self._max_size = 0
        for item in items:
            self.add(item)

    def add(self, item: Hashable) -> None:
        """Register ``item`` as its own singleton component (idempotent)."""
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1
            if self._max_size < 1:
                self._max_size = 1

    def __contains__(self, item: Hashable) -> bool:
        return item in self._parent

    def __len__(self) -> int:
        """Number of items registered."""
        return len(self._parent)

    def find(self, item: Hashable) -> Hashable:
        """Return the canonical representative of ``item``'s component.

        Raises:
            KeyError: if ``item`` was never added.
        """
        parent = self._parent
        root = item
        while parent[root] != root:
            parent[root] = parent[parent[root]]  # path halving
            root = parent[root]
        return root

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Merge the components of ``a`` and ``b`` (adding them if new).

        Returns:
            True if a merge happened; False if they were already together.
        """
        self.add(a)
        self.add(b)
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return False
        # Union by size: hang the smaller tree under the larger.
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        del self._size[root_b]
        if self._size[root_a] > self._max_size:
            self._max_size = self._size[root_a]
        return True

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """True if ``a`` and ``b`` are in the same component."""
        if a not in self._parent or b not in self._parent:
            return False
        return self.find(a) == self.find(b)

    def component_size(self, item: Hashable) -> int:
        """Size of the component containing ``item``."""
        return self._size[self.find(item)]

    def component_sizes(self) -> List[int]:
        """Sizes of all components, unordered."""
        return list(self._size.values())

    def num_components(self) -> int:
        """Number of disjoint components."""
        return len(self._size)

    def largest_component_size(self) -> int:
        """Size of the largest component (0 if empty)."""
        return self._max_size
