"""UDP-like probe transport.

GUESS communicates over UDP (paper Section 2.1): there are no connections,
so a peer cannot tell that a cache entry is dead except by probing it and
timing out.  The transport models exactly that:

* probes to an address whose endpoint is gone (or dead at the probe's
  virtual timestamp) **time out** — the sender learns nothing except the
  absence of a reply;
* probes to live endpoints are handed to the endpoint, which may answer or
  explicitly **refuse** (the overload signal of Section 6.3);
* an optional latency model prices each delivered round trip for
  response-time accounting.

The transport is synchronous: the GUESS query loop is strictly serial (one
probe, then reply-or-timeout, then the next probe), so a function call that
returns the outcome models the protocol faithfully while keeping the event
count per query at one.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Protocol

from repro.network.address import Address


class ProbeStatus(enum.Enum):
    """Terminal status of a single probe."""

    DELIVERED = "delivered"
    """The target was alive and returned a response payload."""

    TIMEOUT = "timeout"
    """No endpoint answered: the target is dead or was never registered."""

    REFUSED = "refused"
    """The target was alive but over its capacity limit and said so."""


@dataclass(frozen=True, slots=True)
class ProbeOutcome:
    """Result of one probe.

    Attributes:
        status: terminal status.
        response: payload returned by the endpoint (``None`` unless
            :attr:`ProbeStatus.DELIVERED`).
        rtt: modelled round-trip time in seconds.  Timeouts are charged the
            full timeout period.
    """

    status: ProbeStatus
    response: Any = None
    rtt: float = 0.0

    @property
    def delivered(self) -> bool:
        return self.status is ProbeStatus.DELIVERED


class Endpoint(Protocol):
    """What the transport needs from a registered peer."""

    def is_alive(self, time: float) -> bool:
        """Whether the peer is still up at virtual time ``time``."""

    def receive_probe(self, message: Any, time: float) -> tuple[bool, Any]:
        """Handle a probe delivered at ``time``.

        Returns:
            ``(accepted, response)``.  ``accepted=False`` means the peer
            refused the probe (overload); ``response`` may still carry a
            refusal notice.
        """


LatencyModel = Callable[[Address, Address], float]


def constant_latency(rtt: float = 0.05) -> LatencyModel:
    """A latency model charging the same round-trip time to every pair."""
    if rtt < 0:
        raise ValueError(f"rtt must be >= 0, got {rtt}")
    return lambda src, dst: rtt


class Transport:
    """Directory of endpoints plus UDP probe semantics.

    Args:
        timeout: seconds a sender waits before concluding a probe is lost.
            The GUESS spec's inter-probe spacing (0.2 s) is used as the
            default.
        latency: round-trip pricing for delivered probes; defaults to a
            4× faster-than-timeout constant.
    """

    def __init__(
        self,
        timeout: float = 0.2,
        latency: Optional[LatencyModel] = None,
    ) -> None:
        if timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        self.timeout = float(timeout)
        self._latency = latency or constant_latency(timeout / 4.0)
        self._directory: Dict[Address, Endpoint] = {}
        self._probes_sent = 0
        self._timeouts = 0

    # ------------------------------------------------------------------
    # Directory management
    # ------------------------------------------------------------------

    def register(self, address: Address, endpoint: Endpoint) -> None:
        """Attach ``endpoint`` to ``address``.

        Raises:
            ValueError: if the address is already bound (addresses are
                never reused, so a double bind is always a bug).
        """
        if address in self._directory:
            raise ValueError(f"address {address} already registered")
        self._directory[address] = endpoint

    def unregister(self, address: Address) -> None:
        """Detach the endpoint at ``address`` (no-op if absent).

        Dead peers may either be unregistered or left registered with
        ``is_alive`` returning False; both produce timeouts.
        """
        self._directory.pop(address, None)

    def endpoint(self, address: Address) -> Optional[Endpoint]:
        """The endpoint bound to ``address``, or None."""
        return self._directory.get(address)

    def __len__(self) -> int:
        return len(self._directory)

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------

    def probe(
        self, src: Address, dst: Address, message: Any, time: float
    ) -> ProbeOutcome:
        """Send ``message`` from ``src`` to ``dst`` at virtual time ``time``.

        Returns:
            A :class:`ProbeOutcome`; timeouts carry ``rtt == timeout``.
        """
        self._probes_sent += 1
        endpoint = self._directory.get(dst)
        if endpoint is None or not endpoint.is_alive(time):
            self._timeouts += 1
            return ProbeOutcome(status=ProbeStatus.TIMEOUT, rtt=self.timeout)
        accepted, response = endpoint.receive_probe(message, time)
        rtt = self._latency(src, dst)
        if not accepted:
            return ProbeOutcome(status=ProbeStatus.REFUSED, response=response, rtt=rtt)
        return ProbeOutcome(status=ProbeStatus.DELIVERED, response=response, rtt=rtt)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    @property
    def probes_sent(self) -> int:
        """Total probes pushed through this transport."""
        return self._probes_sent

    @property
    def timeouts(self) -> int:
        """Total probes that found no live endpoint."""
        return self._timeouts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Transport(endpoints={len(self._directory)}, "
            f"probes={self._probes_sent}, timeouts={self._timeouts})"
        )
