"""UDP-like probe transport.

GUESS communicates over UDP (paper Section 2.1): there are no connections,
so a peer cannot tell that a cache entry is dead except by probing it and
timing out.  The transport models exactly that:

* probes to an address whose endpoint is gone (or dead at the probe's
  virtual timestamp) **time out** — the sender learns nothing except the
  absence of a reply;
* probes to live endpoints are handed to the endpoint, which may answer or
  explicitly **refuse** (the overload signal of Section 6.3);
* an optional latency model prices each delivered round trip for
  response-time accounting.

The transport is synchronous: the GUESS query loop is strictly serial (one
probe, then reply-or-timeout, then the next probe), so a function call that
returns the outcome models the protocol faithfully while keeping the event
count per query at one.

An optional :class:`~repro.faults.injector.FaultInjector` makes the wire
itself unreliable: probes to *live* endpoints may be dropped (packet
loss, brownouts, partitions) and delivered round trips may pick up
latency jitter.  A fault-dropped probe to a live endpoint is a **spurious
timeout** — indistinguishable from a death to the prober, but flagged on
the outcome so omniscient metrics can separate wrongful evictions from
real corpse collection.  Without an injector the probe path is exactly
the historical fault-free code, bit for bit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Protocol

from repro.network.address import Address
from repro.observe.registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector


class ProbeStatus(enum.Enum):
    """Terminal status of a single probe."""

    DELIVERED = "delivered"
    """The target was alive and returned a response payload."""

    TIMEOUT = "timeout"
    """No endpoint answered: the target is dead or was never registered."""

    REFUSED = "refused"
    """The target was alive but over its capacity limit and said so."""


@dataclass(frozen=True, slots=True)
class ProbeOutcome:
    """Result of one probe.

    RTT charging rules (both deliberate, and asserted by the transport
    tests):

    * **Timeouts are charged the full timeout period** — the sender
      learns nothing until it has waited the whole window, so that wait
      is the probe's true cost.
    * **Refusals are charged the full delivery latency**, exactly like a
      delivered probe: a refusal is a real reply from a live peer (the
      overload notice travels the same round trip as a pong would), so
      the sender pays the wire time even though it gets no entries back.

    Attributes:
        status: terminal status.
        response: payload returned by the endpoint (``None`` unless
            :attr:`ProbeStatus.DELIVERED` or a refusal notice).
        rtt: modelled round-trip time in seconds, per the rules above.
        spurious: True only for a :attr:`ProbeStatus.TIMEOUT` caused by
            fault injection against a **live** endpoint — a lost packet,
            brownout stall, or partition cut, not a death.  The protocol
            layers never branch on this (the prober cannot tell); it
            exists purely for omniscient metrics (wrongful-eviction and
            spurious-timeout accounting).
    """

    status: ProbeStatus
    response: Any = None
    rtt: float = 0.0
    spurious: bool = False

    @property
    def delivered(self) -> bool:
        return self.status is ProbeStatus.DELIVERED


class Endpoint(Protocol):
    """What the transport needs from a registered peer."""

    def is_alive(self, time: float) -> bool:
        """Whether the peer is still up at virtual time ``time``."""

    def receive_probe(self, message: Any, time: float) -> tuple[bool, Any]:
        """Handle a probe delivered at ``time``.

        Returns:
            ``(accepted, response)``.  ``accepted=False`` means the peer
            refused the probe (overload); ``response`` may still carry a
            refusal notice.
        """


LatencyModel = Callable[[Address, Address], float]


def constant_latency(rtt: float = 0.05) -> LatencyModel:
    """A latency model charging the same round-trip time to every pair."""
    if rtt < 0:
        raise ValueError(f"rtt must be >= 0, got {rtt}")
    return lambda src, dst: rtt


class Transport:
    """Directory of endpoints plus UDP probe semantics.

    Args:
        timeout: seconds a sender waits before concluding a probe is lost.
            The GUESS spec's inter-probe spacing (0.2 s) is used as the
            default.
        latency: round-trip pricing for delivered probes; defaults to a
            4× faster-than-timeout constant.
        faults: optional fault injector; when set, probes to live
            endpoints may be dropped (spurious timeouts) and delivered
            RTTs may pick up jitter.  ``None`` (the default, and what an
            all-zeros :class:`~repro.faults.plan.FaultPlan` resolves to)
            keeps the exact fault-free code path.
        metrics: optional shared
            :class:`~repro.observe.registry.MetricsRegistry`.  The
            transport's counters always live in a registry (a private
            one by default); passing a shared registry additionally
            enables the per-probe RTT histogram and drives the
            registry's time windows from probe timestamps.  Either way
            the counters are pure bookkeeping — the probe outcome
            sequence is identical with or without a shared registry.
    """

    #: Registry names of the transport's instruments.
    METRIC_PROBES_SENT = "transport.probes_sent"
    METRIC_TIMEOUTS = "transport.timeouts"
    METRIC_REFUSALS = "transport.refusals"
    METRIC_SPURIOUS_TIMEOUTS = "transport.spurious_timeouts"
    METRIC_RTT = "transport.rtt"

    def __init__(
        self,
        timeout: float = 0.2,
        latency: Optional[LatencyModel] = None,
        faults: Optional["FaultInjector"] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        self.timeout = float(timeout)
        self._latency = latency or constant_latency(timeout / 4.0)
        self._faults = faults
        self._directory: Dict[Address, Endpoint] = {}
        #: address -> virtual time it was unregistered (departed).  Pure
        #: omniscient bookkeeping for the metrics layer's fresh-vs-stale
        #: dead-probe split; never read on any protocol path.
        self._departures: Dict[Address, float] = {}
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._observed = metrics is not None
        self._c_probes = self._metrics.counter(self.METRIC_PROBES_SENT)
        self._c_timeouts = self._metrics.counter(self.METRIC_TIMEOUTS)
        self._c_refusals = self._metrics.counter(self.METRIC_REFUSALS)
        self._c_spurious = self._metrics.counter(self.METRIC_SPURIOUS_TIMEOUTS)
        self._rtt_hist = (
            self._metrics.histogram(self.METRIC_RTT) if self._observed else None
        )

    # ------------------------------------------------------------------
    # Directory management
    # ------------------------------------------------------------------

    def register(self, address: Address, endpoint: Endpoint) -> None:
        """Attach ``endpoint`` to ``address``.

        Raises:
            ValueError: if the address is already bound (addresses are
                never reused, so a double bind is always a bug).
        """
        if address in self._directory:
            raise ValueError(f"address {address} already registered")
        self._directory[address] = endpoint

    def unregister(self, address: Address, time: Optional[float] = None) -> None:
        """Detach the endpoint at ``address`` (no-op if absent).

        Dead peers may either be unregistered or left registered with
        ``is_alive`` returning False; both produce timeouts.  When the
        caller supplies the departure ``time``, it is remembered so
        metrics can classify later dead probes against this address as
        stale (pointer acquired before the death) or dead-on-arrival.
        """
        if self._directory.pop(address, None) is not None and time is not None:
            self._departures[address] = time

    def departure_time(self, address: Address) -> Optional[float]:
        """When ``address`` was unregistered, or None (live / never seen).

        Omniscient-observer data: the protocol layers never branch on
        it — only dead-probe accounting does.
        """
        return self._departures.get(address)

    def endpoint(self, address: Address) -> Optional[Endpoint]:
        """The endpoint bound to ``address``, or None."""
        return self._directory.get(address)

    def __len__(self) -> int:
        return len(self._directory)

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------

    def probe(
        self, src: Address, dst: Address, message: Any, time: float
    ) -> ProbeOutcome:
        """Send ``message`` from ``src`` to ``dst`` at virtual time ``time``.

        Returns:
            A :class:`ProbeOutcome`; timeouts carry ``rtt == timeout``,
            refusals and deliveries the modelled delivery latency.
        """
        if self._observed:
            # Window rolling is driven by virtual probe timestamps only
            # (never the wall clock), keeping the registry inert with
            # respect to the event stream.
            self._metrics.advance(time)
        self._c_probes.inc()
        faults = self._faults
        endpoint = self._directory.get(dst)
        if endpoint is None or not endpoint.is_alive(time):
            # Dead targets never consume fault randomness: the outcome is
            # a timeout either way, and skipping the draw keeps fault
            # streams a pure function of the live-probe sequence.
            self._c_timeouts.inc()
            return ProbeOutcome(status=ProbeStatus.TIMEOUT, rtt=self.timeout)
        if faults is not None and faults.should_drop(src, dst, time):
            self._c_timeouts.inc()
            self._c_spurious.inc()
            return ProbeOutcome(
                status=ProbeStatus.TIMEOUT, rtt=self.timeout, spurious=True
            )
        accepted, response = endpoint.receive_probe(message, time)
        rtt = self._latency(src, dst)
        if faults is not None:
            rtt += faults.extra_rtt()
        if self._rtt_hist is not None:
            self._rtt_hist.observe(rtt)
        if not accepted:
            self._c_refusals.inc()
            return ProbeOutcome(status=ProbeStatus.REFUSED, response=response, rtt=rtt)
        return ProbeOutcome(status=ProbeStatus.DELIVERED, response=response, rtt=rtt)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    @property
    def metrics(self) -> MetricsRegistry:
        """The registry holding this transport's instruments."""
        return self._metrics

    # Compatibility properties: the counters moved into the registry,
    # but every historical call site (and the report layer) still reads
    # plain ints off the transport.

    @property
    def probes_sent(self) -> int:
        """Total probes pushed through this transport."""
        return self._c_probes.value

    @property
    def timeouts(self) -> int:
        """Total probes that timed out (dead target or injected drop)."""
        return self._c_timeouts.value

    @property
    def refusals(self) -> int:
        """Total probes a live endpoint refused (overload)."""
        return self._c_refusals.value

    @property
    def spurious_timeouts(self) -> int:
        """Timeouts whose target was live (fault-injected drops only)."""
        return self._c_spurious.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Transport(endpoints={len(self._directory)}, "
            f"probes={self.probes_sent}, timeouts={self.timeouts}, "
            f"refusals={self.refusals})"
        )
