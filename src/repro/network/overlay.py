"""Conceptual-overlay extraction and connectivity analysis.

Link-cache pointers form a directed "conceptual overlay" (paper Figure 2).
A snapshot keeps, for each *live* peer, the subset of its link-cache
entries that point at other live peers.  The paper's connectivity metric —
the size of the largest connected component as PingInterval varies
(Figures 6 and 7) — treats the overlay as undirected, matching the authors'
reading that any pointer lets information flow once contact is made (the
introduction mechanism makes contact bidirectional with probability
``IntroProb``).

Both undirected (union-find) and directed (Tarjan SCC-free BFS
reachability) views are provided; the experiments use the undirected one,
the directed one backs extension analyses.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Set, Tuple

from repro.errors import TopologyError
from repro.network.address import Address
from repro.network.unionfind import UnionFind


@dataclass(frozen=True)
class OverlaySnapshot:
    """An immutable snapshot of the conceptual overlay.

    Attributes:
        live: set of live peer addresses at snapshot time.
        edges: for each live address, the live addresses its link cache
            points to.  Pointers to dead peers are dropped at construction
            (a dead pointer cannot carry a probe).
    """

    live: frozenset[Address]
    edges: Mapping[Address, Tuple[Address, ...]] = field(default_factory=dict)

    @classmethod
    def from_caches(
        cls,
        live: Iterable[Address],
        cache_contents: Mapping[Address, Iterable[Address]],
    ) -> "OverlaySnapshot":
        """Build a snapshot from raw link-cache contents.

        Args:
            live: addresses of peers currently alive.
            cache_contents: address -> iterable of addresses in its link
                cache (dead targets are filtered out here).

        Raises:
            TopologyError: if ``cache_contents`` names a peer not in
                ``live`` (a dead peer has no cache to snapshot).
        """
        live_set = frozenset(live)
        filtered: Dict[Address, Tuple[Address, ...]] = {}
        for owner, targets in cache_contents.items():
            if owner not in live_set:
                raise TopologyError(
                    f"cache owner {owner} is not in the live set"
                )
            filtered[owner] = tuple(t for t in targets if t in live_set)
        return cls(live=live_set, edges=filtered)

    # ------------------------------------------------------------------
    # Undirected connectivity (the paper's metric)
    # ------------------------------------------------------------------

    def largest_component_size(self) -> int:
        """Size of the largest weakly connected component.

        Isolated live peers (no in- or out-pointers) count as singleton
        components, so a fully fragmented overlay reports 1, and a healthy
        one reports ``len(self.live)``.
        """
        if not self.live:
            return 0
        uf = UnionFind(self.live)
        for owner, targets in self.edges.items():
            for target in targets:
                uf.union(owner, target)
        return uf.largest_component_size()

    def component_sizes(self) -> List[int]:
        """Sizes of all weakly connected components, descending."""
        uf = UnionFind(self.live)
        for owner, targets in self.edges.items():
            for target in targets:
                uf.union(owner, target)
        return sorted(uf.component_sizes(), reverse=True)

    def num_components(self) -> int:
        """Number of weakly connected components."""
        uf = UnionFind(self.live)
        for owner, targets in self.edges.items():
            for target in targets:
                uf.union(owner, target)
        return uf.num_components()

    # ------------------------------------------------------------------
    # Directed reachability (extension analyses)
    # ------------------------------------------------------------------

    def reachable_from(self, source: Address) -> Set[Address]:
        """Peers reachable from ``source`` following pointers forward.

        This is the set of peers ``source`` could eventually probe using
        only its own cache plus pong chaining, ignoring timing.
        """
        if source not in self.live:
            raise TopologyError(f"source {source} is not live")
        seen: Set[Address] = {source}
        frontier: deque[Address] = deque([source])
        while frontier:
            node = frontier.popleft()
            for target in self.edges.get(node, ()):
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return seen

    def out_degrees(self) -> Dict[Address, int]:
        """Live out-degree (number of live pointers) per live peer."""
        return {
            owner: len(self.edges.get(owner, ()))
            for owner in self.live
        }

    def mean_live_out_degree(self) -> float:
        """Average number of live pointers per live peer."""
        if not self.live:
            return 0.0
        return sum(len(t) for t in self.edges.values()) / len(self.live)


def largest_component_size(
    live: Iterable[Address],
    cache_contents: Mapping[Address, Iterable[Address]],
) -> int:
    """Convenience wrapper: LCC size straight from raw cache contents."""
    return OverlaySnapshot.from_caches(live, cache_contents).largest_component_size()
