"""Latency models for the probe transport.

The paper's metrics count probes, not milliseconds, but its
response-time discussion (§6.2) prices a probe round trip.  The default
transport charges a constant RTT; this module adds distributions for
sensitivity analyses:

* :func:`uniform_latency` — RTT uniform in ``[low, high]``;
* :func:`lognormal_latency` — the classic heavy-tailed Internet RTT;
* :func:`pairwise_latency` — deterministic per-pair RTTs derived from a
  seed, so the same pair always sees the same distance (a stand-in for
  geography).

All return a ``LatencyModel`` callable compatible with
:class:`repro.network.transport.Transport`.
"""

from __future__ import annotations

import random

from repro.errors import ConfigError
from repro.network.address import Address
from repro.network.transport import LatencyModel
from repro.sim.rng import derive_seed


def uniform_latency(
    low: float, high: float, seed: int = 0
) -> LatencyModel:
    """RTT drawn uniformly from ``[low, high]`` per probe."""
    if not 0 <= low <= high:
        raise ConfigError(
            f"need 0 <= low <= high, got [{low}, {high}]"
        )
    rng = random.Random(derive_seed(seed, "latency:uniform"))

    def model(src: Address, dst: Address) -> float:
        return rng.uniform(low, high)

    return model


def lognormal_latency(
    median: float, sigma: float = 0.5, cap: float | None = None, seed: int = 0
) -> LatencyModel:
    """Heavy-tailed RTT with the given median, optionally capped."""
    if median <= 0:
        raise ConfigError(f"median must be > 0, got {median}")
    if sigma <= 0:
        raise ConfigError(f"sigma must be > 0, got {sigma}")
    if cap is not None and cap < median:
        raise ConfigError(f"cap {cap} must be >= median {median}")
    import math

    mu = math.log(median)
    rng = random.Random(derive_seed(seed, "latency:lognormal"))

    def model(src: Address, dst: Address) -> float:
        rtt = rng.lognormvariate(mu, sigma)
        return min(rtt, cap) if cap is not None else rtt

    return model


def pairwise_latency(
    low: float, high: float, seed: int = 0
) -> LatencyModel:
    """Deterministic per-pair RTT in ``[low, high]``.

    The RTT for ``(src, dst)`` is a pure function of the unordered pair
    and the seed — repeated probes between the same peers always see the
    same distance, like hosts at fixed locations.
    """
    if not 0 <= low <= high:
        raise ConfigError(f"need 0 <= low <= high, got [{low}, {high}]")
    span = high - low

    def model(src: Address, dst: Address) -> float:
        a, b = (src, dst) if src <= dst else (dst, src)
        fraction = derive_seed(seed, f"pair:{a}:{b}") / float(2**64)
        return low + span * fraction

    return model
