"""Peer address space.

A GUESS cache entry holds the IP address of another peer (paper Section
2.1).  The simulator models addresses as monotonically increasing integers
handed out by :class:`AddressAllocator`.  Two properties matter:

* **No reuse.**  When a peer dies its address is never reassigned.  A stale
  cache entry therefore points at a permanently dead endpoint — the paper's
  worst case for cache maintenance ("when a peer dies, we assume that it
  never returns", Section 5.1).
* **Cheap identity.**  Addresses are ints, so cache-membership checks and
  dedup sets are dictionary-speed.
"""

from __future__ import annotations

from typing import Iterator

# An address is just an integer.  The alias documents intent in signatures.
Address = int


class AddressAllocator:
    """Hands out fresh, never-reused peer addresses.

    Example::

        alloc = AddressAllocator()
        a = alloc.allocate()   # 0
        b = alloc.allocate()   # 1
    """

    __slots__ = ("_next",)

    def __init__(self, start: Address = 0) -> None:
        if start < 0:
            raise ValueError(f"start address must be >= 0, got {start}")
        self._next = int(start)

    def allocate(self) -> Address:
        """Return a fresh address, never returned before by this allocator."""
        address = self._next
        self._next += 1
        return address

    def allocate_many(self, count: int) -> list[Address]:
        """Allocate ``count`` consecutive fresh addresses."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        first = self._next
        self._next += count
        return list(range(first, first + count))

    @property
    def allocated(self) -> int:
        """Total number of addresses handed out so far."""
        return self._next

    def all_allocated(self) -> Iterator[Address]:
        """Iterate over every address allocated so far (0..allocated-1)."""
        return iter(range(self._next))

    def __contains__(self, address: Address) -> bool:
        """True if ``address`` has been allocated by this allocator."""
        return 0 <= address < self._next
