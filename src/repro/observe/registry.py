"""Named metric instruments with fixed-width time-window snapshots.

The registry replaces the ad-hoc integer counter fields that used to be
scattered across :mod:`repro.metrics.collectors` and
:mod:`repro.network.transport` with three instrument kinds:

* :class:`Counter` — a monotonically increasing total (``inc``);
* :class:`Gauge` — a last-value-wins level (``set``);
* :class:`Histogram` — bucketed observations (``observe``), used for
  per-probe RTTs.

Determinism contract: instruments are **passive**.  They never schedule
engine events, never draw randomness, and never read the wall clock —
window rolling is driven lazily by the virtual timestamps the host
already passes to its ``record_*`` calls (:meth:`MetricsRegistry.advance`).
Attaching a registry to a simulation therefore cannot perturb the event
stream; the pinned golden trace digests stay bit-identical with the
registry on or off, which ``tests/integration/test_determinism.py``
asserts.

Windows are fixed-width and aligned to the virtual-time origin: window
``k`` covers ``[k*w, (k+1)*w)``.  Empty windows (no instrument changed)
are skipped rather than materialised, so a sparse run does not produce a
flood of all-zero snapshots.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from math import floor
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

from repro.errors import ConfigError

#: Default histogram bucket upper bounds (seconds) — sized for probe
#: RTTs, whose fault-free range is [timeout/4, timeout] around 0.2 s.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0,
)


class Counter:
    """A named monotonic total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative inc {amount}")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A named last-value-wins level."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Bucketed observations with running count and sum.

    ``bounds`` are inclusive upper edges; one implicit overflow bucket
    catches everything above the last bound.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "sum")

    def __init__(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        ordered = tuple(float(b) for b in bounds)
        if not ordered or any(
            b >= c for b, c in zip(ordered, ordered[1:])
        ):
            raise ConfigError(
                f"histogram {name}: bounds must be strictly increasing "
                f"and non-empty, got {bounds!r}"
            )
        self.name = name
        self.bounds = ordered
        self.bucket_counts = [0] * (len(ordered) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile.

        Overflow observations report the last finite bound (the
        histogram cannot resolve beyond it).  0.0 when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket in enumerate(self.bucket_counts):
            seen += bucket
            if seen >= rank and bucket:
                return self.bounds[min(index, len(self.bounds) - 1)]
        return self.bounds[-1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:.4f})"


Instrument = Union[Counter, Gauge, Histogram]


@dataclass(frozen=True)
class WindowSnapshot:
    """One closed time window's worth of metric activity.

    ``values`` maps instrument name to its in-window activity: counters
    and histograms report the **delta** accrued inside the window,
    gauges report their level at window close.
    """

    start: float
    end: float
    values: Mapping[str, float]

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready rendering (values sorted by instrument name)."""
        return {
            "start": self.start,
            "end": self.end,
            "values": {name: self.values[name] for name in sorted(self.values)},
        }


class MetricsRegistry:
    """Get-or-create directory of named instruments.

    Args:
        window: fixed window width in virtual seconds; ``None`` (the
            default) disables windowing entirely — :meth:`advance`
            becomes a no-op and only lifetime totals are kept.

    Hosts call :meth:`advance` with the virtual timestamps they already
    carry (probe times, record times); the registry lazily closes every
    window boundary crossed since the previous call.  Time never runs
    backwards past a closed window — stale timestamps are ignored.
    """

    def __init__(self, window: Optional[float] = None) -> None:
        if window is not None and window <= 0:
            raise ConfigError(f"window must be > 0, got {window}")
        self.window = float(window) if window is not None else None
        self._instruments: Dict[str, Instrument] = {}
        self._snapshots: List[WindowSnapshot] = []
        self._marks: Dict[str, float] = {}
        self._window_start = 0.0

    # ------------------------------------------------------------------
    # Instrument access
    # ------------------------------------------------------------------

    def _get_or_create(
        self,
        name: str,
        kind: Type[Instrument],
        factory: Callable[[], Instrument],
    ) -> Instrument:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif type(instrument) is not kind:
            raise ConfigError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        return self._get_or_create(
            name, Histogram, lambda: Histogram(name, bounds)
        )

    def names(self) -> List[str]:
        """Sorted names of every registered instrument."""
        return sorted(self._instruments)

    # ------------------------------------------------------------------
    # Windowing
    # ------------------------------------------------------------------

    def _instrument_level(self, instrument: Instrument) -> float:
        if type(instrument) is Gauge:
            return instrument.value
        if type(instrument) is Histogram:
            return float(instrument.count)
        return float(instrument.value)

    def advance(self, now: float) -> None:
        """Close every window boundary at or before ``now``.

        Called by hosts with virtual timestamps only.  Windows in which
        no instrument changed are skipped, and the current window jumps
        straight to the one containing ``now``.
        """
        width = self.window
        if width is None:
            return
        end = self._window_start + width
        if now < end:
            return
        values: Dict[str, float] = {}
        for name, instrument in self._instruments.items():
            level = self._instrument_level(instrument)
            delta = (
                level
                if type(instrument) is Gauge
                else level - self._marks.get(name, 0.0)
            )
            if type(instrument) is Gauge or delta != 0.0:
                values[name] = delta
            self._marks[name] = level
        if values:
            self._snapshots.append(
                WindowSnapshot(start=self._window_start, end=end, values=values)
            )
        self._window_start = floor(now / width) * width

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------

    @property
    def window_snapshots(self) -> Tuple[WindowSnapshot, ...]:
        """Every closed, non-empty window so far, in time order."""
        return tuple(self._snapshots)

    def snapshot(self) -> Dict[str, float]:
        """Lifetime totals/levels for every instrument, by sorted name."""
        return {
            name: self._instrument_level(self._instruments[name])
            for name in sorted(self._instruments)
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsRegistry(instruments={len(self._instruments)}, "
            f"windows={len(self._snapshots)})"
        )
