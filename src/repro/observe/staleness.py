"""Staleness instruments: the fresh-vs-stale dead-probe split, summarised.

Every dead probe (query path or maintenance ping) is charged to one of
two causes by the omniscient accounting in
:mod:`repro.metrics.collectors`:

* **stale** — the pointer's target departed *after* the owner acquired
  it.  The owner held a once-valid pointer that silently rotted; this is
  exactly the waste push invalidation (:mod:`repro.freshness`) can
  prevent by purging the entry when the target departs.
* **fresh** (dead-on-arrival) — the pointer was already dead when
  acquired: imported off another peer's stale pong, a poisoned pong
  naming a corpse, or a ghost address that never existed.  No notice at
  departure time could have saved these.

:func:`summarize_staleness` folds a report (anything exposing the
relevant counters — typed structurally so this module never imports the
metrics layer) into a :class:`StalenessSummary`, the row format the
cache-freshness experiment suite prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.metrics.summary import ratio


class StalenessSource(Protocol):
    """Structural view of the report fields the summary folds.

    :class:`~repro.metrics.collectors.SimulationReport` satisfies it;
    the Protocol spelling avoids an observe -> metrics import (metrics
    already imports observe for the registry).
    """

    @property
    def queries(self) -> int: ...

    @property
    def dead_probes(self) -> int: ...

    @property
    def dead_pings(self) -> int: ...

    @property
    def stale_dead_query_probes(self) -> int: ...

    @property
    def stale_dead_pings(self) -> int: ...

    @property
    def freshness_notices(self) -> int: ...

    @property
    def freshness_purges(self) -> int: ...


@dataclass(frozen=True, slots=True)
class StalenessSummary:
    """One run's dead-probe attribution, ready for a results table.

    Attributes:
        dead_probes: all dead probes (query + ping paths).
        stale_dead_probes: the preventable subset (pointer outlived its
            target).
        fresh_dead_probes: the dead-on-arrival remainder.
        stale_fraction: ``stale / dead`` (0.0 when nothing died).
        stale_per_query: stale dead probes per executed query.
        notices: CacheUpdate sends (0 without push invalidation).
        purges: notices whose receiver actually held the stale entry.
    """

    dead_probes: int
    stale_dead_probes: int
    fresh_dead_probes: int
    stale_fraction: float
    stale_per_query: float
    notices: int
    purges: int


def summarize_staleness(report: StalenessSource) -> StalenessSummary:
    """Fold one report's counters into a :class:`StalenessSummary`."""
    dead = report.dead_probes + report.dead_pings
    stale = report.stale_dead_query_probes + report.stale_dead_pings
    return StalenessSummary(
        dead_probes=dead,
        stale_dead_probes=stale,
        fresh_dead_probes=dead - stale,
        stale_fraction=ratio(stale, dead),
        stale_per_query=ratio(stale, report.queries),
        notices=report.freshness_notices,
        purges=report.freshness_purges,
    )
