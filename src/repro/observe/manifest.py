"""Run manifests: the reproducibility record of an experiment run.

Every ``run_all`` invocation writes a ``manifest.json`` capturing, for
each configuration :func:`~repro.experiments.runner.run_guess_config`
executed: the full :class:`~repro.core.params.SystemParams`,
:class:`~repro.core.params.ProtocolParams` and
:class:`~repro.faults.plan.FaultPlan`, the derived per-trial seeds, and
each trial's trace digest — plus the package version, profile, suite
list and wall clock.  Any published number is then reproducible from its
manifest alone: :func:`replay_config` re-runs a recorded configuration
and :func:`verify_manifest` asserts the digests match bit for bit
(``python -m repro.observe.manifest manifest.json`` from the CLI).

Capture piggybacks on the one choke point all suites share:
:func:`run_guess_config` consults :func:`active_manifest_recorder` and,
when a recorder is installed (via :func:`activated`), forces
``trace_hash=True`` on every trial and appends one config entry after
the reports return.  Suites that drive simulations directly (the
ping-interval LCC snapshots) contribute no config entries; the manifest
still records the exact command to re-launch them.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import contextmanager
from dataclasses import asdict
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.baselines.gossip import GossipPlan
from repro.core.params import BadPongBehavior, ProtocolParams, SystemParams
from repro.faults.plan import (
    BrownoutSpec,
    FaultPlan,
    GilbertElliott,
    PartitionWindow,
)
from repro.freshness.plan import CacheSizing, FreshnessPlan
from repro.resilience.breaker import BreakerSpec
from repro.resilience.budget import BudgetSpec
from repro.resilience.policy import ResiliencePolicy, SheddingSpec
from repro.resilience.scenarios import ChurnStorm, FlashCrowd, ScenarioPlan
from repro.sim.rng import derive_seed

if TYPE_CHECKING:
    from repro.experiments.executor import TrialSpec

#: Bumped when the manifest layout changes incompatibly.
MANIFEST_VERSION = 1


# ----------------------------------------------------------------------
# Parameter (de)serialisation
# ----------------------------------------------------------------------


def system_to_jsonable(system: SystemParams) -> Dict[str, Any]:
    """JSON-ready dict for :class:`SystemParams` (enum by name)."""
    data = asdict(system)
    data["bad_pong_behavior"] = system.bad_pong_behavior.name
    return data


def system_from_jsonable(data: Dict[str, Any]) -> SystemParams:
    """Inverse of :func:`system_to_jsonable`."""
    data = dict(data)
    data["bad_pong_behavior"] = BadPongBehavior[data["bad_pong_behavior"]]
    return SystemParams(**data)


def protocol_to_jsonable(protocol: ProtocolParams) -> Dict[str, Any]:
    """JSON-ready dict for :class:`ProtocolParams` (all scalars)."""
    return asdict(protocol)


def protocol_from_jsonable(data: Dict[str, Any]) -> ProtocolParams:
    """Inverse of :func:`protocol_to_jsonable`."""
    return ProtocolParams(**data)


def faults_to_jsonable(faults: Optional[FaultPlan]) -> Optional[Dict[str, Any]]:
    """JSON-ready dict for a :class:`FaultPlan` (None stays None)."""
    if faults is None:
        return None
    data = asdict(faults)
    data["partitions"] = [asdict(window) for window in faults.partitions]
    return data


def faults_from_jsonable(data: Optional[Dict[str, Any]]) -> Optional[FaultPlan]:
    """Inverse of :func:`faults_to_jsonable`."""
    if data is None:
        return None
    return FaultPlan(
        loss_rate=data["loss_rate"],
        burst=GilbertElliott(**data["burst"]),
        jitter=data["jitter"],
        brownouts=BrownoutSpec(**data["brownouts"]),
        partitions=tuple(
            PartitionWindow(**window) for window in data["partitions"]
        ),
    )


def scenarios_to_jsonable(
    scenarios: Optional[ScenarioPlan],
) -> Optional[Dict[str, Any]]:
    """JSON-ready dict for a :class:`ScenarioPlan` (None stays None)."""
    if scenarios is None:
        return None
    return {
        "storms": [asdict(storm) for storm in scenarios.storms],
        "crowds": [asdict(crowd) for crowd in scenarios.crowds],
    }


def scenarios_from_jsonable(
    data: Optional[Dict[str, Any]],
) -> Optional[ScenarioPlan]:
    """Inverse of :func:`scenarios_to_jsonable`."""
    if data is None:
        return None
    return ScenarioPlan(
        storms=tuple(ChurnStorm(**storm) for storm in data["storms"]),
        crowds=tuple(FlashCrowd(**crowd) for crowd in data["crowds"]),
    )


def resilience_to_jsonable(
    policy: Optional[ResiliencePolicy],
) -> Optional[Dict[str, Any]]:
    """JSON-ready dict for a :class:`ResiliencePolicy` (None stays None)."""
    if policy is None:
        return None
    return {
        "breaker": asdict(policy.breaker) if policy.breaker else None,
        "budget": asdict(policy.budget) if policy.budget else None,
        "shedding": asdict(policy.shedding) if policy.shedding else None,
    }


def resilience_from_jsonable(
    data: Optional[Dict[str, Any]],
) -> Optional[ResiliencePolicy]:
    """Inverse of :func:`resilience_to_jsonable`."""
    if data is None:
        return None
    return ResiliencePolicy(
        breaker=BreakerSpec(**data["breaker"]) if data["breaker"] else None,
        budget=BudgetSpec(**data["budget"]) if data["budget"] else None,
        shedding=(
            SheddingSpec(**data["shedding"]) if data["shedding"] else None
        ),
    )


def gossip_to_jsonable(
    gossip: Optional[GossipPlan],
) -> Optional[Dict[str, Any]]:
    """JSON-ready dict for a :class:`GossipPlan` (None stays None)."""
    if gossip is None:
        return None
    return asdict(gossip)


def gossip_from_jsonable(
    data: Optional[Dict[str, Any]],
) -> Optional[GossipPlan]:
    """Inverse of :func:`gossip_to_jsonable`."""
    if data is None:
        return None
    return GossipPlan(**data)


def freshness_to_jsonable(
    freshness: Optional[FreshnessPlan],
) -> Optional[Dict[str, Any]]:
    """JSON-ready dict for a :class:`FreshnessPlan` (None stays None).

    ``asdict`` recurses into the nested :class:`CacheSizing`, so the
    entry is a plain two-level dict of scalars.
    """
    if freshness is None:
        return None
    return asdict(freshness)


def freshness_from_jsonable(
    data: Optional[Dict[str, Any]],
) -> Optional[FreshnessPlan]:
    """Inverse of :func:`freshness_to_jsonable`."""
    if data is None:
        return None
    data = dict(data)
    data["sizing"] = CacheSizing(**data["sizing"])
    return FreshnessPlan(**data)


# ----------------------------------------------------------------------
# Recording
# ----------------------------------------------------------------------


class ManifestRecorder:
    """Accumulates one config entry per :func:`run_guess_config` call."""

    def __init__(self) -> None:
        self.configs: List[Dict[str, Any]] = []

    def record_config(
        self,
        *,
        system: SystemParams,
        protocol: ProtocolParams,
        faults: Optional[FaultPlan],
        duration: float,
        warmup: float,
        trials: int,
        base_seed: int,
        health_sample_interval: Optional[float],
        seeds: Sequence[int],
        digests: Sequence[Optional[str]],
        keep_queries: bool = False,
        scenarios: Optional[ScenarioPlan] = None,
        resilience: Optional[ResiliencePolicy] = None,
        satisfaction_window: Optional[float] = None,
        gossip: Optional[GossipPlan] = None,
        freshness: Optional[FreshnessPlan] = None,
    ) -> None:
        """Append one executed configuration with its seeds and digests."""
        self.configs.append({
            "system": system_to_jsonable(system),
            "protocol": protocol_to_jsonable(protocol),
            "faults": faults_to_jsonable(faults),
            "scenarios": scenarios_to_jsonable(scenarios),
            "resilience": resilience_to_jsonable(resilience),
            "gossip": gossip_to_jsonable(gossip),
            "freshness": freshness_to_jsonable(freshness),
            "satisfaction_window": satisfaction_window,
            "duration": duration,
            "warmup": warmup,
            "trials": trials,
            "base_seed": base_seed,
            "health_sample_interval": health_sample_interval,
            "keep_queries": keep_queries,
            "seeds": list(seeds),
            "trace_digests": list(digests),
        })

    def build(
        self,
        *,
        profile: str,
        suites: Sequence[str],
        workers: int,
        wall_clock_seconds: float,
        command: Optional[Sequence[str]] = None,
    ) -> Dict[str, Any]:
        """Freeze everything recorded so far into a manifest dict."""
        from repro import __version__

        return {
            "manifest_version": MANIFEST_VERSION,
            "package_version": __version__,
            "profile": profile,
            "suites": list(suites),
            "workers": workers,
            "wall_clock_seconds": wall_clock_seconds,
            "command": list(command) if command is not None else None,
            "configs": list(self.configs),
        }


_ACTIVE: Optional[ManifestRecorder] = None


def active_manifest_recorder() -> Optional[ManifestRecorder]:
    """The recorder installed by :func:`activated`, or None."""
    return _ACTIVE


@contextmanager
def activated(recorder: ManifestRecorder) -> Iterator[ManifestRecorder]:
    """Install ``recorder`` as the process-wide active recorder."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = recorder
    try:
        yield recorder
    finally:
        _ACTIVE = previous


# ----------------------------------------------------------------------
# I/O
# ----------------------------------------------------------------------


def write_manifest(path: Union[str, Path], manifest: Dict[str, Any]) -> None:
    """Write ``manifest`` as pretty-printed, key-sorted JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_manifest(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a manifest written by :func:`write_manifest`."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


# ----------------------------------------------------------------------
# Replay / verification
# ----------------------------------------------------------------------


def specs_for_entry(entry: Dict[str, Any]) -> List[TrialSpec]:
    """Reconstruct a config entry's :class:`TrialSpec` list exactly.

    Rebuilds the specs the way
    :func:`~repro.experiments.runner.run_guess_config` built them when
    the entry was recorded: seeds re-derived from ``base_seed`` and
    ``trace_hash`` forced on (the recorder forces it while active).
    This is what lets the supervisor's checkpoint journal — keyed by
    spec fingerprints — be verified against a manifest on resume.

    Imports the executor lazily for the same reason :func:`replay_config`
    imports the runner lazily: the runner imports this module for the
    active-recorder hook, so a module-level import back would cycle.
    """
    from repro.experiments.executor import TrialSpec

    return [
        TrialSpec(
            system=system_from_jsonable(entry["system"]),
            protocol=protocol_from_jsonable(entry["protocol"]),
            duration=entry["duration"],
            warmup=entry["warmup"],
            seed=derive_seed(entry["base_seed"], f"trial:{trial}"),
            keep_queries=entry.get("keep_queries", False),
            health_sample_interval=entry["health_sample_interval"],
            faults=faults_from_jsonable(entry["faults"]),
            trace_hash=True,
            scenarios=scenarios_from_jsonable(entry.get("scenarios")),
            resilience=resilience_from_jsonable(entry.get("resilience")),
            satisfaction_window=entry.get("satisfaction_window"),
            gossip=gossip_from_jsonable(entry.get("gossip")),
            freshness=freshness_from_jsonable(entry.get("freshness")),
        )
        for trial in range(entry["trials"])
    ]


def replay_config(entry: Dict[str, Any], *, workers: int = 1) -> Tuple[str, ...]:
    """Re-run one recorded configuration; return its trace digests.

    Imports the runner lazily: the runner module imports this module for
    the active-recorder hook, so a module-level import back would cycle.
    """
    from repro.experiments.runner import run_guess_config

    reports = run_guess_config(
        system_from_jsonable(entry["system"]),
        protocol_from_jsonable(entry["protocol"]),
        duration=entry["duration"],
        warmup=entry["warmup"],
        trials=entry["trials"],
        base_seed=entry["base_seed"],
        health_sample_interval=entry["health_sample_interval"],
        faults=faults_from_jsonable(entry["faults"]),
        workers=workers,
        trace_hash=True,
        scenarios=scenarios_from_jsonable(entry.get("scenarios")),
        resilience=resilience_from_jsonable(entry.get("resilience")),
        satisfaction_window=entry.get("satisfaction_window"),
        gossip=gossip_from_jsonable(entry.get("gossip")),
        freshness=freshness_from_jsonable(entry.get("freshness")),
    )
    return tuple(report.trace_digest for report in reports)


def verify_manifest(manifest: Dict[str, Any], *, workers: int = 1) -> List[str]:
    """Replay every config entry; return human-readable mismatch lines.

    An empty return means the manifest reproduced bit for bit: every
    recorded seed re-derives and every trace digest matches.
    """
    problems: List[str] = []
    for index, entry in enumerate(manifest.get("configs", [])):
        expected_seeds = [
            derive_seed(entry["base_seed"], f"trial:{trial}")
            for trial in range(entry["trials"])
        ]
        if expected_seeds != entry["seeds"]:
            problems.append(
                f"config {index}: recorded seeds do not re-derive from "
                f"base_seed {entry['base_seed']}"
            )
            continue
        digests = replay_config(entry, workers=workers)
        expected = tuple(entry["trace_digests"])
        if digests != expected:
            problems.append(
                f"config {index}: trace digests diverge "
                f"(expected {expected}, got {digests})"
            )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: re-run a manifest's configs and verify their digests."""
    parser = argparse.ArgumentParser(
        description="Verify that a run manifest reproduces bit for bit."
    )
    parser.add_argument("manifest", help="path to a manifest.json")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="trial-level parallelism for the replay (default: serial)",
    )
    args = parser.parse_args(argv)
    manifest = load_manifest(args.manifest)
    configs: Sequence[dict] = manifest.get("configs", [])
    problems = verify_manifest(manifest, workers=args.workers)
    if problems:
        for problem in problems:
            print(problem)
        return 1
    print(
        f"manifest OK: {len(configs)} configs, "
        f"{sum(len(c['seeds']) for c in configs)} trials reproduced bit for bit"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
