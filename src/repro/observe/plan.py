"""Observation configuration and the no-op contract.

:class:`ObservationPlan` is the frozen, picklable description of which
observers a simulation should carry; :meth:`Observation.from_plan`
mirrors :meth:`repro.faults.injector.FaultInjector.from_plan` — a
``None`` or all-disabled plan resolves to ``None``, so the host keeps
the **exact pre-observability code path** (no extra attribute loads, no
``if`` on a live object per probe).  An enabled plan builds the
requested observers, and attaching them must still leave the trace
digest bit-identical: observation never perturbs the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro.observe.registry import MetricsRegistry
from repro.observe.spans import SpanRecorder


@dataclass(frozen=True)
class ObservationPlan:
    """Which observers to attach to a :class:`GuessSimulation`.

    Attributes:
        spans: record per-query :class:`~repro.observe.spans.QuerySpan`
            lifecycles.
        span_capacity: ring size for retained spans (None = unbounded).
        registry: attach a shared
            :class:`~repro.observe.registry.MetricsRegistry` to the
            transport and collector (named counters + RTT histogram).
        registry_window: fixed window width in virtual seconds for
            registry snapshots (None = lifetime totals only).

    The all-defaults plan is a no-op: ``ObservationPlan().is_noop()`` is
    True and ``Observation.from_plan`` returns ``None`` for it.
    """

    spans: bool = False
    span_capacity: Optional[int] = None
    registry: bool = False
    registry_window: Optional[float] = None

    def __post_init__(self) -> None:
        if self.span_capacity is not None and self.span_capacity < 1:
            raise ConfigError(
                f"span_capacity must be >= 1, got {self.span_capacity}"
            )
        if self.registry_window is not None and self.registry_window <= 0:
            raise ConfigError(
                f"registry_window must be > 0, got {self.registry_window}"
            )

    def is_noop(self) -> bool:
        """True when no observer is requested."""
        return not (self.spans or self.registry)


class Observation:
    """The live observer bundle built from an :class:`ObservationPlan`."""

    __slots__ = ("plan", "spans", "registry")

    def __init__(
        self,
        plan: ObservationPlan,
        spans: Optional[SpanRecorder],
        registry: Optional[MetricsRegistry],
    ) -> None:
        self.plan = plan
        self.spans = spans
        self.registry = registry

    @classmethod
    def from_plan(
        cls, plan: Optional[ObservationPlan]
    ) -> Optional["Observation"]:
        """Build observers, or ``None`` for a missing/no-op plan.

        Returning ``None`` (not an inert bundle) is the contract: hosts
        branch on ``observation is None`` once at construction time and
        keep the historical hot path untouched when observation is off.
        """
        if plan is None or plan.is_noop():
            return None
        spans = SpanRecorder(capacity=plan.span_capacity) if plan.spans else None
        registry = (
            MetricsRegistry(window=plan.registry_window)
            if plan.registry
            else None
        )
        return cls(plan, spans, registry)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Observation(spans={self.spans is not None}, "
            f"registry={self.registry is not None})"
        )
