"""Phase-structured wall-clock profiling for experiment sweeps.

A :class:`Profiler` aggregates three sample kinds under named phases
(typically one phase per suite):

* **phase wall time** — :meth:`Profiler.phase` context-manager spans;
* **engine samples** — per-``run_until`` event counts, wall seconds and
  simulated seconds, recorded by :class:`~repro.sim.engine.Simulator`
  when its ``profiler`` attribute is set;
* **batch samples** — trial-batch sizes and wall seconds, recorded by
  the executors in :mod:`repro.experiments.executor`.

The active profiler travels through a module-level context
(:func:`activated` / :func:`active_profiler`) rather than through every
call signature, because trials are dispatched through a deep call chain
(``run_all`` → suite → ``run_guess_config`` → executor → trial) that
should not grow a threading parameter.  Process-pool workers have no
access to the parent's profiler, so their engine samples are absent by
design — batch wall-clock (measured in the parent) still covers them.

Determinism contract: the profiler reads the wall clock (that is its
job) but never influences the simulation — it only *observes* event
counts the engine already tracks.  Wall-clock reads are confined to this
module and the engine hook, each carrying an ``allow-wallclock`` pragma.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from repro.reporting.tables import format_table

#: Phase name used for samples recorded outside any phase() block.
GLOBAL_PHASE = "(global)"


class _PhaseStats:
    """Accumulated samples for one phase."""

    __slots__ = (
        "wall_seconds",
        "engine_events",
        "engine_wall",
        "engine_sim",
        "engine_samples",
        "batch_items",
        "batch_wall",
        "batches",
    )

    def __init__(self) -> None:
        self.wall_seconds = 0.0
        self.engine_events = 0
        self.engine_wall = 0.0
        self.engine_sim = 0.0
        self.engine_samples = 0
        self.batch_items = 0
        self.batch_wall = 0.0
        self.batches = 0


class Profiler:
    """Collects per-phase wall-clock and engine throughput samples."""

    def __init__(self) -> None:
        self._order: List[str] = []
        self._stats: Dict[str, _PhaseStats] = {}
        self._current = GLOBAL_PHASE

    def _phase_stats(self, name: str) -> _PhaseStats:
        stats = self._stats.get(name)
        if stats is None:
            stats = _PhaseStats()
            self._stats[name] = stats
            self._order.append(name)
        return stats

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute nested samples (and wall time) to phase ``name``."""
        previous = self._current
        self._current = name
        started = time.perf_counter()  # repro: allow-wallclock (profiling)
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started  # repro: allow-wallclock
            self._phase_stats(name).wall_seconds += elapsed
            self._current = previous

    def record_engine(
        self, *, events: int, wall_seconds: float, sim_seconds: float
    ) -> None:
        """Absorb one engine ``run_until`` sample into the current phase."""
        stats = self._phase_stats(self._current)
        stats.engine_events += events
        stats.engine_wall += wall_seconds
        stats.engine_sim += sim_seconds
        stats.engine_samples += 1

    def record_batch(self, items: int, wall_seconds: float) -> None:
        """Absorb one executor batch sample into the current phase."""
        stats = self._phase_stats(self._current)
        stats.batch_items += items
        stats.batch_wall += wall_seconds
        stats.batches += 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @property
    def phases(self) -> List[str]:
        """Phase names in first-seen order."""
        return list(self._order)

    def events_per_second(self, name: str) -> Optional[float]:
        """Engine events/s for phase ``name`` (None without samples)."""
        stats = self._stats.get(name)
        if stats is None or not stats.engine_wall:
            return None
        return stats.engine_events / stats.engine_wall

    def render(self) -> str:
        """Plain-text profile table, one row per phase."""
        columns = (
            "phase",
            "wall s",
            "engine events",
            "events/s",
            "sim-s/s",
            "trials",
        )
        rows = []
        for name in self._order:
            stats = self._stats[name]
            events_rate = (
                stats.engine_events / stats.engine_wall
                if stats.engine_wall
                else float("nan")
            )
            sim_rate = (
                stats.engine_sim / stats.engine_wall
                if stats.engine_wall
                else float("nan")
            )
            rows.append((
                name,
                stats.wall_seconds,
                stats.engine_events,
                events_rate,
                sim_rate,
                stats.batch_items,
            ))
        return format_table(columns, rows, title="profile report")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Profiler(phases={len(self._order)})"


# ----------------------------------------------------------------------
# Active-profiler context
# ----------------------------------------------------------------------

_ACTIVE: Optional[Profiler] = None


def active_profiler() -> Optional[Profiler]:
    """The profiler installed by :func:`activated`, or None."""
    return _ACTIVE


@contextmanager
def activated(profiler: Profiler) -> Iterator[Profiler]:
    """Install ``profiler`` as the process-wide active profiler."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = profiler
    try:
        yield profiler
    finally:
        _ACTIVE = previous
