"""repro.observe — the observability layer.

Four channels, one contract:

* **query spans** (:mod:`repro.observe.spans`) — per-query causal
  lifecycles: probe order, per-probe outcome/RTT/retries, link- vs
  query-cache target origin, pong harvest, eviction causality;
* **metrics registry** (:mod:`repro.observe.registry`) — named
  counters/gauges/histograms with fixed-width time-window snapshots,
  backing the transport's and collector's counters;
* **profiling hooks** (:mod:`repro.observe.profiler`) — per-phase
  wall-clock and engine events/s sampling, surfaced by
  ``run_all --profile-report``;
* **run manifests** (:mod:`repro.observe.manifest`) — a JSON record of
  every executed configuration (params, fault plan, derived seeds,
  trace digests, package version) from which the run can be replayed
  and verified bit for bit.

The contract: observation never perturbs the simulation.  Observers
disabled (``Observation.from_plan`` → ``None``) means the exact
pre-observability code path; observers enabled means the trace digest is
*still* bit-identical, because recording only appends to observer-owned
state — it never schedules events, draws randomness, or mutates protocol
state.  ``tests/integration/test_determinism.py`` and
``tests/property/test_observe_invisibility.py`` hold this line.
"""

from typing import Any

from repro.observe.plan import Observation, ObservationPlan
from repro.observe.profiler import Profiler, active_profiler
from repro.observe.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    WindowSnapshot,
)
from repro.observe.spans import ProbeRecord, QuerySpan, SpanRecorder
from repro.observe.staleness import StalenessSummary, summarize_staleness

#: Manifest symbols resolve lazily: :mod:`repro.observe.manifest` needs
#: the params and fault-plan modules, which sit *above* the transport in
#: the import graph — and the transport imports this package for its
#: registry.  Deferring the manifest import breaks that cycle without
#: pushing lazy imports into every host module.
_MANIFEST_EXPORTS = frozenset({
    "ManifestRecorder",
    "load_manifest",
    "replay_config",
    "verify_manifest",
    "write_manifest",
})


def __getattr__(name: str) -> Any:
    if name in _MANIFEST_EXPORTS:
        from repro.observe import manifest

        return getattr(manifest, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "ManifestRecorder",
    "MetricsRegistry",
    "Observation",
    "ObservationPlan",
    "ProbeRecord",
    "Profiler",
    "QuerySpan",
    "SpanRecorder",
    "StalenessSummary",
    "WindowSnapshot",
    "active_profiler",
    "load_manifest",
    "summarize_staleness",
    "replay_config",
    "verify_manifest",
    "write_manifest",
]
