"""Per-query lifecycle spans (the causal-trace channel).

A :class:`SpanRecorder` attached to a simulation captures one
:class:`QuerySpan` per executed query: the exact probe order with
per-probe outcome, RTT, retry counts, the link- vs query-cache origin of
each target, how many pong entries each delivered probe harvested, and
eviction causality (dead / refusal / defense-blocked).  This is the
record the paper's aggregate curves cannot provide — diagnosing *why* a
policy collapses (e.g. MRU's cache-poisoning spiral, Figs 16-21)
requires knowing which probe evicted what and where the target came
from.

Determinism contract: recording is **append-only bookkeeping on objects
the query loop already holds**.  The recorder never schedules events,
never draws randomness, and never touches peer or cache state, so an
attached recorder leaves the trace digest bit-identical to a run without
one (asserted in ``tests/integration/test_determinism.py`` and the
hypothesis property in ``tests/property/test_observe_invisibility.py``).

Spans are held in a bounded ring (``capacity``); overflow drops the
*oldest* span and is counted, never silent.  ``to_jsonl`` exports one
JSON object per line for offline analysis.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import (
    IO,
    TYPE_CHECKING,
    Any,
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.errors import ConfigError

if TYPE_CHECKING:
    from repro.core.search import QueryResult

#: ``ProbeRecord.origin`` values.
ORIGIN_LINK = "link"
ORIGIN_QUERY = "query"

#: ``ProbeRecord.status`` values (``blocked`` = defense refused to probe).
STATUS_DELIVERED = "delivered"
STATUS_TIMEOUT = "timeout"
STATUS_REFUSED = "refused"
STATUS_BLOCKED = "blocked"

#: ``ProbeRecord.eviction_cause`` values.
EVICT_DEAD = "dead"
EVICT_REFUSAL = "refusal"
EVICT_BLOCKED = "blocked"


@dataclass(frozen=True, slots=True)
class ProbeRecord:
    """One probe (or defense block) inside a query span.

    Attributes:
        index: 0-based position in the query's probe order.
        wave: which probe wave issued it (k-parallel probing).
        time: virtual timestamp the probe went out at.
        target: probed address.
        origin: ``"link"`` if the target came from the querying peer's
            link cache, ``"query"`` if it was harvested from a pong into
            the per-query cache.
        status: ``delivered`` / ``timeout`` / ``refused`` / ``blocked``
            (blocked probes never reach the wire).
        rtt: charged round-trip seconds (includes retry waiting).
        retries: extra sends the retry policy made for this probe.
        recovered: a retry resolved what first looked like a timeout.
        spurious: the final timeout hit a live target (injected loss).
        results: results the reply carried (delivered probes only).
        pong_entries: entries in the piggybacked pong.
        admitted: pong entries actually admitted to the candidate pool
            (post defense filtering and query-cache dedup).
        evicted: the probe caused a link-cache eviction of its target.
        eviction_cause: ``dead`` / ``refusal`` / ``blocked`` or None.
    """

    index: int
    wave: int
    time: float
    target: int
    origin: str
    status: str
    rtt: float = 0.0
    retries: int = 0
    recovered: bool = False
    spurious: bool = False
    results: int = 0
    pong_entries: int = 0
    admitted: int = 0
    evicted: bool = False
    eviction_cause: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready rendering."""
        return asdict(self)


class QuerySpan:
    """The full lifecycle of one query, built probe by probe.

    The query loop appends :class:`ProbeRecord` rows via
    :meth:`record_probe`; the simulation seals the span with the final
    :class:`~repro.core.search.QueryResult` via
    :meth:`SpanRecorder.finish`.
    """

    __slots__ = (
        "query_id",
        "peer",
        "target_file",
        "start",
        "probes",
        "satisfied",
        "results",
        "duration",
        "response_time",
        "pool_exhausted",
        "completed",
    )

    def __init__(
        self, query_id: int, peer: int, target_file: int, start: float
    ) -> None:
        self.query_id = query_id
        self.peer = peer
        self.target_file = target_file
        self.start = start
        self.probes: List[ProbeRecord] = []
        self.satisfied = False
        self.results = 0
        self.duration = 0.0
        self.response_time: Optional[float] = None
        self.pool_exhausted = False
        self.completed = False

    def record_probe(self, **fields: Any) -> None:
        """Append one probe record (``index`` is assigned here)."""
        self.probes.append(ProbeRecord(index=len(self.probes), **fields))

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready rendering (one object per span)."""
        return {
            "query_id": self.query_id,
            "peer": self.peer,
            "target_file": self.target_file,
            "start": self.start,
            "satisfied": self.satisfied,
            "results": self.results,
            "duration": self.duration,
            "response_time": self.response_time,
            "pool_exhausted": self.pool_exhausted,
            "completed": self.completed,
            "probes": [probe.as_dict() for probe in self.probes],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuerySpan(id={self.query_id}, peer={self.peer}, "
            f"probes={len(self.probes)}, satisfied={self.satisfied})"
        )


class SpanRecorder:
    """Bounded ring of completed query spans.

    Args:
        capacity: maximum spans retained; the oldest span is dropped
            (and counted in :attr:`dropped`) when the ring is full.
            ``None`` retains everything.

    Query ids are a plain monotonic counter — allocation draws no
    randomness and is stable under identical event orders, so ids line
    up across same-seed runs.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ConfigError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._spans: Deque[QuerySpan] = deque(maxlen=capacity)
        self._next_id = 0
        self.started = 0
        self.completed = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def begin(self, peer: int, target_file: int, time: float) -> QuerySpan:
        """Open a span for a query issued by ``peer`` at ``time``."""
        span = QuerySpan(
            query_id=self._next_id,
            peer=peer,
            target_file=target_file,
            start=time,
        )
        self._next_id += 1
        self.started += 1
        return span

    def finish(self, span: QuerySpan, result: QueryResult) -> None:
        """Seal ``span`` with its :class:`~repro.core.search.QueryResult`."""
        span.satisfied = result.satisfied
        span.results = result.results
        span.duration = result.duration
        span.response_time = result.response_time
        span.pool_exhausted = result.pool_exhausted
        span.completed = True
        self.completed += 1
        if self.capacity is not None and len(self._spans) == self.capacity:
            self.dropped += 1
        self._spans.append(span)

    # ------------------------------------------------------------------
    # Access / export
    # ------------------------------------------------------------------

    @property
    def spans(self) -> Tuple[QuerySpan, ...]:
        """Retained spans, oldest first."""
        return tuple(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[QuerySpan]:
        return iter(self._spans)

    def to_jsonl(self, stream: IO[str]) -> int:
        """Write one JSON object per retained span; returns span count."""
        count = 0
        for span in self._spans:
            stream.write(json.dumps(span.as_dict(), sort_keys=True))
            stream.write("\n")
            count += 1
        return count

    def dump_jsonl(self, path: Union[str, Path]) -> int:
        """Write :meth:`to_jsonl` output to ``path``; returns span count."""
        with open(path, "w", encoding="utf-8") as handle:
            return self.to_jsonl(handle)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpanRecorder(retained={len(self._spans)}, "
            f"started={self.started}, dropped={self.dropped})"
        )
