"""Churn statistics for a lifetime workload.

Answers the sizing questions behind §6.1: given a lifetime model, how
fast does a network of N peers turn over, and what fraction of a link
cache's entries should be expected to die within one PingInterval?
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.metrics.summary import mean, quantile
from repro.workload.lifetimes import LifetimeModel


@dataclass(frozen=True)
class ChurnStats:
    """Monte-Carlo summary of a lifetime model.

    Attributes:
        median_lifetime: sampled median session length (s).
        mean_lifetime: sampled mean session length (s).
        p10_lifetime: the short-session tail (s).
        turnover_per_hour: expected departures per hour in a network of
            ``network_size`` peers (N / mean lifetime * 3600).
        death_within_interval_p: probability a peer picked uniformly at
            random (in steady state, by inspection paradox approximated
            from fresh draws) dies within one ``interval``.
    """

    median_lifetime: float
    mean_lifetime: float
    p10_lifetime: float
    turnover_per_hour: float
    death_within_interval_p: float

    @classmethod
    def estimate(
        cls,
        model: LifetimeModel,
        network_size: int,
        interval: float,
        rng: random.Random,
        samples: int = 5000,
    ) -> "ChurnStats":
        """Estimate churn statistics by sampling ``model``.

        Raises:
            WorkloadError: on non-positive sizes/intervals.
        """
        if network_size < 1:
            raise WorkloadError(
                f"network_size must be >= 1, got {network_size}"
            )
        if interval <= 0:
            raise WorkloadError(f"interval must be > 0, got {interval}")
        if samples < 10:
            raise WorkloadError(f"samples must be >= 10, got {samples}")
        draws = [model.sample(rng) for _ in range(samples)]
        mean_lifetime = mean(draws)
        return cls(
            median_lifetime=quantile(draws, 0.5),
            mean_lifetime=mean_lifetime,
            p10_lifetime=quantile(draws, 0.1),
            turnover_per_hour=network_size / mean_lifetime * 3600.0,
            death_within_interval_p=(
                sum(1 for d in draws if d <= interval) / len(draws)
            ),
        )

    def suggested_ping_interval(
        self, cache_size: int, target_dead_per_cycle: float = 1.0
    ) -> float:
        """A back-of-envelope PingInterval for a given cache size.

        A cache of ``c`` entries pinged round-robin revisits each entry
        every ``c * interval`` seconds; keeping the expected number of
        deaths per revisit cycle near ``target_dead_per_cycle`` gives
        ``interval ≈ target * mean_lifetime / c²``... in practice the
        simpler sizing the paper suggests is revisit-period ≪ median
        lifetime, i.e. ``interval <= median_lifetime / cache_size``.
        """
        if cache_size < 1:
            raise WorkloadError(f"cache_size must be >= 1, got {cache_size}")
        if target_dead_per_cycle <= 0:
            raise WorkloadError(
                f"target_dead_per_cycle must be > 0, got {target_dead_per_cycle}"
            )
        return max(1.0, self.median_lifetime / cache_size * target_dead_per_cycle)
