"""Offline analysis helpers.

Tools for digging into simulation output beyond the paper's headline
metrics:

* :mod:`repro.analysis.overlay_stats` — structural statistics of the
  conceptual overlay (degree distributions, path lengths, robustness to
  node removal — the §3.3 fragmentation-attack lens).
* :mod:`repro.analysis.response_time` — response-time distributions and
  the serial/parallel what-if arithmetic of §6.2.
* :mod:`repro.analysis.churn` — session/churn statistics of a workload.
"""

from repro.analysis.churn import ChurnStats
from repro.analysis.overlay_stats import OverlayStats
from repro.analysis.response_time import (
    ResponseTimeStats,
    parallel_response_estimate,
)

__all__ = [
    "ChurnStats",
    "OverlayStats",
    "ResponseTimeStats",
    "parallel_response_estimate",
]
