"""Response-time analysis (paper §6.2).

The paper reasons about response time arithmetically: with serial probes
every probe costs one timeout period, so a query needing ``p`` probes
answers in ``~p * spacing`` seconds; ``k`` parallel walkers divide that
by ``k`` at a cost of at most ``k - 1`` extra probes.  This module
packages both the measured-distribution view (over retained
:class:`~repro.core.search.QueryResult` records) and the paper's
what-if estimate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.search import QueryResult
from repro.errors import ConfigError
from repro.metrics.summary import mean, quantile


@dataclass(frozen=True)
class ResponseTimeStats:
    """Summary of satisfied-query response times.

    Attributes:
        count: satisfied queries measured.
        mean: mean response time (s).
        p50 / p95 / p99: quantiles (s).
        worst: maximum observed (s).
    """

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    worst: float

    @classmethod
    def from_results(cls, results: Sequence[QueryResult]) -> "ResponseTimeStats":
        """Build from retained query records (``keep_queries=True`` runs).

        Unsatisfied queries carry no response time and are skipped.
        """
        times = [
            r.response_time for r in results if r.response_time is not None
        ]
        if not times:
            return cls(count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0, worst=0.0)
        return cls(
            count=len(times),
            mean=mean(times),
            p50=quantile(times, 0.5),
            p95=quantile(times, 0.95),
            p99=quantile(times, 0.99),
            worst=max(times),
        )


def parallel_response_estimate(
    probes_needed: float,
    walkers: int,
    spacing: float = 0.2,
) -> tuple[float, float]:
    """The paper's §6.2 arithmetic: ``(est. response time, est. probes)``.

    Given a query that serially needs ``probes_needed`` probes, ``k``
    walkers answer in ``ceil(p / k) * spacing`` seconds using at most
    ``p + k - 1`` probes (the final wave is fully charged).

    Example — the paper's own numbers: with MFS pongs averaging 17
    probes, k=5 gives at most 21 probes and < 1 second::

        >>> parallel_response_estimate(17, 5)
        (0.8, 21.0)

    Raises:
        ConfigError: on non-positive inputs.
    """
    if probes_needed <= 0:
        raise ConfigError(f"probes_needed must be > 0, got {probes_needed}")
    if walkers < 1:
        raise ConfigError(f"walkers must be >= 1, got {walkers}")
    if spacing <= 0:
        raise ConfigError(f"spacing must be > 0, got {spacing}")
    waves = math.ceil(probes_needed / walkers)
    return waves * spacing, float(probes_needed + walkers - 1)
