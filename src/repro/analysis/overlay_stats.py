"""Structural statistics of a conceptual overlay snapshot.

The paper argues (§3.3) that GUESS is exposed to *fragmentation attacks*
when well-connected peers vanish simultaneously.  :class:`OverlayStats`
quantifies that exposure for a snapshot:

* in/out degree distributions (who would be missed?);
* mean shortest-path length sampled by BFS (how quickly can pong
  chaining reach the network?);
* a targeted-removal experiment: drop the top in-degree peers and
  measure the surviving largest component — the attack the paper
  describes, run as analysis.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Sequence

from repro.errors import TopologyError
from repro.metrics.summary import mean, quantile
from repro.network.address import Address
from repro.network.overlay import OverlaySnapshot
from repro.network.unionfind import UnionFind


class OverlayStats:
    """Structural analysis over one :class:`OverlaySnapshot`."""

    def __init__(self, snapshot: OverlaySnapshot) -> None:
        self.snapshot = snapshot
        self._out: Dict[Address, int] = snapshot.out_degrees()
        in_degrees: Dict[Address, int] = {a: 0 for a in snapshot.live}
        for targets in snapshot.edges.values():
            for target in targets:
                in_degrees[target] += 1
        self._in = in_degrees

    # ------------------------------------------------------------------
    # Degrees
    # ------------------------------------------------------------------

    def out_degree_quantiles(self, qs: Sequence[float] = (0.5, 0.9, 0.99)):
        """Selected quantiles of the live out-degree distribution."""
        values = [float(v) for v in self._out.values()]
        if not values:
            return {q: 0.0 for q in qs}
        return {q: quantile(values, q) for q in qs}

    def in_degree_quantiles(self, qs: Sequence[float] = (0.5, 0.9, 0.99)):
        """Selected quantiles of the in-degree (who-points-at-me) distribution."""
        values = [float(v) for v in self._in.values()]
        if not values:
            return {q: 0.0 for q in qs}
        return {q: quantile(values, q) for q in qs}

    def most_referenced(self, k: int = 10) -> List[tuple[Address, int]]:
        """The ``k`` peers appearing in the most link caches.

        These are exactly the peers whose simultaneous departure hurts
        most (the fragmentation-attack targets).
        """
        ranked = sorted(self._in.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:k]

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------

    def mean_reach_path_length(self, sources: Sequence[Address]) -> float:
        """Mean directed BFS distance from ``sources`` to reachable peers.

        This approximates how many pong-chaining steps separate a
        querier from the rest of the network.

        Raises:
            TopologyError: if a source is not live.
        """
        totals: List[float] = []
        for source in sources:
            if source not in self.snapshot.live:
                raise TopologyError(f"source {source} is not live")
            distances = {source: 0}
            frontier = deque([source])
            while frontier:
                node = frontier.popleft()
                for target in self.snapshot.edges.get(node, ()):
                    if target not in distances:
                        distances[target] = distances[node] + 1
                        frontier.append(target)
            reached = [d for d in distances.values() if d > 0]
            if reached:
                totals.append(mean([float(d) for d in reached]))
        return mean(totals)

    # ------------------------------------------------------------------
    # Fragmentation attack
    # ------------------------------------------------------------------

    def targeted_removal_lcc(self, remove_fraction: float) -> int:
        """LCC size after removing the top in-degree peers.

        Args:
            remove_fraction: fraction (0..1) of live peers removed, by
                descending in-degree — the §3.3 fragmentation attack.

        Returns:
            Size of the largest surviving weakly connected component.
        """
        if not 0.0 <= remove_fraction < 1.0:
            raise TopologyError(
                f"remove_fraction must be in [0, 1), got {remove_fraction}"
            )
        count = int(len(self.snapshot.live) * remove_fraction)
        doomed = {address for address, _ in self.most_referenced(count)}
        survivors = self.snapshot.live - doomed
        if not survivors:
            return 0
        uf = UnionFind(survivors)
        for owner, targets in self.snapshot.edges.items():
            if owner in doomed:
                continue
            for target in targets:
                if target not in doomed:
                    uf.union(owner, target)
        return uf.largest_component_size()

    def random_removal_lcc(self, remove_fraction: float, rng) -> int:
        """LCC after removing uniformly random peers (attack control)."""
        if not 0.0 <= remove_fraction < 1.0:
            raise TopologyError(
                f"remove_fraction must be in [0, 1), got {remove_fraction}"
            )
        live = sorted(self.snapshot.live)
        count = int(len(live) * remove_fraction)
        doomed = set(rng.sample(live, count)) if count else set()
        survivors = self.snapshot.live - doomed
        if not survivors:
            return 0
        uf = UnionFind(survivors)
        for owner, targets in self.snapshot.edges.items():
            if owner in doomed:
                continue
            for target in targets:
                if target not in doomed:
                    uf.union(owner, target)
        return uf.largest_component_size()
