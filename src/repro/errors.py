"""Exception hierarchy for the ``repro`` package.

All exceptions raised by this library derive from :class:`ReproError`, so a
caller embedding the simulator can catch one base class.  Subclasses are
deliberately fine-grained: configuration mistakes (:class:`ConfigError`),
misuse of the event engine (:class:`SimulationError`), and policy-framework
lookups (:class:`PolicyError`) fail in different phases of a run and callers
often want to handle them differently.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ConfigError(ReproError, ValueError):
    """A system or protocol parameter is out of its valid domain.

    Raised eagerly at construction time (``SystemParams`` /
    ``ProtocolParams`` validation) so that a bad sweep fails before any
    simulation time is spent.
    """


class SimulationError(ReproError, RuntimeError):
    """The discrete-event engine was used incorrectly.

    Examples: scheduling an event in the past, running a simulator that has
    already been exhausted, or re-entrant calls to ``run``.
    """


class PolicyError(ReproError, KeyError):
    """An unknown policy name was requested from the policy registry."""


class TopologyError(ReproError, RuntimeError):
    """An overlay/graph operation was applied to an invalid structure."""


class WorkloadError(ReproError, ValueError):
    """A workload model was configured with impossible parameters."""
