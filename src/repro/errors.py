"""Exception hierarchy for the ``repro`` package.

All exceptions raised by this library derive from :class:`ReproError`, so a
caller embedding the simulator can catch one base class.  Subclasses are
deliberately fine-grained because they fail in different phases of a run
and callers often want to handle them differently:

* **configuration time** — :class:`ConfigError`: a parameter is outside
  its valid domain; raised before any simulation time is spent.
* **simulation time** — :class:`SimulationError` (event-engine misuse),
  :class:`PolicyError` (unknown policy name), :class:`TopologyError`
  (invalid overlay operation), :class:`WorkloadError` (impossible
  workload model).
* **execution time** — :class:`ExecutionError`: the *harness* around the
  simulation failed (a worker process crashed, a watchdog fired, a sweep
  was interrupted) even though the configuration and simulation logic
  were sound.  :class:`ChaosError` is the deliberate, test-only variant
  raised by the crash-injection hook.

:class:`TrialFailure` is not an exception but the picklable *record* of a
trial that exhausted every retry under supervised execution; it stands in
for the missing :class:`~repro.metrics.collectors.SimulationReport` in a
batch's results so sibling trials survive.
"""

from __future__ import annotations

from dataclasses import dataclass


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ConfigError(ReproError, ValueError):
    """A system or protocol parameter is out of its valid domain.

    Raised eagerly at construction time (``SystemParams`` /
    ``ProtocolParams`` validation) so that a bad sweep fails before any
    simulation time is spent.
    """


class ScenarioError(ConfigError):
    """A resilience scenario plan is malformed.

    Raised eagerly at plan-construction time by the frozen specs in
    :mod:`repro.resilience.scenarios`: a churn-storm fraction outside
    ``[0, 1]``, a non-positive window width, a flash-crowd window whose
    end does not exceed its start, or overlapping enabled crowd windows
    (which would make the arrival intensity ambiguous).
    """


class FreshnessError(ConfigError):
    """A cache-freshness plan is malformed.

    Raised eagerly at plan-construction time by the frozen specs in
    :mod:`repro.freshness.plan`: a negative notification budget or
    propagation depth, a non-positive notification delay, an unknown
    :class:`~repro.freshness.plan.CacheSizing` policy name, or sizing
    bounds that leave no admissible capacity.
    """


class SimulationError(ReproError, RuntimeError):
    """The discrete-event engine was used incorrectly.

    Examples: scheduling an event in the past, running a simulator that has
    already been exhausted, or re-entrant calls to ``run``.
    """


class PolicyError(ReproError, KeyError):
    """An unknown policy name was requested from the policy registry."""


class TopologyError(ReproError, RuntimeError):
    """An overlay/graph operation was applied to an invalid structure."""


class WorkloadError(ReproError, ValueError):
    """A workload model was configured with impossible parameters."""


class ExecutionError(ReproError, RuntimeError):
    """The execution harness failed around an otherwise valid simulation.

    Raised by the trial executors and the supervisor for faults of the
    *machinery*: a worker pool that cannot be (re)spawned, a checkpoint
    journal that does not match its manifest, or a sweep interrupted
    before completion.  Distinct from :class:`SimulationError`, which
    means the simulation itself was driven incorrectly.
    """


class ChaosError(ExecutionError):
    """Deliberate failure raised by the crash-injection (chaos) hook.

    Only ever raised when a :class:`~repro.experiments.executor.TrialSpec`
    carries a ``chaos`` field in ``raise`` mode — i.e. in tests and smoke
    drills of the supervisor.  Seeing one outside a chaos run is a bug.
    """


@dataclass(frozen=True)
class TrialFailure:
    """Picklable record of a trial that exhausted every retry.

    Supervised execution quarantines a trial after ``max_attempts``
    failed attempts instead of aborting the batch; this record takes the
    report's slot in the (spec-ordered) results so downstream code can
    see exactly which trial failed, how hard it was retried, and why.

    Attributes:
        index: position of the trial in its batch (spec order).
        attempts: number of attempts that were made before quarantine.
        error: ``repr`` of the last exception (or a watchdog/timeout
            description) — a string so the record pickles everywhere.
        kind: coarse failure class: ``"error"`` (the trial raised),
            ``"crash"`` (its worker process died), or ``"timeout"``
            (the watchdog deadline passed).
    """

    index: int
    attempts: int
    error: str
    kind: str = "error"

    #: Mirrors ``SimulationReport.trace_digest`` so manifest recording can
    #: treat a quarantined slot uniformly (a failed trial has no digest).
    trace_digest = None

    def __str__(self) -> str:
        return (
            f"trial {self.index} quarantined after {self.attempts} "
            f"attempt(s): [{self.kind}] {self.error}"
        )
