"""Per-second sliding-window counters.

GUESS peers refuse probes once they have processed ``MaxProbesPerSecond``
probes within a one-second window (paper Section 5/6.3).  The simulator
timestamps every probe, so capacity accounting reduces to "how many events
landed in the last second?".

:class:`SlidingWindowCounter` keeps a deque of event timestamps no older
than the window and answers both *query* ("would one more event exceed the
limit?") and *record* operations in amortised O(1).
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.errors import ConfigError


class SlidingWindowCounter:
    """Counts events inside a trailing time window.

    Args:
        window: window length in seconds (must be > 0).
        limit: maximum number of events allowed inside the window; ``None``
            means unlimited (the counter still counts, never refuses).

    The counter requires timestamps to be fed in nondecreasing order, which
    the event engine guarantees.
    """

    __slots__ = ("window", "limit", "_times", "_total")

    def __init__(self, window: float = 1.0, limit: int | None = None) -> None:
        if window <= 0:
            raise ConfigError(f"window must be > 0, got {window}")
        if limit is not None and limit < 0:
            raise ConfigError(f"limit must be >= 0 or None, got {limit}")
        self.window = float(window)
        self.limit = limit
        self._times: Deque[float] = deque()
        self._total = 0

    def _expire(self, now: float) -> None:
        cutoff = now - self.window
        times = self._times
        while times and times[0] <= cutoff:
            times.popleft()

    def count(self, now: float) -> int:
        """Number of recorded events with timestamp in ``(now - window, now]``."""
        self._expire(now)
        return len(self._times)

    def would_exceed(self, now: float) -> bool:
        """True if recording one more event at ``now`` would break the limit."""
        if self.limit is None:
            return False
        return self.count(now) + 1 > self.limit

    def record(self, now: float) -> None:
        """Record one event at timestamp ``now``.

        Timestamps must be nondecreasing; feeding an older timestamp raises
        :class:`~repro.errors.ConfigError` since it would silently corrupt
        the window.
        """
        if self._times and now < self._times[-1]:
            raise ConfigError(
                f"timestamps must be nondecreasing: got {now} after {self._times[-1]}"
            )
        self._expire(now)
        self._times.append(now)
        self._total += 1

    def try_record(self, now: float) -> bool:
        """Record the event unless it would exceed the limit.

        Returns:
            True if the event was admitted, False if it was refused.
        """
        if self.would_exceed(now):
            return False
        self.record(now)
        return True

    @property
    def total(self) -> int:
        """Lifetime number of admitted events (ignores the window)."""
        return self._total

    def reset(self) -> None:
        """Forget all recorded events (lifetime total included)."""
        self._times.clear()
        self._total = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SlidingWindowCounter(window={self.window}, limit={self.limit}, "
            f"in_window={len(self._times)}, total={self._total})"
        )


class BucketedRateLimiter:
    """Per-second-bucket rate limiter tolerant of out-of-order timestamps.

    Queries execute atomically at their event time but stamp their probes
    with forward-looking virtual timestamps (``t + i * probe_spacing``), so
    a target peer can legitimately observe timestamps that are not
    monotone across querying peers.  This limiter counts events into
    ``floor(time / window)`` buckets, which is insensitive to arrival
    order, and prunes buckets older than a horizon to bound memory.

    Args:
        window: bucket width in seconds (the paper's capacity is per
            one-second window).
        limit: maximum events per bucket; ``None`` disables refusal.
    """

    __slots__ = ("window", "limit", "_buckets", "_total", "_max_bucket")

    #: Number of live buckets that triggers a prune sweep.
    _PRUNE_THRESHOLD = 256

    def __init__(self, window: float = 1.0, limit: int | None = None) -> None:
        if window <= 0:
            raise ConfigError(f"window must be > 0, got {window}")
        if limit is not None and limit < 0:
            raise ConfigError(f"limit must be >= 0 or None, got {limit}")
        self.window = float(window)
        self.limit = limit
        self._buckets: dict[int, int] = {}
        self._total = 0
        self._max_bucket = -1

    def _bucket(self, now: float) -> int:
        return int(now / self.window)

    def count(self, now: float) -> int:
        """Events recorded in the bucket containing ``now``."""
        return self._buckets.get(self._bucket(now), 0)

    def would_exceed(self, now: float) -> bool:
        """True if one more event in ``now``'s bucket would break the limit."""
        if self.limit is None:
            return False
        return self.count(now) + 1 > self.limit

    def record(self, now: float) -> None:
        """Record one event in ``now``'s bucket (order-independent)."""
        bucket = self._bucket(now)
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1
        self._total += 1
        if bucket > self._max_bucket:
            self._max_bucket = bucket
        if len(self._buckets) > self._PRUNE_THRESHOLD:
            self._prune()

    def try_record(self, now: float) -> bool:
        """Record unless the bucket is full; True if admitted."""
        if self.would_exceed(now):
            return False
        self.record(now)
        return True

    def _prune(self) -> None:
        # Probe timestamps never run more than one query's span behind the
        # clock, so buckets far older than the newest are dead weight.
        horizon = self._max_bucket - self._PRUNE_THRESHOLD // 2
        self._buckets = {
            bucket: count
            for bucket, count in self._buckets.items()
            if bucket >= horizon
        }

    @property
    def total(self) -> int:
        """Lifetime number of recorded events."""
        return self._total

    def reset(self) -> None:
        """Forget all recorded events."""
        self._buckets.clear()
        self._total = 0
        self._max_bucket = -1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BucketedRateLimiter(window={self.window}, limit={self.limit}, "
            f"total={self._total})"
        )
