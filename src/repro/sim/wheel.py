"""Pluggable event schedulers: binary heap and hierarchical timing wheel.

The engine's scheduling workload is timer-dominated: every live peer
keeps a periodic ping timer and a one-shot death timer, so at network
size *n* the pending set holds ~2n events and the binary heap pays
O(log n) tuple comparisons per push *and* per pop.  At the million-peer
scale the heap itself — not the protocol — becomes the kernel ceiling
(the same observation the OPNET flooding-search analysis makes about
simulator harnesses capping evaluation scale).

Two schedulers implement one contract:

* :class:`HeapScheduler` — the reference oracle: exactly the classic
  ``heapq`` queue the engine always used.
* :class:`TimingWheel` — a calendar-queue / timing-wheel hybrid with
  O(1) amortized insertion for the timer-dominated workload and an
  overflow heap for far-future events.

**The firing-order contract is bit-for-bit identical** for both: events
pop in ``(time, priority, seq)`` order — time, then priority class, then
scheduling order.  The golden trace digests in ``tests/integration``
reproduce under either scheduler, and a hypothesis property test drives
both through random schedules (ties, cancellations, far-future times)
asserting identical fired sequences.

Wheel geometry
--------------

Pending events live in one of three containers, by distance from the
cursor:

* the **near window** — all events with ``time < near_end``, split into
  a *sorted run* (the current bucket, Timsort-sorted descending once so
  successive minima are O(1) tail pops) and a tiny *incursion heap* for
  events scheduled into the already-open window while it drains (e.g. a
  same-instant rebirth scheduled by the death event itself);
* the **bucket ring** — ``slots`` circular buckets of width ``tick``
  seconds covering ``[near_end, near_end + slots*tick)``; insertion is
  an O(1) unsorted append;
* the **overflow heap** — everything beyond the ring's horizon (e.g.
  lifetimes drawn days into the future).

When the near window drains, the cursor advances one bucket: the
bucket is sorted once in C (Timsort — cost paid per event per
lifetime, not per comparison level as in a heap) and becomes the new
sorted run, and any overflow events that fell inside the ring's new
horizon migrate into their buckets.  Empty stretches are skipped by
jumping the cursor to the overflow minimum.  An event is never placed
in a bucket *later* than its timestamp's true bucket (a floor-division
guard handles float rounding), so an event can only ever reach the
near window *early* — where exact key order is restored by the sort —
never late.

Tombstone hygiene
-----------------

Cancellation stays O(1) and lazy: a cancelled event is skipped when it
surfaces.  Each scheduler counts its pending tombstones and, when they
outnumber live events (beyond a small floor), compacts: filters every
container, re-heapifies, and increments ``compactions``.  Mass
cancellation therefore cannot grow the queue unboundedly, and the
cancelled ratio is exported to the observability registry by
:class:`~repro.core.network_sim.GuessSimulation` (reading counters never
perturbs the run).
"""

from __future__ import annotations

import math
from heapq import heapify, heappop, heappush
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import EventHandle

    #: ``(time, priority, seq, handle)`` — the first three fields are
    #: the engine's total event order; ``seq`` is unique, so tuple
    #: comparison never reaches the (incomparable) handle.
    QueueItem = Tuple[float, int, int, "EventHandle"]

#: Queues smaller than this skip compaction (filtering is pure churn).
_COMPACT_MIN_SIZE = 64

#: Default bucket width in seconds.  Protocol timers (pings, probe
#: spacing, deaths) are seconds-scale, so one-second buckets keep the
#: near heap at roughly "one second of workload" regardless of network
#: size.
DEFAULT_TICK = 1.0

#: Default ring size: 1024 one-second buckets cover a ~17-minute
#: horizon, which holds the vast majority of drawn peer lifetimes; the
#: far tail waits in the overflow heap.
DEFAULT_SLOTS = 1024


class _SchedulerBase:
    """Tombstone accounting shared by both schedulers.

    Subclasses implement ``push`` / ``pop_next`` / ``_compact`` and
    maintain ``_count`` (pending items, tombstones included).  Queue
    items are ``(time, priority, seq, handle)`` tuples.
    """

    __slots__ = ("_count", "_tombstones", "_compactions")

    #: Human-readable scheduler name (``Simulator.scheduler``).
    name = "base"

    def __init__(self) -> None:
        self._count = 0
        self._tombstones = 0
        self._compactions = 0

    def __len__(self) -> int:
        return self._count

    @property
    def tombstones(self) -> int:
        """Cancelled events still occupying queue slots."""
        return self._tombstones

    @property
    def compactions(self) -> int:
        """Number of tombstone compaction passes performed."""
        return self._compactions

    @property
    def cancelled_ratio(self) -> float:
        """Fraction of pending slots held by tombstones (0 when empty)."""
        return self._tombstones / self._count if self._count else 0.0

    def note_cancel(self) -> None:
        """One pending event was cancelled; compact if tombstones dominate."""
        self._tombstones += 1
        if (
            self._count > _COMPACT_MIN_SIZE
            and self._tombstones * 2 > self._count
        ):
            self._compact()
            self._compactions += 1

    def _discard_tombstone(self) -> None:
        """Bookkeeping for a tombstone dropped during lazy pruning."""
        self._count -= 1
        self._tombstones -= 1

    def _compact(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class HeapScheduler(_SchedulerBase):
    """The classic binary-heap event queue (reference oracle).

    O(log n) push/pop.  Kept selectable forever: it is the structure the
    original golden digests were recorded against, and the hypothesis
    equivalence suite uses it as the ordering oracle for the wheel.
    """

    __slots__ = ("_heap",)

    name = "heap"

    def __init__(self) -> None:
        super().__init__()
        self._heap: List["QueueItem"] = []

    def push(self, item: "QueueItem") -> None:
        heappush(self._heap, item)
        self._count += 1

    def pop_next(self, horizon: float) -> Optional["EventHandle"]:
        """Pop the earliest live event if its time is <= ``horizon``.

        Surfaced tombstones are pruned along the way.  Returns None —
        leaving the queue untouched — when the queue is empty or the
        earliest live event lies beyond the horizon.
        """
        heap = self._heap
        while heap:
            item = heap[0]
            handle = item[3]
            if handle._cancelled:
                heappop(heap)
                self._discard_tombstone()
                continue
            if item[0] > horizon:
                return None
            heappop(heap)
            self._count -= 1
            return handle
        return None

    def _compact(self) -> None:
        self._heap = [
            item for item in self._heap if not item[3]._cancelled
        ]
        heapify(self._heap)
        self._count = len(self._heap)
        self._tombstones = 0


class TimingWheel(_SchedulerBase):
    """Calendar-queue scheduler: O(1) amortized insert for timer traffic.

    Args:
        tick: bucket width in simulated seconds.
        slots: number of buckets in the ring; the ring spans
            ``slots * tick`` seconds past the cursor.

    See the module docstring for the geometry and the ordering argument.
    """

    __slots__ = (
        "_tick",
        "_slots",
        "_span",
        "_buckets",
        "_sorted",
        "_incursion",
        "_cursor",
        "_near_end",
        "_overflow",
        "_bucket_count",
    )

    name = "wheel"

    def __init__(
        self, tick: float = DEFAULT_TICK, slots: int = DEFAULT_SLOTS
    ) -> None:
        super().__init__()
        if not tick > 0 or not math.isfinite(tick):
            raise ConfigError(f"wheel tick must be finite and > 0, got {tick}")
        if slots < 1:
            raise ConfigError(f"wheel slots must be >= 1, got {slots}")
        self._tick = float(tick)
        self._slots = int(slots)
        self._span = self._tick * self._slots
        self._buckets: List[List["QueueItem"]] = [[] for _ in range(slots)]
        #: The draining bucket, sorted DESCENDING once (Timsort, C) so
        #: successive minima pop O(1) from the tail — together with
        #: ``_incursion`` this holds every pending event with
        #: ``time < _near_end``.
        self._sorted: List["QueueItem"] = []
        #: Small heap of events scheduled *into* the near window while
        #: it drains (e.g. a same-instant rebirth scheduled by a death
        #: event); typically a handful of items.
        self._incursion: List["QueueItem"] = []
        #: Absolute index of the next bucket to drain; bucket *i* covers
        #: ``[i*tick, (i+1)*tick)``.
        self._cursor = 0
        self._near_end = 0.0
        self._overflow: List["QueueItem"] = []
        self._bucket_count = 0

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def _bucket_index(self, time: float) -> int:
        """Absolute bucket index for ``time``, never later than its true
        bucket (float-rounding guard) and never before the cursor."""
        idx = int(time / self._tick)
        if idx * self._tick > time:
            idx -= 1
        if idx < self._cursor:
            idx = self._cursor
        return idx

    def push(self, item: "QueueItem") -> None:
        time = item[0]
        near_end = self._near_end
        if time < near_end:
            heappush(self._incursion, item)
        elif time - near_end < self._span:
            # _bucket_index, inlined: this is the O(1) hot path that
            # replaces the heap's O(log n) sift for ring-range timers.
            tick = self._tick
            idx = int(time / tick)
            if idx * tick > time:
                idx -= 1
            if idx < self._cursor:
                idx = self._cursor
            if idx - self._cursor < self._slots:
                self._buckets[idx % self._slots].append(item)
                self._bucket_count += 1
            else:
                # The float span test admits boundary times whose true
                # bucket is cursor + slots (non-distributivity, e.g.
                # 3.5 - 19*0.1 < 16*0.1); bucketing one would alias an
                # in-ring slot and fire early.  Index math is the
                # authority: out-of-ring goes to overflow.
                heappush(self._overflow, item)
        else:
            heappush(self._overflow, item)
        self._count += 1

    # ------------------------------------------------------------------
    # Cursor advance
    # ------------------------------------------------------------------

    def _migrate_overflow(self) -> None:
        """Pull overflow events that now fall inside the ring.

        The float window test is only a pre-filter (it rejects inf and
        the far tail cheaply); the bucket *index* decides admission, so
        a boundary time can never be placed at ``cursor + slots`` where
        it would alias an in-ring slot.
        """
        overflow = self._overflow
        near_end = self._near_end
        span = self._span
        limit = self._cursor + self._slots
        while overflow and overflow[0][0] - near_end < span:
            idx = self._bucket_index(overflow[0][0])
            if idx >= limit:
                return
            item = heappop(overflow)
            self._buckets[idx % self._slots].append(item)
            self._bucket_count += 1

    def _advance(self) -> bool:
        """Refill the near window from the next non-empty bucket.

        Returns False when nothing is pending anywhere.  Only called
        with an empty near window (sorted run *and* incursion heap), so
        a drained bucket can *become* the near window — one descending
        Timsort pass, then O(1) tail pops — without a merge.
        """
        while True:
            if self._bucket_count:
                slot = self._cursor % self._slots
                bucket: Optional[List["QueueItem"]] = self._buckets[slot]
                if bucket:
                    # Detach before migrating: the freed slot now maps to
                    # the far edge of the ring (cursor - 1 + slots), and a
                    # migrated overflow event may land exactly there.
                    self._buckets[slot] = []
                    self._bucket_count -= len(bucket)
                else:
                    # Drop the alias to the (empty) in-place list: the
                    # migrate below may append to this very slot, and
                    # serving that list as the run while it stays in the
                    # ring would desync _bucket_count and fire the far
                    # edge's events a full ring-span early.
                    bucket = None
                self._cursor += 1
                self._near_end = self._cursor * self._tick
                self._migrate_overflow()
                if bucket:
                    bucket.sort(reverse=True)
                    self._sorted = bucket
                    return True
                continue
            if self._overflow:
                head = self._overflow[0][0]
                if not math.isfinite(head):
                    # Degenerate (e.g. inf) timestamps: no finite bucket
                    # exists; serve the remainder straight as a sorted run.
                    self._overflow.sort(reverse=True)
                    self._sorted = self._overflow
                    self._overflow = []
                    self._near_end = math.inf
                    return True
                # Jump the cursor to the overflow minimum's bucket.
                self._cursor = self._bucket_index(head)
                self._near_end = self._cursor * self._tick
                self._migrate_overflow()
                continue
            return False

    # ------------------------------------------------------------------
    # Pop
    # ------------------------------------------------------------------

    def pop_next(self, horizon: float) -> Optional["EventHandle"]:
        """Pop the earliest live event if its time is <= ``horizon``.

        The near window's minimum is the global minimum (everything in
        the ring or overflow is at or past ``near_end``, which bounds
        every near-window timestamp).  The common case — no incursions —
        is a single O(1) tail pop from the sorted run.
        """
        while True:
            ns = self._sorted
            inc = self._incursion
            if ns:
                item = ns[-1]
                if inc and inc[0] < item:
                    item = inc[0]
                    handle = item[3]
                    if handle._cancelled:
                        heappop(inc)
                        self._discard_tombstone()
                        continue
                    if item[0] > horizon:
                        return None
                    heappop(inc)
                    self._count -= 1
                    return handle
                handle = item[3]
                if handle._cancelled:
                    ns.pop()
                    self._discard_tombstone()
                    continue
                if item[0] > horizon:
                    return None
                ns.pop()
                self._count -= 1
                return handle
            if inc:
                item = inc[0]
                handle = item[3]
                if handle._cancelled:
                    heappop(inc)
                    self._discard_tombstone()
                    continue
                if item[0] > horizon:
                    return None
                heappop(inc)
                self._count -= 1
                return handle
            if not self._advance():
                return None

    # ------------------------------------------------------------------
    # Hygiene
    # ------------------------------------------------------------------

    def _compact(self) -> None:
        # A filtered descending run stays descending; no re-sort needed.
        live_sorted = [
            item for item in self._sorted if not item[3]._cancelled
        ]
        self._sorted = live_sorted
        live_incursion = [
            item for item in self._incursion if not item[3]._cancelled
        ]
        heapify(live_incursion)
        self._incursion = live_incursion
        live_overflow = [
            item for item in self._overflow if not item[3]._cancelled
        ]
        heapify(live_overflow)
        self._overflow = live_overflow
        bucket_count = 0
        for i, bucket in enumerate(self._buckets):
            if bucket:
                kept = [item for item in bucket if not item[3]._cancelled]
                self._buckets[i] = kept
                bucket_count += len(kept)
        self._bucket_count = bucket_count
        self._count = (
            len(live_sorted)
            + len(live_incursion)
            + len(live_overflow)
            + bucket_count
        )
        self._tombstones = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TimingWheel(tick={self._tick}, slots={self._slots}, "
            f"pending={self._count}, near={len(self._sorted)}, "
            f"overflow={len(self._overflow)})"
        )


def make_scheduler(name: str) -> _SchedulerBase:
    """Build a scheduler by name (``"heap"`` or ``"wheel"``)."""
    if name == "heap":
        return HeapScheduler()
    if name == "wheel":
        return TimingWheel()
    raise ConfigError(
        f"unknown scheduler {name!r}; expected 'heap' or 'wheel'"
    )
