"""Named, seeded random-number streams.

Every source of randomness in a simulation run draws from a *named stream*
(``"lifetimes"``, ``"queries"``, ``"policies"``, ...).  Streams are derived
deterministically from a single master seed, so

* the same ``(master_seed, stream_name)`` pair always produces the same
  sequence, independent of the order in which other streams are used, and
* adding a new consumer of randomness to the simulator does not perturb the
  draws seen by existing consumers (a classic simulation-reproducibility
  pitfall).

Streams are plain :class:`random.Random` instances: the simulator makes
millions of scalar draws, where the stdlib generator is considerably faster
than going through numpy for single values.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Iterator


def derive_seed(master_seed: int, stream_name: str) -> int:
    """Derive a 64-bit child seed from a master seed and a stream name.

    Uses BLAKE2b over the ``(master_seed, stream_name)`` pair, which keeps
    sibling streams statistically independent even for adjacent master
    seeds (unlike e.g. ``master_seed + hash(name)``).
    """
    digest = hashlib.blake2b(
        f"{master_seed}:{stream_name}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class RngRegistry:
    """A lazily populated registry of named random streams.

    Args:
        master_seed: seed from which all streams are derived.

    Example::

        rng = RngRegistry(42)
        lifetime = rng.stream("lifetimes").random()
    """

    def __init__(self, master_seed: int = 0) -> None:
        self._master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream called ``name``."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self._master_seed, name))
            self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RngRegistry":
        """Create a child registry whose master seed derives from ``name``.

        Used to give each trial of a multi-trial experiment an independent
        but reproducible seed space.
        """
        return RngRegistry(derive_seed(self._master_seed, f"spawn:{name}"))

    def names(self) -> Iterator[str]:
        """Names of streams that have been instantiated so far."""
        return iter(sorted(self._streams))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RngRegistry(master_seed={self._master_seed}, "
            f"streams={sorted(self._streams)})"
        )
