"""Event records for the discrete-event engine.

Events are ordered by ``(time, priority, seq)``.  The sequence number is a
monotonically increasing tie-breaker assigned by the engine, which makes the
execution order of same-time, same-priority events equal to their scheduling
order — a property the reproducibility tests rely on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable


class EventPriority(enum.IntEnum):
    """Priority classes for events that fire at the same timestamp.

    Lower numeric value runs first.  Deaths run before protocol activity at
    the same instant (a peer that dies at time *t* must not answer a probe
    at *t*), and births run right after deaths so the population size is
    restored before any query activity.
    """

    DEATH = 0
    BIRTH = 1
    PROTOCOL = 2
    QUERY = 3
    METRICS = 4

    @classmethod
    def default(cls) -> "EventPriority":
        return cls.PROTOCOL


@dataclass(frozen=True, slots=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: simulation timestamp (seconds) at which the event fires.
        priority: tie-break class for same-time events.
        seq: engine-assigned monotone sequence number (scheduling order).
        action: callable executed when the event fires; invoked as
            ``action(*args)``.
        label: human-readable tag used in engine traces and error messages.
        args: positional arguments passed to ``action``.  Passing a bound
            method plus ``args`` instead of a fresh closure keeps the hot
            scheduling paths free of per-event cell allocations; ``args``
            never participates in ordering or the trace digest.
    """

    time: float
    priority: EventPriority
    seq: int
    action: Callable[..., Any] = field(compare=False)
    label: str = field(default="", compare=False)
    args: tuple = field(default=(), compare=False)

    def sort_key(self) -> tuple[float, int, int]:
        """Total ordering used by the engine's heap."""
        return (self.time, int(self.priority), self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()
