"""A deterministic discrete-event simulation engine.

The engine is a priority queue of :class:`~repro.sim.events.Event`
records behind a pluggable scheduler (see :mod:`repro.sim.wheel`):
``scheduler="heap"`` is the classic binary heap, ``scheduler="wheel"``
a timing-wheel/calendar queue with O(1) amortized insertion for
timer-dominated workloads.  Either way the engine guarantees:

* events fire in nondecreasing time order;
* same-time events fire in ``priority`` order, then scheduling order;
* the clock never moves backwards, and scheduling into the past raises
  :class:`~repro.errors.SimulationError`;
* cancelled events are skipped lazily (tombstoning), so cancellation is
  O(1) and does not disturb the queue — and when tombstones outnumber
  live events the scheduler compacts, so mass cancellation never grows
  the queue unboundedly.

The two schedulers implement the exact same firing-order contract —
the golden trace digests reproduce bit-for-bit under both — so the
heap stays available as the reference oracle while the wheel carries
large-population runs.

The engine knows nothing about peers or protocols — higher layers schedule
plain callbacks.  This mirrors how the paper's custom simulator is described
(Section 5.1) and substitutes for ``simpy``, which is not available in this
offline environment.
"""

from __future__ import annotations

import hashlib
import time
from typing import TYPE_CHECKING, Any, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observe.profiler import Profiler

from repro.errors import SimulationError
from repro.sim.events import EventPriority
from repro.sim.wheel import make_scheduler


class TraceHasher:
    """Rolling digest of the executed event stream (determinism oracle).

    Every fired event folds ``(time, priority, seq, label)`` into a
    BLAKE2b state.  Two runs with the same ``(seed, params)`` must
    produce the same digest bit-for-bit; any divergence — a stray global
    RNG draw, an unordered iteration, a wall-clock leak — shows up as a
    digest mismatch at the first diverging event.  This is the dynamic
    counterpart of the static rules in :mod:`repro.devtools`.
    """

    __slots__ = ("_hash", "_events")

    def __init__(self) -> None:
        self._hash = hashlib.blake2b(digest_size=16)
        self._events = 0

    def fold(self, time: float, priority: int, seq: int, label: str) -> None:
        """Absorb one fired event into the digest.

        ``float.hex()`` renders the timestamp exactly (no decimal
        rounding), so two runs differing by one ulp still diverge.
        """
        self._hash.update(
            f"{time.hex()}|{priority}|{seq}|{label}\n".encode("utf-8")
        )
        self._events += 1

    @property
    def events_folded(self) -> int:
        """Number of events absorbed so far."""
        return self._events

    def digest(self) -> str:
        """Hex digest of the trace so far (non-destructive snapshot)."""
        return self._hash.copy().hexdigest()


class EventHandle:
    """A scheduled event and its cancellation handle.

    The handle *is* the event record on the hot path: it carries the
    ``(time, priority, seq)`` sort key, the callback, and the lifecycle
    flags in one ``__slots__`` object, so scheduling allocates a single
    object (plus the queue's key tuple) per event.  The equivalent
    :class:`~repro.sim.events.Event` dataclass remains the documented
    record format.

    Cancellation is lazy: the event stays in the queue but is skipped
    when popped.  ``active`` reports whether the event may still fire.
    """

    __slots__ = (
        "time",
        "priority",
        "seq",
        "action",
        "label",
        "args",
        "_queue",
        "_cancelled",
        "_fired",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        action: Callable[..., Any],
        label: str,
        args: tuple,
        queue: Any = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.action = action
        self.label = label
        self.args = args
        self._queue = queue
        self._cancelled = False
        self._fired = False

    @property
    def active(self) -> bool:
        """True while the event is pending (not cancelled, not fired)."""
        return not (self._cancelled or self._fired)

    def cancel(self) -> bool:
        """Prevent the event from firing.

        Returns:
            True if the event was pending and is now cancelled; False if it
            had already fired or was already cancelled.
        """
        if not self.active:
            return False
        self._cancelled = True
        if self._queue is not None:
            self._queue.note_cancel()
        return True


class Simulator:
    """Deterministic event-heap simulator.

    Typical use::

        sim = Simulator()
        sim.schedule(10.0, lambda: print("hello at t=10"))
        sim.run_until(100.0)

    Args:
        start_time: initial clock value (seconds).  Defaults to 0.
        trace_hash: when True, fold every fired event into a
            :class:`TraceHasher` so two same-seed runs can be compared
            via :attr:`trace_digest` (the determinism sanitizer).  Off
            by default — it costs one hash update per event.
        scheduler: pending-event structure — ``"heap"`` (the classic
            binary heap, the reference oracle) or ``"wheel"`` (the
            timing-wheel/calendar queue, O(1) amortized insertion; use
            it for large populations).  Both fire events in exactly the
            same order; a scheduler instance from
            :mod:`repro.sim.wheel` is also accepted.
    """

    def __init__(
        self,
        start_time: float = 0.0,
        *,
        trace_hash: bool = False,
        scheduler: str | Any = "heap",
    ) -> None:
        if start_time < 0:
            raise SimulationError(f"start_time must be >= 0, got {start_time}")
        self._now = float(start_time)
        self._queue = (
            make_scheduler(scheduler) if isinstance(scheduler, str) else scheduler
        )
        self._seq = 0
        self._running = False
        self._events_executed = 0
        self._tracer: Optional[TraceHasher] = TraceHasher() if trace_hash else None
        #: Optional :class:`~repro.observe.profiler.Profiler`; when set,
        #: every ``run_until`` reports (events, wall seconds, simulated
        #: seconds) to it.  The profiler only *reads* engine counters —
        #: it can never influence scheduling, so attaching one leaves
        #: the trace digest untouched.
        self.profiler: Optional["Profiler"] = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events that have fired so far (diagnostics)."""
        return self._events_executed

    @property
    def pending(self) -> int:
        """Number of events still queued, including unpruned tombstones."""
        return len(self._queue)

    @property
    def scheduler(self) -> str:
        """Name of the active scheduler (``"heap"`` or ``"wheel"``)."""
        return self._queue.name

    @property
    def tombstones(self) -> int:
        """Cancelled events still occupying queue slots (hygiene telemetry)."""
        return self._queue.tombstones

    @property
    def compactions(self) -> int:
        """Tombstone compaction passes the scheduler has performed."""
        return self._queue.compactions

    @property
    def cancelled_ratio(self) -> float:
        """Fraction of pending queue slots held by tombstones."""
        return self._queue.cancelled_ratio

    @property
    def trace_digest(self) -> Optional[str]:
        """Digest of the executed event stream, or None if not tracing.

        Same ``(seed, params)`` + same code ⇒ same digest; see
        :class:`TraceHasher`.
        """
        return None if self._tracer is None else self._tracer.digest()

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(
        self,
        time: float,
        action: Callable[..., Any],
        *,
        priority: EventPriority = EventPriority.PROTOCOL,
        label: str = "",
        args: tuple = (),
    ) -> EventHandle:
        """Schedule ``action`` to run at absolute time ``time``.

        Args:
            time: absolute simulation timestamp; must be >= ``now``.
            action: callable invoked as ``action(*args)`` when the event
                fires.  Hot callers pass a bound method plus ``args``
                rather than wrapping the call in a lambda, which avoids
                allocating a closure (and its cell variables) per event.
            priority: tie-break class for same-time events.
            label: diagnostic tag.
            args: positional arguments for ``action``.

        Returns:
            An :class:`EventHandle` usable to cancel the event.

        Raises:
            SimulationError: if ``time`` precedes the current clock.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event {label!r} at t={time} before now={self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(
            float(time), int(priority), seq, action, label, args, self._queue
        )
        self._queue.push((handle.time, handle.priority, seq, handle))
        return handle

    def schedule_after(
        self,
        delay: float,
        action: Callable[..., Any],
        *,
        priority: EventPriority = EventPriority.PROTOCOL,
        label: str = "",
        args: tuple = (),
    ) -> EventHandle:
        """Schedule ``action`` to run ``delay`` seconds from now.

        Raises:
            SimulationError: if ``delay`` is negative.
        """
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self.schedule(
            self._now + delay, action, priority=priority, label=label, args=args
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _fire(self, handle: EventHandle) -> None:
        """Advance the clock to ``handle`` and execute it (internal)."""
        self._now = handle.time
        handle._fired = True
        self._events_executed += 1
        if self._tracer is not None:
            self._tracer.fold(
                handle.time, handle.priority, handle.seq, handle.label
            )
        handle.action(*handle.args)

    def step(self) -> bool:
        """Fire the single next pending event.

        Returns:
            True if an event fired; False if the queue was empty (after
            discarding tombstones).
        """
        handle = self._queue.pop_next(float("inf"))
        if handle is None:
            return False
        self._fire(handle)
        return True

    def run_until(self, end_time: float) -> int:
        """Run events with ``time <= end_time``; advance the clock to it.

        Events scheduled during execution are honoured as long as they fall
        within the horizon.  The clock is left at exactly ``end_time`` even
        if the last event fired earlier, so back-to-back ``run_until`` calls
        cover contiguous windows.

        Returns:
            Number of events executed in this call.

        Raises:
            SimulationError: if ``end_time`` precedes the current clock or
                the engine is re-entered from inside an event.
        """
        if end_time < self._now:
            raise SimulationError(
                f"run_until({end_time}) precedes current time {self._now}"
            )
        if self._running:
            raise SimulationError("Simulator.run_until is not re-entrant")
        self._running = True
        profiler = self.profiler
        if profiler is not None:
            wall_started = time.perf_counter()  # repro: allow-wallclock, allow-effect-kernel-io (profiling)
            sim_started = self._now
        executed = 0
        pop_next = self._queue.pop_next
        fire = self._fire
        try:
            while True:
                handle = pop_next(end_time)
                if handle is None:
                    break
                fire(handle)
                executed += 1
        finally:
            self._running = False
        self._now = float(end_time)
        if profiler is not None:
            profiler.record_engine(
                events=executed,
                wall_seconds=time.perf_counter() - wall_started,  # repro: allow-wallclock
                sim_seconds=self._now - sim_started,
            )
        return executed

    def run_all(self, max_events: Optional[int] = None) -> int:
        """Run until the queue is empty (or ``max_events`` is reached).

        Returns:
            Number of events executed.
        """
        executed = 0
        while self.step():
            executed += 1
            if max_events is not None and executed >= max_events:
                break
        return executed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self._now:.3f}, pending={self.pending}, "
            f"executed={self._events_executed})"
        )


#: The paper-facing name for the simulation kernel; ``Engine(trace_hash=True)``
#: is the determinism sanitizer's documented spelling.
Engine = Simulator
