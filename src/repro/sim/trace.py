"""Bounded event tracing for simulation debugging.

A :class:`TraceLog` is a ring buffer of structured trace records.  The
simulator itself never traces (hot paths stay clean); components opt in
by calling :meth:`TraceLog.emit` where observability is wanted.  The
experiments never enable tracing — this is a debugging aid for people
extending the protocol.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Iterator, Optional

from repro.errors import ConfigError


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One trace event.

    Attributes:
        time: simulation timestamp.
        kind: short category tag ("probe", "death", "evict", ...).
        detail: free-form payload (kept small by convention).
    """

    time: float
    kind: str
    detail: Dict[str, Any]


class TraceLog:
    """Bounded, filterable trace sink.

    Args:
        capacity: maximum retained records (oldest evicted first).
        kinds: if given, only these categories are retained.

    Example::

        trace = TraceLog(capacity=1000, kinds={"probe"})
        trace.emit(12.5, "probe", src=1, dst=9, status="timeout")
        timeouts = sum(
            1 for r in trace if r.detail.get("status") == "timeout"
        )
    """

    def __init__(
        self,
        capacity: int = 10_000,
        kinds: Optional[set[str]] = None,
    ) -> None:
        if capacity < 1:
            raise ConfigError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.kinds = set(kinds) if kinds is not None else None
        self._records: Deque[TraceRecord] = deque(maxlen=self.capacity)
        self._emitted = 0
        self._dropped_by_filter = 0

    def emit(self, time: float, kind: str, **detail: Any) -> None:
        """Record one event (dropped silently if filtered out)."""
        self._emitted += 1
        if self.kinds is not None and kind not in self.kinds:
            self._dropped_by_filter += 1
            return
        self._records.append(TraceRecord(time=time, kind=kind, detail=detail))

    def hook(self, kind: str) -> Callable[..., None]:
        """A partially applied emitter for one category.

        Handy for passing into components: ``on_probe = trace.hook("probe")``.
        """

        def emitter(time: float, **detail: Any) -> None:
            self.emit(time, kind, **detail)

        return emitter

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def of_kind(self, kind: str) -> Iterator[TraceRecord]:
        """Retained records of one category, oldest first."""
        return (r for r in self._records if r.kind == kind)

    def last(self) -> Optional[TraceRecord]:
        """The most recent retained record, or None."""
        return self._records[-1] if self._records else None

    @property
    def emitted(self) -> int:
        """Total emit calls, including filtered and ring-evicted ones."""
        return self._emitted

    @property
    def dropped_by_filter(self) -> int:
        """Emit calls discarded by the kind filter."""
        return self._dropped_by_filter

    def clear(self) -> None:
        """Drop all retained records (counters keep accumulating)."""
        self._records.clear()
