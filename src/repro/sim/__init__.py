"""Discrete-event simulation substrate.

This subpackage is the simulator the paper's authors built in-house: a
deterministic event heap (:mod:`repro.sim.engine`), typed event records
(:mod:`repro.sim.events`), named seeded random streams
(:mod:`repro.sim.rng`), and per-second sliding-window counters used to model
``MaxProbesPerSecond`` capacity limits (:mod:`repro.sim.windows`).

The kernel is intentionally tiny and dependency-free; everything above it
(the GUESS protocol, baselines, experiments) schedules plain callbacks.
"""

from repro.sim.engine import Engine, Simulator, TraceHasher
from repro.sim.events import Event, EventPriority
from repro.sim.rng import RngRegistry
from repro.sim.windows import BucketedRateLimiter, SlidingWindowCounter

__all__ = [
    "Simulator",
    "Engine",
    "TraceHasher",
    "Event",
    "EventPriority",
    "RngRegistry",
    "SlidingWindowCounter",
    "BucketedRateLimiter",
]
