"""Policy framework (paper Section 4).

Five *policy types* govern how cache entries are used:

====================  =====================================================
QueryProbe            order in which peers are probed for a query
QueryPong             entries preferred when answering a Query with a Pong
PingProbe             order in which link-cache peers are pinged
PingPong              entries preferred when answering a Ping with a Pong
CacheReplacement      which entry is evicted from a full link cache
====================  =====================================================

All five reduce to one abstraction: a **ranking** over entries.

* Probe/pong roles prefer the entry with the *highest* key.
* The replacement role evicts the entry with the *lowest* key, and the
  paper names replacement policies after what they evict — so replacement
  "LFS" (evict Least Files Shared) ranks with the MFS key, replacement
  "MRU" (evict Most Recently Used) ranks with the LRU key, and so on.
  :data:`REPLACEMENT_KEY_POLICY` encodes that reversal.

Concrete key functions live in :mod:`repro.core.policy_impls`; this module
defines the interface and the registry.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from itertools import chain
from typing import Dict, Iterable, List, Optional, Sequence, Type

from repro.core.entry import CacheEntry
from repro.errors import PolicyError


class Policy(ABC):
    """A ranking over cache entries.

    Subclasses implement :meth:`key`; the framework supplies selection
    (best-first), pong construction (top-k) and eviction (worst-first).
    ``Random`` overrides the selection methods directly since it has no
    meaningful key.
    """

    #: Registry name; set by subclasses.
    name: str = ""

    #: True only for the Random policy; lets hot paths (the candidate
    #: pool) pick a cheap strategy without isinstance checks.
    randomized: bool = False

    @abstractmethod
    def key(self, entry: CacheEntry, now: float) -> float:
        """Ranking key for ``entry`` at time ``now``; higher is preferred."""

    # ------------------------------------------------------------------
    # Selection (probe ordering)
    # ------------------------------------------------------------------

    def select_best(
        self,
        entries: Sequence[CacheEntry],
        now: float,
        rng: random.Random,
    ) -> Optional[CacheEntry]:
        """The single most-preferred entry, or None if ``entries`` is empty.

        Ties break on address for determinism (two entries never share an
        address within one cache).
        """
        if not entries:
            return None
        del rng  # deterministic policies ignore the stream
        return max(entries, key=lambda e: (self.key(e, now), -e.address))

    def order(
        self,
        entries: Iterable[CacheEntry],
        now: float,
        rng: random.Random,
    ) -> List[CacheEntry]:
        """All entries, most-preferred first."""
        del rng
        return sorted(
            entries, key=lambda e: (self.key(e, now), -e.address), reverse=True
        )

    def select_top(
        self,
        entries: Sequence[CacheEntry],
        k: int,
        now: float,
        rng: random.Random,
    ) -> List[CacheEntry]:
        """The ``k`` most-preferred entries (pong construction)."""
        if k <= 0:
            return []
        return self.order(entries, now, rng)[:k]

    # ------------------------------------------------------------------
    # Eviction (replacement role)
    # ------------------------------------------------------------------

    def choose_victim(
        self,
        entries: Sequence[CacheEntry],
        now: float,
        rng: random.Random,
    ) -> Optional[CacheEntry]:
        """The least-preferred entry — the one a full cache evicts."""
        if not entries:
            return None
        del rng
        return min(entries, key=lambda e: (self.key(e, now), -e.address))

    def choose_victim_from(
        self,
        residents: Iterable[CacheEntry],
        n_residents: int,
        candidate: CacheEntry,
        now: float,
        rng: random.Random,
    ) -> Optional[CacheEntry]:
        """Victim among ``residents`` plus ``candidate`` — allocation-free.

        The hot path of a full :class:`~repro.core.link_cache.LinkCache`:
        semantically identical to
        ``choose_victim(list(residents) + [candidate], now, rng)`` (the
        candidate logically last, ties resolved identically) without
        materialising the combined contestant list per insert.

        Subclasses that override :meth:`choose_victim` but not this
        method keep their exact semantics through the list-building
        fallback below.
        """
        if type(self).choose_victim is not Policy.choose_victim:
            contestants = list(residents)
            contestants.append(candidate)
            return self.choose_victim(contestants, now, rng)
        del rng, n_residents
        return min(
            chain(residents, (candidate,)),
            key=lambda e: (self.key(e, now), -e.address),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


_ORDERING_REGISTRY: Dict[str, Type[Policy]] = {}


def register_policy(cls: Type[Policy]) -> Type[Policy]:
    """Class decorator adding a Policy subclass to the registry."""
    if not cls.name:
        raise PolicyError("policy classes must set a non-empty name")
    if cls.name in _ORDERING_REGISTRY:
        raise PolicyError(f"duplicate policy name {cls.name!r}")
    _ORDERING_REGISTRY[cls.name] = cls
    return cls


#: Replacement-role name -> ordering-policy name whose key ranks it.
#: Eviction takes the *minimum* key, so "evict Least Files Shared" uses
#: the MFS key, and "evict Most Recently Used" uses the LRU key (whose
#: maximum is the least-recently-used entry, hence minimum is most-recent).
REPLACEMENT_KEY_POLICY: Dict[str, str] = {
    "Random": "Random",
    "LRU": "MRU",   # evict least-recently-used -> min TS -> MRU key
    "MRU": "LRU",   # evict most-recently-used  -> max TS -> LRU key
    "LFS": "MFS",   # evict least files shared  -> min NumFiles -> MFS key
    "LR": "MR",     # evict least results       -> min NumRes  -> MR key
    "LR*": "MR",    # starred variant normalises to MR + reset flag
}


def get_ordering_policy(name: str) -> Policy:
    """Instantiate the ordering policy registered as ``name``.

    ``MR*`` resolves to the MR ordering (the starred behaviour lives in
    entry ingestion, not ranking — see ``ProtocolParams.normalized``).

    Raises:
        PolicyError: for unknown names.
    """
    base = name.rstrip("*") if name.endswith("*") else name
    try:
        return _ORDERING_REGISTRY[base]()
    except KeyError:
        raise PolicyError(
            f"unknown ordering policy {name!r}; known: {sorted(_ORDERING_REGISTRY)}"
        ) from None


def get_replacement_policy(name: str) -> Policy:
    """Instantiate the key policy for replacement role ``name``.

    Raises:
        PolicyError: for unknown names.
    """
    try:
        key_name = REPLACEMENT_KEY_POLICY[name]
    except KeyError:
        raise PolicyError(
            f"unknown replacement policy {name!r}; "
            f"known: {sorted(REPLACEMENT_KEY_POLICY)}"
        ) from None
    return get_ordering_policy(key_name)


def registered_policy_names() -> List[str]:
    """Names of all registered ordering policies."""
    return sorted(_ORDERING_REGISTRY)


class PolicySet:
    """The five instantiated policies a peer runs with.

    Built from a (normalised) :class:`~repro.core.params.ProtocolParams`;
    policies are stateless, so one set is shared by every peer in a
    simulation.

    Attributes:
        query_probe / query_pong / ping_probe / ping_pong: ordering
            policies for the four probe/pong roles.
        replacement: the eviction-key policy for CacheReplacement.
        reset_num_results: the MR*/LR* ingestion flag, carried here so
            entry-import paths need only the policy set.
    """

    __slots__ = (
        "query_probe",
        "query_pong",
        "ping_probe",
        "ping_pong",
        "replacement",
        "reset_num_results",
    )

    def __init__(
        self,
        query_probe: Policy,
        query_pong: Policy,
        ping_probe: Policy,
        ping_pong: Policy,
        replacement: Policy,
        reset_num_results: bool = False,
    ) -> None:
        self.query_probe = query_probe
        self.query_pong = query_pong
        self.ping_probe = ping_probe
        self.ping_pong = ping_pong
        self.replacement = replacement
        self.reset_num_results = bool(reset_num_results)

    @classmethod
    def from_protocol(cls, protocol) -> "PolicySet":
        """Instantiate the set from protocol params (normalising MR*/LR*)."""
        normalized = protocol.normalized()
        return cls(
            query_probe=get_ordering_policy(normalized.query_probe),
            query_pong=get_ordering_policy(normalized.query_pong),
            ping_probe=get_ordering_policy(normalized.ping_probe),
            ping_pong=get_ordering_policy(normalized.ping_pong),
            replacement=get_replacement_policy(normalized.cache_replacement),
            reset_num_results=normalized.reset_num_results,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PolicySet(query_probe={self.query_probe.name}, "
            f"query_pong={self.query_pong.name}, "
            f"ping_probe={self.ping_probe.name}, "
            f"ping_pong={self.ping_pong.name}, "
            f"replacement_key={self.replacement.name}, "
            f"reset_num_results={self.reset_num_results})"
        )
