"""Struct-of-arrays peer store: scalar columns keyed by dense addresses.

At million-peer scale the simulation's hot membership questions — *is
this address alive?  is it malicious?  was it harvested?* — were
answered by hashing into a ``dict``/``set`` per cache entry per health
sample.  Addresses are dense, monotonically increasing ints that are
never reused (:mod:`repro.network.address`), which makes them perfect
array indices: :class:`PeerStore` keeps one **byte/scalar column per
fact**, so the same questions become fixed-offset ``bytearray`` loads
with no hashing, no boxed key objects, and ~1 byte per peer per fact of
RSS instead of hash-table slots.

Columns (all indexed by address):

* ``alive`` — 1 while the peer is live; cleared at death, never reused.
* ``malicious`` — the peer's (immutable) role; meaningful whenever the
  address was ever registered.  "Live and good" is therefore
  ``alive[a] and not malicious[a]``, exactly the
  ``a in live_peers and a not in live_malicious`` double lookup it
  replaces (roles never change and addresses are never recycled).
* ``harvested`` — lifetime counters absorbed exactly once per peer.
* ``num_files`` / ``capacity`` — advertised file count and probe-rate
  capacity, the scalar columns the intra-trial sharding work
  (ROADMAP item 2) will exchange instead of peer objects.

The store also owns the live-peer **object map** (a ``dict`` preserving
birth order — iteration order is digest-load-bearing for health
sampling) and the Fenwick-backed
:class:`~repro.core.live_index.LiveAddressIndex` used for O(log n)
uniform friend sampling.  Everything stays bit-identical to the
dict/set spelling: columns only change *how* membership is answered,
never *what* the answer is, and the golden trace digests in
``tests/integration`` pin that.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterator, List, Optional

from repro.core.live_index import LiveAddressIndex
from repro.core.peer import GuessPeer
from repro.network.address import Address

#: Column growth is chunked so repeated single-address growth does not
#: reallocate per peer (lists/bytearrays over-allocate, but the chunk
#: makes the worst case explicit).
_GROW_CHUNK = 256


class PeerStore:
    """Live-peer registry with struct-of-arrays scalar columns.

    Args:
        reserve: number of already-allocated addresses to cover from the
            start (the simulation's ghost-address block), so every
            column lookup for an allocated address is in bounds.

    The dense-address invariant: every address that can ever appear in
    a cache entry was handed out by the simulation's single allocator,
    and the simulation registers every allocated address (ghosts via
    ``reserve`` / :meth:`note_ghost`, peers via :meth:`add` at birth)
    before it can circulate — so column reads never need a bounds
    check.
    """

    __slots__ = (
        "_peers",
        "_live_index",
        "_alive",
        "_malicious",
        "_harvested",
        "_num_files",
        "_capacity",
    )

    def __init__(self, reserve: int = 0) -> None:
        self._peers: Dict[Address, GuessPeer] = {}
        self._live_index = LiveAddressIndex()
        self._alive = bytearray(reserve)
        self._malicious = bytearray(reserve)
        self._harvested = bytearray(reserve)
        self._num_files = array("l", bytes(8 * reserve)) if reserve else array("l")
        self._capacity = array("l", bytes(8 * reserve)) if reserve else array("l")

    # ------------------------------------------------------------------
    # Column management
    # ------------------------------------------------------------------

    def _ensure(self, address: Address) -> None:
        """Grow every column to cover ``address`` (chunked)."""
        have = len(self._alive)
        if address < have:
            return
        grow = address + 1 - have + _GROW_CHUNK
        self._alive.extend(bytes(grow))
        self._malicious.extend(bytes(grow))
        self._harvested.extend(bytes(grow))
        zeros = array("l", bytes(self._num_files.itemsize * grow))
        self._num_files.extend(zeros)
        self._capacity.extend(zeros)

    def note_ghost(self, address: Address) -> None:
        """Cover an allocated-but-never-born address (stays dead)."""
        self._ensure(address)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._peers)

    def __contains__(self, address: Address) -> bool:
        return address in self._peers

    def get(self, address: Address) -> Optional[GuessPeer]:
        """The live peer at ``address``, or None."""
        return self._peers.get(address)

    def values(self) -> Iterator[GuessPeer]:
        """Live peers in birth order (the digest-load-bearing order)."""
        return iter(self._peers.values())

    def live_peers(self) -> List[GuessPeer]:
        """Snapshot list of live peers in birth order."""
        return list(self._peers.values())

    def addresses(self) -> Iterator[Address]:
        """Live addresses in birth order."""
        return iter(self._peers.keys())

    @property
    def alive_column(self) -> bytearray:
        """The alive-flag column (read-only use; index by address)."""
        return self._alive

    @property
    def malicious_column(self) -> bytearray:
        """The role column (read-only use; index by address)."""
        return self._malicious

    def is_alive(self, address: Address) -> bool:
        """True while ``address`` hosts a live peer."""
        return bool(self._alive[address])

    def is_live_good(self, address: Address) -> bool:
        """True for a live, protocol-following peer."""
        return bool(self._alive[address]) and not self._malicious[address]

    def num_files_of(self, address: Address) -> int:
        """Advertised shared-file count (0 for ghosts/unregistered)."""
        return self._num_files[address]

    def capacity_of(self, address: Address) -> int:
        """Probe-rate capacity column (0 = unlimited/unregistered)."""
        return self._capacity[address]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def add(self, peer: GuessPeer) -> None:
        """Register a newborn peer and populate its scalar columns."""
        address = peer.address
        self._ensure(address)
        self._peers[address] = peer
        self._live_index.add(address)
        self._alive[address] = 1
        if peer.malicious:
            self._malicious[address] = 1
        self._num_files[address] = peer.num_files
        limiter = peer._limiter
        self._capacity[address] = limiter.limit if limiter is not None else 0

    def remove(self, address: Address) -> Optional[GuessPeer]:
        """Unregister a departing peer; returns it (None if absent)."""
        peer = self._peers.pop(address, None)
        if peer is None:
            return None
        self._live_index.discard(address)
        self._alive[address] = 0
        return peer

    def mark_harvested(self, address: Address) -> bool:
        """Record counter harvest; True the first time, False after."""
        if self._harvested[address]:
            return False
        self._harvested[address] = 1
        return True

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def kth_live(self, k: int) -> GuessPeer:
        """The k-th live peer (0-based) in birth order, O(log n)."""
        return self._peers[self._live_index.kth(k)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PeerStore(live={len(self._peers)}, "
            f"columns={len(self._alive)})"
        )
