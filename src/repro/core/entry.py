"""Cache entries (paper Section 2.1, format (1)).

An entry is a pointer to some peer Q::

    {IP address of Q, TS, NumFiles, NumRes}

* ``TS`` — timestamp of the last interaction with Q.  Updated whenever
  the owner interacts with Q directly (either side initiating); **not**
  updated when the entry is merely received in a Pong.
* ``NumFiles`` — number of files Q shares, set by Q when it introduces
  itself and propagated verbatim as entries are shared.  MFS/LFS rank on
  this field; the paper's poisoning results hinge on it being unverified.
* ``NumRes`` — number of results Q returned to the owner's last query.
  MR/LR rank on this; the MR* variant refuses to import other peers'
  NumRes values (see ``ProtocolParams.reset_num_results``).

One omniscient-observer field rides along (never read by any policy or
protocol path):

* ``born`` — when the *owner* acquired this pointer (seeding, pong
  import, or introduction).  Metrics compare it against the pointed-to
  peer's departure time to split dead probes into **stale** (the owner
  held the pointer when the peer died — preventable by push
  invalidation) and **dead-on-arrival** (the pointer was imported after
  the death, e.g. from another peer's stale pong or a poisoned one).

Entries are mutable (TS and NumRes change in place) but cheap to copy:
pongs carry *copies*, never shared references — two peers updating one
shared entry object would be action-at-a-distance that no real network
has.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.address import Address


@dataclass(slots=True)
class CacheEntry:
    """A link-cache or query-cache entry.

    Attributes:
        address: the pointed-to peer's address.
        ts: timestamp (seconds) of the owner's last interaction with it.
        num_files: advertised shared-file count.
        num_res: results it returned to the owner's last query.
        born: when the owner acquired the pointer (metrics-only; see
            module docstring).  Defaults to the construction-time ``ts``
            semantics of the bootstrap (0.0).
    """

    address: Address
    ts: float = 0.0
    num_files: int = 0
    num_res: int = 0
    born: float = 0.0

    def copy(self) -> "CacheEntry":
        """An independent copy, as carried in a Pong message.

        Spelled via ``__new__`` + direct slot stores: pong construction
        copies ``PongSize`` entries per ping on the hot path, and
        skipping dataclass ``__init__`` roughly halves the cost.
        """
        clone = object.__new__(CacheEntry)
        clone.address = self.address
        clone.ts = self.ts
        clone.num_files = self.num_files
        clone.num_res = self.num_res
        clone.born = self.born
        return clone

    def copy_for_import(self, reset_num_results: bool, now: float = 0.0) -> "CacheEntry":
        """Copy used when ingesting an entry learned from another peer.

        Args:
            reset_num_results: if True (the MR* behaviour), the imported
                ``NumRes`` is zeroed so only first-hand experience ranks
                the entry.
            now: import time, stamped as the new owner's ``born`` —
                acquisition age is per-owner, never inherited from the
                pong's carrier.
        """
        entry = self.copy()
        if reset_num_results:
            entry.num_res = 0
        entry.born = now
        return entry

    def touch(self, now: float) -> None:
        """Record a direct interaction at time ``now``.

        TS is monotone: replaying an older interaction (possible with the
        virtual probe timestamps) never rolls it back.
        """
        if now > self.ts:
            self.ts = now

    def record_results(self, num_results: int, now: float) -> None:
        """Reset NumRes from the response to a query probe (Section 2.1)."""
        if num_results < 0:
            raise ValueError(f"num_results must be >= 0, got {num_results}")
        self.num_res = num_results
        self.touch(now)
