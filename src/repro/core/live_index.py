"""Order-preserving index of live peer addresses with O(log n) sampling.

:meth:`GuessSimulation._pick_friend` needs "the k-th live peer in dict
insertion order" once per churn event.  The obvious spelling —
``list(self._peers.keys())[k]`` — rebuilds an N-element list per death,
which at NetworkSize 5000 under heavy churn copies hundreds of millions
of references over a run.

:class:`LiveAddressIndex` mirrors the ``_peers`` dict incrementally: an
append-only order list (dead slots tombstoned to ``None``) plus a Fenwick
tree over the alive flags, so the k-th live address resolves with a
single O(log n) tree descent and no allocation.  The live subsequence of
the order list is, by construction, exactly the insertion order of the
surviving dict keys — Python dicts preserve insertion order across
deletions — so ``kth(k)`` returns precisely the address the list-rebuild
spelling would have picked for the same ``k``.  That equivalence is what
keeps the trace digest of an optimized run bit-identical to the old code
(asserted by the golden digests in ``tests/integration``).

Tombstones are compacted (preserving relative order) whenever they
outnumber the live entries, bounding memory at ~2x the live population
regardless of how long churn runs.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.network.address import Address

#: Below this order-list length compaction is pointless churn.
_COMPACT_MIN_SIZE = 64


class LiveAddressIndex:
    """Sampled set of addresses preserving dict-insertion-order semantics.

    Supports ``add`` (append), ``discard`` (tombstone), ``kth`` (k-th live
    address by insertion order) and ``len`` — each O(log n) or better,
    amortised over compactions.
    """

    __slots__ = ("_order", "_pos", "_tree", "_alive")

    def __init__(self) -> None:
        self._order: List[Optional[Address]] = []
        self._pos: Dict[Address, int] = {}
        #: Fenwick tree over alive flags; ``_tree[0]`` is a dummy so the
        #: classic 1-indexed update/prefix arithmetic applies unchanged.
        self._tree: List[int] = [0]
        self._alive = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._alive

    def __contains__(self, address: Address) -> bool:
        return address in self._pos

    def live_addresses(self) -> Iterator[Address]:
        """Live addresses in insertion order (diagnostics/tests)."""
        return (a for a in self._order if a is not None)

    @property
    def slots(self) -> int:
        """Order-list length including tombstones (compaction telemetry)."""
        return len(self._order)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, address: Address) -> None:
        """Append a newly live address (must not already be present)."""
        if address in self._pos:
            raise ValueError(f"address {address!r} already live")
        self._pos[address] = len(self._order)
        self._order.append(address)
        # Fenwick append: node i covers (i - lowbit(i), i]; its sum is the
        # new element (alive=1) plus the already-known prefix difference.
        i = len(self._order)
        low = i - (i & -i)
        self._tree.append(1 + self._prefix(i - 1) - self._prefix(low))
        self._alive += 1

    def discard(self, address: Address) -> bool:
        """Tombstone ``address``; True if it was live."""
        idx = self._pos.pop(address, None)
        if idx is None:
            return False
        self._order[idx] = None
        i = idx + 1
        tree = self._tree
        size = len(self._order)
        while i <= size:
            tree[i] -= 1
            i += i & -i
        self._alive -= 1
        if (
            len(self._order) > _COMPACT_MIN_SIZE
            and self._alive * 2 < len(self._order)
        ):
            self._compact()
        return True

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def kth(self, k: int) -> Address:
        """The ``k``-th live address (0-based) in insertion order.

        Equivalent to ``[a for a in order if alive(a)][k]`` — and hence to
        ``list(peers_dict.keys())[k]`` when the index mirrors the dict —
        but via an O(log n) Fenwick descent.

        Raises:
            IndexError: if ``k`` is out of range.
        """
        if not 0 <= k < self._alive:
            raise IndexError(f"kth({k}) out of range for {self._alive} live")
        tree = self._tree
        size = len(self._order)
        target = k + 1
        pos = 0
        bit = 1 << (size.bit_length() - 1) if size else 0
        while bit:
            nxt = pos + bit
            if nxt <= size and tree[nxt] < target:
                pos = nxt
                target -= tree[nxt]
            bit >>= 1
        address = self._order[pos]
        assert address is not None  # pos is the (k+1)-th alive slot
        return address

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _prefix(self, i: int) -> int:
        """Number of live slots among the first ``i`` (1-indexed) slots."""
        tree = self._tree
        total = 0
        while i > 0:
            total += tree[i]
            i -= i & -i
        return total

    def _compact(self) -> None:
        """Drop tombstones, preserving live relative order."""
        live = [a for a in self._order if a is not None]
        self._order = live
        self._pos = {a: i for i, a in enumerate(live)}
        size = len(live)
        tree = [0] * (size + 1)
        # O(n) Fenwick build over all-ones.
        for i in range(1, size + 1):
            tree[i] += 1
            j = i + (i & -i)
            if j <= size:
                tree[j] += tree[i]
        self._tree = tree
        self._alive = size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LiveAddressIndex(alive={self._alive}, "
            f"slots={len(self._order)})"
        )
