"""System and protocol parameters (paper Tables 1 and 2).

Two frozen dataclasses mirror the paper's configuration split:

* :class:`SystemParams` — the environment the protocol runs in (Table 1):
  network size, query behaviour, peer capacities, attacker mix.
* :class:`ProtocolParams` — how GUESS itself is configured (Table 2):
  the five policy types, cache size, ping interval, pong size, the
  introduction probability, and the behavioural flags.

Both validate eagerly so a bad sweep fails before simulation time is
spent, and both are hashable so experiment runners can key caches on them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Tuple

from repro.errors import ConfigError

#: Policy names accepted for ordering roles (QueryProbe, QueryPong,
#: PingProbe, PingPong).  ``MR*`` is MR restricted to first-hand
#: experience (see ``ProtocolParams.reset_num_results``).
ORDERING_POLICY_NAMES: Tuple[str, ...] = (
    "Random",
    "MRU",
    "LRU",
    "MFS",
    "MR",
    "MR*",
)

#: Policy names accepted for the CacheReplacement role.  Replacement
#: policies are named after what they evict (paper Section 4), so the
#: retain-goal of MFS is spelled LFS here, MR is LR, and MRU/LRU swap.
REPLACEMENT_POLICY_NAMES: Tuple[str, ...] = (
    "Random",
    "LRU",
    "MRU",
    "LFS",
    "LR",
    "LR*",
)


class BadPongBehavior(enum.Enum):
    """What a malicious peer puts in its Pong messages (Table 1).

    ``DEAD``: addresses of departed peers (non-colluding poisoning).
    ``BAD``: addresses of other malicious peers (colluding poisoning).
    ``GOOD``: addresses of good peers (camouflage; a control case).
    """

    DEAD = "Dead"
    BAD = "Bad"
    GOOD = "Good"


@dataclass(frozen=True)
class SystemParams:
    """Table 1: parameters describing the system the protocol runs on.

    Attributes:
        network_size: number of live peers (held constant by rebirth).
        num_desired_results: results needed to satisfy a query.
        lifespan_multiplier: scales every drawn peer lifetime.
        query_rate: expected queries per user per second.
        max_probes_per_second: per-peer capacity limit; ``None`` disables
            refusals entirely.
        percent_bad_peers: percentage (0-100) of peers that are malicious.
        bad_pong_behavior: what malicious peers return in pongs.
        percent_faulty_reporters: percentage (0-100) of peers that are
            faulty reporters — peers with real libraries that misreport
            query result counts (à la Consenzus; see
            :class:`~repro.core.malicious.FaultyReporter`).  Disjoint
            from the malicious population.
        faulty_reporter_mode: ``"inflate"`` (claim
            ``true + faulty_report_offset`` results) or ``"suppress"``
            (claim zero and refuse to relay gossip rumors).
        faulty_report_offset: results added per reply by inflating
            reporters.
    """

    network_size: int = 1000
    num_desired_results: int = 1
    lifespan_multiplier: float = 1.0
    query_rate: float = 9.26e-3
    max_probes_per_second: int | None = 100
    percent_bad_peers: float = 0.0
    bad_pong_behavior: BadPongBehavior = BadPongBehavior.DEAD
    percent_faulty_reporters: float = 0.0
    faulty_reporter_mode: str = "inflate"
    faulty_report_offset: int = 3

    def __post_init__(self) -> None:
        if self.network_size < 2:
            raise ConfigError(
                f"network_size must be >= 2, got {self.network_size}"
            )
        if self.num_desired_results < 1:
            raise ConfigError(
                f"num_desired_results must be >= 1, got {self.num_desired_results}"
            )
        if self.lifespan_multiplier <= 0:
            raise ConfigError(
                f"lifespan_multiplier must be > 0, got {self.lifespan_multiplier}"
            )
        if self.query_rate < 0:
            raise ConfigError(f"query_rate must be >= 0, got {self.query_rate}")
        if (
            self.max_probes_per_second is not None
            and self.max_probes_per_second < 1
        ):
            raise ConfigError(
                "max_probes_per_second must be >= 1 or None, "
                f"got {self.max_probes_per_second}"
            )
        if not 0.0 <= self.percent_bad_peers <= 100.0:
            raise ConfigError(
                f"percent_bad_peers must be in [0, 100], got {self.percent_bad_peers}"
            )
        if not isinstance(self.bad_pong_behavior, BadPongBehavior):
            raise ConfigError(
                f"bad_pong_behavior must be a BadPongBehavior, "
                f"got {self.bad_pong_behavior!r}"
            )
        if not 0.0 <= self.percent_faulty_reporters <= 100.0:
            raise ConfigError(
                "percent_faulty_reporters must be in [0, 100], "
                f"got {self.percent_faulty_reporters}"
            )
        if self.percent_bad_peers + self.percent_faulty_reporters > 100.0:
            raise ConfigError(
                "percent_bad_peers + percent_faulty_reporters must not "
                f"exceed 100, got {self.percent_bad_peers} + "
                f"{self.percent_faulty_reporters}"
            )
        if self.faulty_reporter_mode not in ("inflate", "suppress"):
            raise ConfigError(
                "faulty_reporter_mode must be 'inflate' or 'suppress', "
                f"got {self.faulty_reporter_mode!r}"
            )
        if self.faulty_report_offset < 1:
            raise ConfigError(
                "faulty_report_offset must be >= 1, "
                f"got {self.faulty_report_offset}"
            )

    @property
    def bad_peer_fraction(self) -> float:
        """percent_bad_peers as a probability."""
        return self.percent_bad_peers / 100.0

    @property
    def faulty_reporter_fraction(self) -> float:
        """percent_faulty_reporters as a probability."""
        return self.percent_faulty_reporters / 100.0

    def with_(self, **changes) -> "SystemParams":
        """Return a copy with ``changes`` applied (sweep helper)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class ProtocolParams:
    """Table 2: parameters configuring the GUESS protocol itself.

    Attributes:
        query_probe: policy ordering query probes.
        query_pong: policy selecting entries for pongs answering queries.
        ping_probe: policy ordering maintenance pings.
        ping_pong: policy selecting entries for pongs answering pings.
        cache_replacement: eviction policy (named for what it evicts).
        ping_interval: seconds between maintenance pings per peer.
        cache_size: link-cache capacity.
        reset_num_results: if True, ``NumRes`` learned from other peers is
            reset to 0 on insertion — combined with MR ordering this *is*
            the paper's MR\\* policy.  Selecting ``MR*`` (or ``LR*``) for
            any role forces this flag on via :meth:`normalized`.
        do_backoff: if True, a refused probe leaves the entry cached and
            the prober backs off; if False the prober treats the refusal
            like a death and evicts (the paper's inherent throttling).
        pong_size: IP addresses per pong.
        intro_prob: probability a probed peer caches the prober.
        probe_spacing: seconds between successive probes of one query
            (the GUESS spec's serial-probe timeout, 0.2 s).
        parallel_probes: number of probes in flight at once (k-walkers);
            1 is the strictly serial protocol from the spec.
        probe_retries: extra sends allowed after a probe times out
            (0 = the paper's one-shot probes).  Retries apply to both
            query probes and maintenance pings; over a lossy network
            they distinguish "lost packet" from "dead peer" at the cost
            of extra probes and waiting.
        retry_backoff: ``"fixed"`` or ``"exponential"`` — how the gap
            between retry attempts grows (see
            :class:`~repro.faults.retry.RetryPolicy`).
        retry_base: first backoff gap in seconds; ``None`` defaults to
            ``probe_spacing`` so retried probes stay on the serial grid.
        retry_multiplier: exponential backoff growth factor (ignored for
            fixed backoff).
    """

    query_probe: str = "Random"
    query_pong: str = "Random"
    ping_probe: str = "Random"
    ping_pong: str = "Random"
    cache_replacement: str = "Random"
    ping_interval: float = 30.0
    cache_size: int = 100
    reset_num_results: bool = False
    do_backoff: bool = False
    pong_size: int = 5
    intro_prob: float = 0.1
    probe_spacing: float = 0.2
    parallel_probes: int = 1
    probe_retries: int = 0
    retry_backoff: str = "fixed"
    retry_base: float | None = None
    retry_multiplier: float = 2.0

    def __post_init__(self) -> None:
        for role, name in (
            ("query_probe", self.query_probe),
            ("query_pong", self.query_pong),
            ("ping_probe", self.ping_probe),
            ("ping_pong", self.ping_pong),
        ):
            if name not in ORDERING_POLICY_NAMES:
                raise ConfigError(
                    f"{role} must be one of {ORDERING_POLICY_NAMES}, got {name!r}"
                )
        if self.cache_replacement not in REPLACEMENT_POLICY_NAMES:
            raise ConfigError(
                f"cache_replacement must be one of {REPLACEMENT_POLICY_NAMES}, "
                f"got {self.cache_replacement!r}"
            )
        if self.ping_interval <= 0:
            raise ConfigError(
                f"ping_interval must be > 0, got {self.ping_interval}"
            )
        if self.cache_size < 1:
            raise ConfigError(f"cache_size must be >= 1, got {self.cache_size}")
        if self.pong_size < 0:
            raise ConfigError(f"pong_size must be >= 0, got {self.pong_size}")
        if not 0.0 <= self.intro_prob <= 1.0:
            raise ConfigError(
                f"intro_prob must be in [0, 1], got {self.intro_prob}"
            )
        if self.probe_spacing <= 0:
            raise ConfigError(
                f"probe_spacing must be > 0, got {self.probe_spacing}"
            )
        if self.parallel_probes < 1:
            raise ConfigError(
                f"parallel_probes must be >= 1, got {self.parallel_probes}"
            )
        if self.probe_retries < 0:
            raise ConfigError(
                f"probe_retries must be >= 0, got {self.probe_retries}"
            )
        if self.retry_backoff not in ("fixed", "exponential"):
            raise ConfigError(
                "retry_backoff must be 'fixed' or 'exponential', "
                f"got {self.retry_backoff!r}"
            )
        if self.retry_base is not None and self.retry_base < 0:
            raise ConfigError(
                f"retry_base must be >= 0 or None, got {self.retry_base}"
            )
        if self.retry_multiplier < 1.0:
            raise ConfigError(
                f"retry_multiplier must be >= 1, got {self.retry_multiplier}"
            )

    def uses_starred_policy(self) -> bool:
        """True if any role selects the trust-local MR*/LR* variant."""
        starred = {"MR*", "LR*"}
        return bool(
            starred
            & {
                self.query_probe,
                self.query_pong,
                self.ping_probe,
                self.ping_pong,
                self.cache_replacement,
            }
        )

    def normalized(self) -> "ProtocolParams":
        """Resolve ``MR*``/``LR*`` into ``MR``/``LR`` + reset flag.

        The starred policies differ from their base policies only in how
        ``NumRes`` is ingested, which is an insertion-time behaviour
        (``reset_num_results``), not an ordering-time one.  Normalising
        keeps the policy implementations to the five base orderings.
        """
        if not self.uses_starred_policy():
            return self
        def unstar(name: str) -> str:
            return name.rstrip("*")
        return replace(
            self,
            query_probe=unstar(self.query_probe),
            query_pong=unstar(self.query_pong),
            ping_probe=unstar(self.ping_probe),
            ping_pong=unstar(self.ping_pong),
            cache_replacement=unstar(self.cache_replacement),
            reset_num_results=True,
        )

    def with_(self, **changes) -> "ProtocolParams":
        """Return a copy with ``changes`` applied (sweep helper)."""
        return replace(self, **changes)

    @classmethod
    def all_same_policy(cls, policy: str, **overrides) -> "ProtocolParams":
        """Params using ``policy`` for the three query-side roles (§6.4).

        The paper's policy-stack experiments "only vary QueryProbe,
        QueryPong and CacheReplacement ... all three types implement the
        same policy"; PingProbe and PingPong stay Random throughout the
        paper.  The replacement role gets the evict-counterpart name
        (MFS → LFS, MR → LR, MRU ↔ LRU) so that the *retain goal* matches
        the ordering goal, exactly as the paper pairs them.
        """
        replacement_for = {
            "Random": "Random",
            "MRU": "LRU",
            "LRU": "MRU",
            "MFS": "LFS",
            "MR": "LR",
            "MR*": "LR*",
        }
        if policy not in replacement_for:
            raise ConfigError(
                f"policy must be one of {sorted(replacement_for)}, got {policy!r}"
            )
        return cls(
            query_probe=policy,
            query_pong=policy,
            cache_replacement=replacement_for[policy],
            **overrides,
        )


def default_cache_seed_size(network_size: int) -> int:
    """Initial live entries per cache: ``NetworkSize / 100``, at least 2.

    The paper found results insensitive to the seed size as long as it is
    small (~NetworkSize/100); 2 is the floor that keeps the tiniest test
    networks connected at t=0.
    """
    if network_size < 2:
        raise ConfigError(f"network_size must be >= 2, got {network_size}")
    return max(2, network_size // 100)
