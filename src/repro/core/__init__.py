"""The GUESS protocol — the paper's primary contribution.

Public surface:

* :class:`~repro.core.params.SystemParams` /
  :class:`~repro.core.params.ProtocolParams` — Tables 1 and 2.
* :class:`~repro.core.network_sim.GuessSimulation` — a runnable network.
* :class:`~repro.core.peer.GuessPeer` /
  :class:`~repro.core.malicious.MaliciousPeer` — peer behaviours.
* The policy framework (:mod:`repro.core.policies`,
  :mod:`repro.core.policy_impls`) and caches
  (:mod:`repro.core.link_cache`, :mod:`repro.core.query_cache`).
* :func:`~repro.core.search.execute_query` — the serial-probe search loop.
"""

from repro.core import policy_impls as _policy_impls  # registers policies
from repro.core.entry import CacheEntry
from repro.core.link_cache import LinkCache
from repro.core.malicious import (
    AttackDirectory,
    FaultyReporter,
    MaliciousPeer,
)
from repro.core.messages import Ping, Pong, Query, QueryReply, Refusal
from repro.core.network_sim import GuessSimulation
from repro.core.params import (
    BadPongBehavior,
    ProtocolParams,
    SystemParams,
    default_cache_seed_size,
)
from repro.core.peer import GuessPeer
from repro.core.policies import (
    Policy,
    PolicySet,
    get_ordering_policy,
    get_replacement_policy,
    registered_policy_names,
)
from repro.core.query_cache import QueryCache
from repro.core.search import QueryResult, execute_query

del _policy_impls

__all__ = [
    "CacheEntry",
    "LinkCache",
    "AttackDirectory",
    "FaultyReporter",
    "MaliciousPeer",
    "Ping",
    "Pong",
    "Query",
    "QueryReply",
    "Refusal",
    "GuessSimulation",
    "BadPongBehavior",
    "ProtocolParams",
    "SystemParams",
    "default_cache_seed_size",
    "GuessPeer",
    "Policy",
    "PolicySet",
    "get_ordering_policy",
    "get_replacement_policy",
    "registered_policy_names",
    "QueryCache",
    "QueryResult",
    "execute_query",
]
