"""The query cache (paper Section 2.3).

A temporary, (theoretically) unbounded "scratch space" of pointers
accumulated from the Pong messages received while executing one query.
It lets the querying peer probe far more peers than its small link cache
can hold.  Properties the paper specifies:

* entries have the same format as link-cache entries;
* an address already seen this query (probed, cached, or pooled) is not
  added again;
* the cache is **discarded when the query completes** — maintaining it
  would cost too much (entries may still graduate to the link cache via
  the normal CacheReplacement path, handled by the search loop).

Determinism audit (RD003): ``_seen`` is a set used for membership tests
only and is never iterated; candidate ordering always flows through
``_entries``, an insertion-ordered dict, so ``entries()`` /
``addresses()`` hand policy selection a deterministic sequence.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set

from repro.core.entry import CacheEntry
from repro.network.address import Address


class QueryCache:
    """Per-query scratch cache of candidate probe targets.

    Args:
        owner: the querying peer's address (never admitted).
        excluded: addresses already known at query start (the link-cache
            contents); pong entries duplicating them are not re-added.
    """

    __slots__ = ("owner", "_entries", "_seen")

    def __init__(self, owner: Address, excluded: Set[Address] | None = None) -> None:
        self.owner = owner
        self._entries: Dict[Address, CacheEntry] = {}
        self._seen: Set[Address] = set(excluded or ())
        self._seen.add(owner)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, address: Address) -> bool:
        return address in self._entries

    def add(self, entry: CacheEntry) -> bool:
        """Admit ``entry`` unless its address has been seen this query.

        Returns:
            True if admitted.
        """
        address = entry.address
        if address in self._seen or address in self._entries:
            return False
        self._entries[address] = entry
        return True

    def mark_seen(self, address: Address) -> None:
        """Record that ``address`` has been probed (or otherwise consumed)."""
        self._seen.add(address)

    def was_seen(self, address: Address) -> bool:
        """Whether ``address`` is excluded from (re-)admission."""
        return address in self._seen

    def pop(self, address: Address) -> Optional[CacheEntry]:
        """Remove and return the entry for ``address`` (marking it seen)."""
        entry = self._entries.pop(address, None)
        if entry is not None:
            self._seen.add(address)
        return entry

    def entries(self) -> List[CacheEntry]:
        """Snapshot of current (unconsumed) entries."""
        return list(self._entries.values())

    def addresses(self) -> Iterator[Address]:
        return iter(self._entries.keys())

    def clear(self) -> None:
        """Discard the scratch space (query completed)."""
        self._entries.clear()
        self._seen.clear()
        self._seen.add(self.owner)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryCache(owner={self.owner}, size={len(self._entries)})"
