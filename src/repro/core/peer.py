"""A well-behaved GUESS peer.

:class:`GuessPeer` implements the receiving side of the protocol — it is
the :class:`~repro.network.transport.Endpoint` registered with the
transport — plus the cache-ingestion helpers the initiating side (ping
cycle and query loop, driven by :mod:`repro.core.network_sim` and
:mod:`repro.core.search`) shares with it:

* answer Pings with Pongs built by the PingPong policy;
* answer Queries with a result count (does my library hold the target?)
  and a piggybacked Pong built by the QueryPong policy;
* refuse probes beyond ``MaxProbesPerSecond`` (Section 6.3) — with the
  optional graded-shedding refinement from
  :class:`~repro.resilience.policy.SheddingSpec`, which refuses *pings*
  at a soft threshold below the hard limit so the remaining capacity
  keeps serving queries;
* apply the introduction rule: cache the prober with probability
  ``IntroProb`` (Section 2.2);
* import pong entries through the CacheReplacement policy, honouring the
  MR* ``reset_num_results`` ingestion rule.
"""

from __future__ import annotations

import random
from typing import FrozenSet, Optional, Tuple

from repro.core.entry import CacheEntry
from repro.core.link_cache import LinkCache
from repro.core.messages import (
    CacheUpdate,
    CacheUpdateAck,
    GossipAck,
    GossipPush,
    Ping,
    Pong,
    Query,
    QueryReply,
    Refusal,
)
from repro.core.params import ProtocolParams
from repro.core.policies import PolicySet
from repro.network.address import Address
from repro.resilience.breaker import BreakerBoard
from repro.resilience.budget import RetryBudget
from repro.resilience.policy import ResiliencePolicy
from repro.sim.windows import BucketedRateLimiter
from repro.workload.content import ContentModel


class GuessPeer:
    """One good (protocol-following) peer.

    Args:
        address: this peer's address.
        num_files: advertised shared-file count (drives MFS at *other*
            peers; honest peers advertise their true library size).
        library: set of owned file ranks.
        birth_time: when the peer joined.
        death_time: when it will silently leave.
        protocol: normalised protocol parameters.
        policies: the shared, instantiated policy set.
        max_probes_per_second: capacity limit (None = unlimited).
        policy_rng: stream used for policy randomness (Random policy,
            eviction contests).
        intro_rng: stream used for introduction coin flips.
        resilience: graceful-degradation mechanisms to arm (breakers,
            retry budget, graded shedding); ``None`` (or an all-off
            policy, which the simulation normalizes away) keeps the
            plain-paper behaviour on every code path.
        cache_capacity: per-peer link-cache capacity override
            (heterogeneous :class:`~repro.freshness.plan.CacheSizing`);
            ``None`` uses the global ``protocol.cache_size``.
    """

    #: Class-level flag distinguishing good peers from malicious ones in
    #: metrics without isinstance checks on the hot path.
    malicious: bool = False

    #: Class-level flag for faulty reporters (misreporting adversaries);
    #: see :class:`~repro.core.malicious.FaultyReporter`.
    faulty: bool = False

    #: True for peers that refuse to re-forward gossip rumors (the
    #: suppress-mode faulty reporter); checked by the gossip-assisted
    #: relay before scheduling the next hop.
    suppresses_gossip: bool = False

    # At million-peer scale the per-peer ``__dict__`` (~100 bytes each,
    # plus boxed values) dominates RSS; fixed slots cut the per-peer
    # footprint roughly in half and make attribute reads a fixed-offset
    # load.  Scalar per-peer state additionally lives in the
    # struct-of-arrays columns of :class:`~repro.core.peer_store.PeerStore`.
    __slots__ = (
        "address",
        "num_files",
        "library",
        "birth_time",
        "death_time",
        "protocol",
        "policies",
        "link_cache",
        "_limiter",
        "_policy_rng",
        "_intro_rng",
        "defense",
        "breakers",
        "retry_budget",
        "_soft_limit",
        "probes_received",
        "probes_refused",
        "pings_shed",
        "pings_received",
        "queries_received",
        "results_served",
    )

    def __init__(
        self,
        address: Address,
        *,
        num_files: int,
        library: FrozenSet[int],
        birth_time: float,
        death_time: float,
        protocol: ProtocolParams,
        policies: PolicySet,
        max_probes_per_second: int | None,
        policy_rng: random.Random,
        intro_rng: random.Random,
        resilience: ResiliencePolicy | None = None,
        cache_capacity: int | None = None,
    ) -> None:
        if death_time <= birth_time:
            raise ValueError(
                f"death_time {death_time} must exceed birth_time {birth_time}"
            )
        self.address = address
        self.num_files = int(num_files)
        self.library = library
        self.birth_time = float(birth_time)
        self.death_time = float(death_time)
        self.protocol = protocol
        self.policies = policies
        self.link_cache = LinkCache(
            protocol.cache_size if cache_capacity is None else cache_capacity,
            owner=address,
        )
        self._limiter = (
            BucketedRateLimiter(window=1.0, limit=max_probes_per_second)
            if max_probes_per_second is not None
            else None
        )
        self._policy_rng = policy_rng
        self._intro_rng = intro_rng
        # Optional defense hooks (repro.extensions.detection).  When set,
        # entry imports report provenance and blacklisted sources/targets
        # are dropped; None keeps the plain-paper behaviour.
        self.defense = None
        # Resilience mechanisms (repro.resilience).  All default to the
        # do-nothing None so an unarmed peer runs the exact pre-existing
        # code paths.
        self.breakers = (
            BreakerBoard(resilience.breaker)
            if resilience is not None and resilience.breaker is not None
            else None
        )
        self.retry_budget = (
            RetryBudget(resilience.budget)
            if resilience is not None and resilience.budget is not None
            else None
        )
        shedding = resilience.shedding if resilience is not None else None
        self._soft_limit = (
            max(1, int(shedding.soft_fraction * max_probes_per_second))
            if shedding is not None
            and shedding.enabled
            and max_probes_per_second is not None
            else None
        )
        # Lifetime counters harvested by the metrics collector.
        self.probes_received = 0
        self.probes_refused = 0
        self.pings_shed = 0
        self.pings_received = 0
        self.queries_received = 0
        self.results_served = 0

    # ------------------------------------------------------------------
    # Liveness (Endpoint protocol)
    # ------------------------------------------------------------------

    def is_alive(self, time: float) -> bool:
        """Alive on [birth_time, death_time)."""
        return self.birth_time <= time < self.death_time

    # ------------------------------------------------------------------
    # Receiving probes (Endpoint protocol)
    # ------------------------------------------------------------------

    def receive_probe(self, message, time: float) -> Tuple[bool, object]:
        """Handle an incoming Ping, Query, GossipPush, or CacheUpdate probe.

        Returns:
            ``(accepted, response)`` per the transport's Endpoint
            contract; a refusal carries a :class:`Refusal` notice.
        """
        self.probes_received += 1
        if self._limiter is not None:
            if (
                self._soft_limit is not None
                and isinstance(message, (Ping, GossipPush, CacheUpdate))
                and self._limiter.count(time) >= self._soft_limit
            ):
                # Graded shedding: above the soft threshold maintenance
                # traffic (pings, gossip rumors) is refused *without*
                # consuming window capacity, reserving the remaining
                # budget for queries.
                self.probes_refused += 1
                self.pings_shed += 1
                return False, Refusal(self.address)
            if not self._limiter.try_record(time):
                self.probes_refused += 1
                return False, Refusal(self.address)
        if isinstance(message, Ping):
            return True, self._handle_ping(message, time)
        if isinstance(message, Query):
            return True, self._handle_query(message, time)
        if isinstance(message, GossipPush):
            return True, self._handle_gossip(message, time)
        if isinstance(message, CacheUpdate):
            return True, self._handle_cache_update(message, time)
        raise TypeError(f"unsupported probe message: {message!r}")

    def _handle_ping(self, message: Ping, time: float) -> Pong:
        self.pings_received += 1
        pong = self.make_pong(self.policies.ping_pong, time)
        self._maybe_introduce(message.sender, message.sender_num_files, time)
        return pong

    def _handle_query(self, message: Query, time: float) -> QueryReply:
        self.queries_received += 1
        num_results = (
            1 if ContentModel.matches(self.library, message.target_file) else 0
        )
        self.results_served += num_results
        pong = self.make_pong(self.policies.query_pong, time)
        self._maybe_introduce(message.sender, message.sender_num_files, time)
        return QueryReply(sender=self.address, num_results=num_results, pong=pong)

    def _handle_gossip(self, message: GossipPush, time: float) -> GossipAck:
        """Ingest an epidemically disseminated pong harvest.

        The rumor's entries are attributed to the peer whose harvest
        seeded it (defense provenance tracks the original source, not
        the forwarding carrier); no introduction coin is flipped — a
        rumor carries no advertised file count.
        """
        imported = self.import_pong_to_link_cache(
            Pong(sender=message.origin, entries=message.entries), time
        )
        return GossipAck(sender=self.address, imported=imported)

    def _handle_cache_update(
        self, message: CacheUpdate, time: float
    ) -> CacheUpdateAck:
        """Ingest a push-invalidation notice (:mod:`repro.freshness`).

        A departure notice purges the stale entry outright; an overload
        notice is relayed refusal knowledge — a breaker-armed receiver
        records a remote refusal (keeping the entry cached behind the
        breaker), a plain receiver purges just like a departure.  The
        acknowledgement piggybacks a PingPong-policy Pong so a live
        notifier can refresh the slot the purge vacated.
        """
        subject = message.subject
        purged = False
        if message.departed:
            purged = self.link_cache.evict(subject)
            if purged and self.breakers is not None:
                self.breakers.discard(subject)
        elif subject in self.link_cache:
            purged = True  # "held the entry": the interest-path signal
            if self.breakers is not None:
                self.breakers.record_refusal(subject, time)
            else:
                self.link_cache.evict(subject)
        pong = self.make_pong(self.policies.ping_pong, time)
        return CacheUpdateAck(sender=self.address, purged=purged, pong=pong)

    # ------------------------------------------------------------------
    # Pong construction and the introduction rule
    # ------------------------------------------------------------------

    def make_pong(self, pong_policy, time: float) -> Pong:
        """Build a Pong of up to ``PongSize`` *copied* link-cache entries."""
        selected = pong_policy.select_top(
            self.link_cache.entries(),
            self.protocol.pong_size,
            time,
            self._policy_rng,
        )
        return Pong(
            sender=self.address,
            entries=tuple(entry.copy() for entry in selected),
        )

    def _maybe_introduce(
        self, prober: Address, prober_num_files: int, time: float
    ) -> None:
        """Cache the prober with probability ``IntroProb`` (Section 2.2)."""
        if self.protocol.intro_prob <= 0.0:
            return
        if prober == self.address or prober in self.link_cache:
            return
        if self._intro_rng.random() >= self.protocol.intro_prob:
            return
        entry = CacheEntry(
            address=prober, ts=time, num_files=prober_num_files, num_res=0,
            born=time,
        )
        self.link_cache.insert(
            entry, self.policies.replacement, time, self._policy_rng
        )

    # ------------------------------------------------------------------
    # Initiator-side helpers (used by the ping cycle and query loop)
    # ------------------------------------------------------------------

    def import_pong_to_link_cache(self, pong: Pong, now: float) -> int:
        """Ingest a pong's entries into the link cache.

        Applies the MR* ``reset_num_results`` rule and the replacement
        policy; when defense hooks are installed, records provenance and
        drops entries from (or pointing at) blacklisted peers.  Returns
        the number of entries actually inserted.
        """
        defense = self.defense
        if defense is not None and defense.blocked(pong.sender):
            return 0
        inserted = 0
        reset = self.policies.reset_num_results
        for entry in pong.entries:
            if defense is not None:
                if defense.blocked(entry.address):
                    continue
                defense.record_import(entry.address, pong.sender)
            candidate = entry.copy_for_import(reset, now)
            if self.link_cache.insert(
                candidate, self.policies.replacement, now, self._policy_rng
            ):
                inserted += 1
        return inserted

    def offer_entry_to_link_cache(self, entry: CacheEntry, now: float) -> bool:
        """Offer one (already-imported) entry to the link cache."""
        return self.link_cache.insert(
            entry, self.policies.replacement, now, self._policy_rng
        )

    def choose_ping_target(self, now: float) -> Optional[CacheEntry]:
        """The entry the PingProbe policy says to ping next."""
        return self.policies.ping_probe.select_best(
            self.link_cache.entries(), now, self._policy_rng
        )

    def ping_message(self) -> Ping:
        """The Ping this peer sends when maintaining its cache."""
        return Ping(sender=self.address, sender_num_files=self.num_files)

    def query_message(self, target_file: int) -> Query:
        """The Query probe for ``target_file``."""
        return Query(
            sender=self.address,
            target_file=target_file,
            sender_num_files=self.num_files,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(address={self.address}, "
            f"files={self.num_files}, cache={len(self.link_cache)})"
        )
