"""Concrete policies (paper Section 4).

========  ==========================================================
Random    baseline; uniformly random choices, fairest load spread
MRU       prefer most recent TS — entries most likely still alive
LRU       prefer oldest TS — fairness by spreading load, risks dead
MFS       prefer most advertised files — likeliest to hold answers
MR        prefer most results returned to *my* last query — personal
          usefulness, harder to game than MFS
MR*       MR ranking over first-hand NumRes only (the ingestion-time
          reset lives in ``ProtocolParams.reset_num_results``)
========  ==========================================================

Eviction counterparts (LFS, LR, and the swapped LRU/MRU) reuse these key
functions through :data:`repro.core.policies.REPLACEMENT_KEY_POLICY`.
"""

from __future__ import annotations

import random
from itertools import islice
from typing import Iterable, List, Optional, Sequence

from repro.core.entry import CacheEntry
from repro.core.policies import Policy, register_policy


@register_policy
class RandomPolicy(Policy):
    """Uniformly random selection; the paper's baseline for every role."""

    name = "Random"
    randomized = True

    def key(self, entry: CacheEntry, now: float) -> float:
        # A constant key makes the generic paths degenerate; the overrides
        # below supply the actual randomness.
        return 0.0

    def select_best(
        self,
        entries: Sequence[CacheEntry],
        now: float,
        rng: random.Random,
    ) -> Optional[CacheEntry]:
        if not entries:
            return None
        return entries[rng.randrange(len(entries))]

    def order(
        self,
        entries,
        now: float,
        rng: random.Random,
    ) -> List[CacheEntry]:
        ordered = list(entries)
        rng.shuffle(ordered)
        return ordered

    def select_top(
        self,
        entries: Sequence[CacheEntry],
        k: int,
        now: float,
        rng: random.Random,
    ) -> List[CacheEntry]:
        if k <= 0 or not entries:
            return []
        if k >= len(entries):
            ordered = list(entries)
            rng.shuffle(ordered)
            return ordered
        return rng.sample(list(entries), k)

    def choose_victim(
        self,
        entries: Sequence[CacheEntry],
        now: float,
        rng: random.Random,
    ) -> Optional[CacheEntry]:
        if not entries:
            return None
        return entries[rng.randrange(len(entries))]

    def choose_victim_from(
        self,
        residents: Iterable[CacheEntry],
        n_residents: int,
        candidate: CacheEntry,
        now: float,
        rng: random.Random,
    ) -> Optional[CacheEntry]:
        # Same single randrange(n+1) draw and the same element the base
        # spelling would index in list(residents) + [candidate], with no
        # combined-list allocation.
        i = rng.randrange(n_residents + 1)
        if i == n_residents:
            return candidate
        return next(islice(iter(residents), i, None))


@register_policy
class MostRecentlyUsedPolicy(Policy):
    """Prefer the freshest TS: least likely to be dead, least wasted work."""

    name = "MRU"

    def key(self, entry: CacheEntry, now: float) -> float:
        return entry.ts


@register_policy
class LeastRecentlyUsedPolicy(Policy):
    """Prefer the stalest TS: spreads load fairly, risks dead probes."""

    name = "LRU"

    def key(self, entry: CacheEntry, now: float) -> float:
        return -entry.ts


@register_policy
class MostFilesSharedPolicy(Policy):
    """Prefer peers advertising the largest libraries.

    The global measure makes it both the most efficient honest-network
    policy (Figures 10/11) and the least robust to lying peers
    (Figures 16-21): NumFiles is whatever the pong claimed.
    """

    name = "MFS"

    def key(self, entry: CacheEntry, now: float) -> float:
        return float(entry.num_files)


@register_policy
class MostResultsPolicy(Policy):
    """Prefer peers that answered (my) queries before.

    NumRes captures *personal* usefulness and is refreshed on every direct
    probe, which is what makes MR self-correcting against non-colluding
    poisoners (a malicious peer returns no results, so one probe zeroes
    its rank).
    """

    name = "MR"

    def key(self, entry: CacheEntry, now: float) -> float:
        return float(entry.num_res)
