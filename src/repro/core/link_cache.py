"""The link cache (paper Sections 2.1-2.2).

A bounded map ``address -> CacheEntry`` with policy-driven eviction.  The
paper's rules, all enforced here:

* an address appears at most once; re-receiving an entry for a cached
  address does **not** update its fields ("it does not update any of the
  fields", Section 2.2);
* a peer never caches its own address;
* when the cache is full, the configured CacheReplacement policy picks a
  victim among the existing entries *and the incoming one* — so an
  incoming entry that ranks worst is simply rejected (how LFS keeps
  big-library peers resident);
* entries found dead (probe timeout) are evicted immediately, which is
  why caches often run below capacity (paper Table 3 discussion).

Storage layout
--------------

Entries live in an append-only **slot list** with eviction tombstoning
(the same pattern as :class:`~repro.core.live_index.LiveAddressIndex`),
plus a small ``address -> slot`` index for O(1) membership.  The live
subsequence of the slot list is exactly the insertion order the old
dict-backed spelling iterated in — dicts preserve insertion order
across deletions, and both layouts append re-insertions at the end — so
policy inputs (and hence the golden trace digests) are bit-identical.
The list is compacted when tombstones outnumber live entries (once it
has outgrown ``capacity``), bounding it at ~2x capacity however long
churn runs; iteration touches one flat, mostly-dense object array
instead of hash-table buckets — and when there are no tombstones at
all, the snapshot/iteration paths hand back the dense list directly.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Iterator, List, Optional

from repro.core.entry import CacheEntry
from repro.core.policies import Policy
from repro.errors import ConfigError
from repro.network.address import Address


class LinkCache:
    """Bounded, policy-evicted cache of peer pointers.

    Args:
        capacity: maximum number of entries.  The global Table 2
            ``CacheSize`` by default; heterogeneous per-peer capacities
            (a :class:`~repro.freshness.plan.CacheSizing` policy) may
            assign any size >= 0 — a zero-slot cache refuses every
            insert without consulting the replacement policy.
        owner: address of the peer owning this cache; entries for the
            owner are silently refused.
    """

    __slots__ = ("capacity", "owner", "_slots", "_index", "_live")

    def __init__(self, capacity: int, owner: Address) -> None:
        if capacity < 0:
            raise ConfigError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self.owner = owner
        #: Append-only entry slots; evicted entries tombstone to None.
        self._slots: List[Optional[CacheEntry]] = []
        #: address -> index into ``_slots`` for the live entry.
        self._index: Dict[Address, int] = {}
        self._live = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._live

    def __contains__(self, address: Address) -> bool:
        return address in self._index

    def get(self, address: Address) -> Optional[CacheEntry]:
        """The entry for ``address``, or None."""
        idx = self._index.get(address)
        return None if idx is None else self._slots[idx]

    def entries(self) -> List[CacheEntry]:
        """Snapshot list of entries (insertion-ordered)."""
        if self._live == len(self._slots):
            return list(self._slots)  # type: ignore[arg-type]
        return [e for e in self._slots if e is not None]

    def iter_entries(self) -> Iterable[CacheEntry]:
        """Live view of the entries (insertion-ordered), no copy.

        For read-only hot paths (health sampling); callers must not
        mutate the cache while iterating — use :meth:`entries` for that.
        """
        if self._live == len(self._slots):
            return self._slots  # type: ignore[return-value]
        return (e for e in self._slots if e is not None)

    def addresses(self) -> Iterator[Address]:
        """Iterate over cached addresses (insertion-ordered)."""
        return (e.address for e in self._slots if e is not None)

    @property
    def is_full(self) -> bool:
        return self._live >= self.capacity

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def _append(self, entry: CacheEntry) -> None:
        self._index[entry.address] = len(self._slots)
        self._slots.append(entry)
        self._live += 1

    def _drop_slot(self, address: Address) -> None:
        idx = self._index.pop(address)
        self._slots[idx] = None
        self._live -= 1
        # Compact when tombstones dominate (and the list has outgrown
        # capacity — below that, filtering is pure churn).
        slots = self._slots
        if len(slots) > self.capacity and self._live * 2 < len(slots):
            live = [e for e in slots if e is not None]
            self._slots = live
            self._index = {e.address: i for i, e in enumerate(live)}

    def insert(
        self,
        entry: CacheEntry,
        replacement: Policy,
        now: float,
        rng: random.Random,
    ) -> bool:
        """Try to insert ``entry`` under the replacement policy.

        Returns:
            True if the entry is now cached; False if it was refused
            (already present, points at the owner, or lost the eviction
            contest).  The caller must pass an entry it owns — the cache
            stores it by reference.
        """
        address = entry.address
        if address == self.owner:
            return False
        if address in self._index:
            # Paper: fields of an existing entry are not updated from pongs.
            return False
        if self.capacity == 0:
            # Zero-slot caches refuse unconditionally: an eviction
            # contest with no residents would burn a Random-policy draw
            # deciding nothing.
            return False
        if self._live < self.capacity:
            self._append(entry)
            return True
        # Full: the incoming entry competes with residents for a slot.
        # choose_victim_from picks the same victim choose_victim would
        # over list(residents) + [entry], minus the combined-list copy.
        victim = replacement.choose_victim_from(
            self.iter_entries(), self._live, entry, now, rng
        )
        if victim is None or victim.address == address:
            return False
        self._drop_slot(victim.address)
        self._append(entry)
        return True

    def evict(self, address: Address) -> bool:
        """Remove ``address`` (dead peer, refused probe); True if present."""
        if address not in self._index:
            return False
        self._drop_slot(address)
        return True

    def touch(self, address: Address, now: float) -> None:
        """Update TS after a direct interaction with ``address`` (no-op if absent)."""
        idx = self._index.get(address)
        if idx is not None:
            entry = self._slots[idx]
            assert entry is not None
            entry.touch(now)

    def record_results(self, address: Address, num_results: int, now: float) -> None:
        """Reset NumRes for ``address`` after a query reply (no-op if absent)."""
        idx = self._index.get(address)
        if idx is not None:
            entry = self._slots[idx]
            assert entry is not None
            entry.record_results(num_results, now)

    def clear(self) -> None:
        """Drop all entries."""
        self._slots.clear()
        self._index.clear()
        self._live = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LinkCache(owner={self.owner}, size={self._live}/"
            f"{self.capacity})"
        )
