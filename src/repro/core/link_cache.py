"""The link cache (paper Sections 2.1-2.2).

A bounded map ``address -> CacheEntry`` with policy-driven eviction.  The
paper's rules, all enforced here:

* an address appears at most once; re-receiving an entry for a cached
  address does **not** update its fields ("it does not update any of the
  fields", Section 2.2);
* a peer never caches its own address;
* when the cache is full, the configured CacheReplacement policy picks a
  victim among the existing entries *and the incoming one* — so an
  incoming entry that ranks worst is simply rejected (how LFS keeps
  big-library peers resident);
* entries found dead (probe timeout) are evicted immediately, which is
  why caches often run below capacity (paper Table 3 discussion).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Iterator, List, Optional

from repro.core.entry import CacheEntry
from repro.core.policies import Policy
from repro.errors import ConfigError
from repro.network.address import Address


class LinkCache:
    """Bounded, policy-evicted cache of peer pointers.

    Args:
        capacity: maximum number of entries (Table 2 ``CacheSize``).
        owner: address of the peer owning this cache; entries for the
            owner are silently refused.
    """

    __slots__ = ("capacity", "owner", "_entries")

    def __init__(self, capacity: int, owner: Address) -> None:
        if capacity < 1:
            raise ConfigError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.owner = owner
        self._entries: Dict[Address, CacheEntry] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, address: Address) -> bool:
        return address in self._entries

    def get(self, address: Address) -> Optional[CacheEntry]:
        """The entry for ``address``, or None."""
        return self._entries.get(address)

    def entries(self) -> List[CacheEntry]:
        """Snapshot list of entries (insertion-ordered)."""
        return list(self._entries.values())

    def iter_entries(self) -> Iterable[CacheEntry]:
        """Live view of the entries (insertion-ordered), no copy.

        For read-only hot paths (health sampling); callers must not
        mutate the cache while iterating — use :meth:`entries` for that.
        """
        return self._entries.values()

    def addresses(self) -> Iterator[Address]:
        """Iterate over cached addresses."""
        return iter(self._entries.keys())

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(
        self,
        entry: CacheEntry,
        replacement: Policy,
        now: float,
        rng: random.Random,
    ) -> bool:
        """Try to insert ``entry`` under the replacement policy.

        Returns:
            True if the entry is now cached; False if it was refused
            (already present, points at the owner, or lost the eviction
            contest).  The caller must pass an entry it owns — the cache
            stores it by reference.
        """
        address = entry.address
        if address == self.owner:
            return False
        if address in self._entries:
            # Paper: fields of an existing entry are not updated from pongs.
            return False
        if len(self._entries) < self.capacity:
            self._entries[address] = entry
            return True
        # Full: the incoming entry competes with residents for a slot.
        # choose_victim_from picks the same victim choose_victim would
        # over list(residents) + [entry], minus the combined-list copy.
        victim = replacement.choose_victim_from(
            self._entries.values(), len(self._entries), entry, now, rng
        )
        if victim is None or victim.address == address:
            return False
        del self._entries[victim.address]
        self._entries[address] = entry
        return True

    def evict(self, address: Address) -> bool:
        """Remove ``address`` (dead peer, refused probe); True if present."""
        return self._entries.pop(address, None) is not None

    def touch(self, address: Address, now: float) -> None:
        """Update TS after a direct interaction with ``address`` (no-op if absent)."""
        entry = self._entries.get(address)
        if entry is not None:
            entry.touch(now)

    def record_results(self, address: Address, num_results: int, now: float) -> None:
        """Reset NumRes for ``address`` after a query reply (no-op if absent)."""
        entry = self._entries.get(address)
        if entry is not None:
            entry.record_results(num_results, now)

    def clear(self) -> None:
        """Drop all entries."""
        self._entries.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LinkCache(owner={self.owner}, size={len(self._entries)}/"
            f"{self.capacity})"
        )
