"""The GUESS network simulation (paper Section 5.1).

:class:`GuessSimulation` wires every substrate together and drives the
lifecycle the paper describes:

* ``NetworkSize`` peers are alive at every instant: when a peer's drawn
  lifetime expires it silently departs and a fresh peer is born in the
  same instant, seeded by the *random friend* policy (it copies the link
  cache of one live peer it knows);
* at time 0 every link cache is seeded with ``CacheSeedSize ≈
  NetworkSize/100`` live peers;
* every peer pings one link-cache entry per ``PingInterval`` (evicting
  corpses, importing pong entries);
* good peers issue bursty queries (1-5 per burst, Poisson bursts) and
  execute them with the serial-probe search loop;
* a configurable fraction of peers is malicious and poisons pongs.

The simulation holds one shared :class:`PolicySet` (policies are
stateless), one transport, one attack directory, and one metrics
collector; the report combines query outcomes, per-peer loads, and
periodic cache-health samples.
"""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.gossip import GossipPlan, GossipRelay
from repro.core.entry import CacheEntry
from repro.core.malicious import AttackDirectory, FaultyReporter, MaliciousPeer
from repro.core.messages import CacheUpdate, GossipPush
from repro.core.params import (
    ProtocolParams,
    SystemParams,
    default_cache_seed_size,
)
from repro.core.peer import GuessPeer
from repro.core.peer_store import PeerStore
from repro.core.policies import PolicySet
from repro.core.search import execute_query
from repro.errors import SimulationError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy, probe_with_retry
from repro.freshness.mediator import FreshnessMediator
from repro.freshness.plan import FreshnessPlan
from repro.metrics.collectors import (
    CacheHealthSample,
    MetricsCollector,
    SimulationReport,
)
from repro.network.address import Address, AddressAllocator
from repro.network.overlay import OverlaySnapshot
from repro.network.transport import ProbeStatus, Transport
from repro.observe.plan import Observation, ObservationPlan
from repro.resilience.breaker import OPEN
from repro.resilience.policy import ResiliencePolicy
from repro.resilience.scenarios import ChurnStorm, ScenarioDriver, ScenarioPlan
from repro.sim.engine import Simulator
from repro.sim.events import EventPriority
from repro.sim.rng import RngRegistry
from repro.workload.content import ContentModel
from repro.workload.files import FileCountModel
from repro.workload.lifetimes import LifetimeModel
from repro.workload.queries import QueryBurstProcess

#: Unregistered addresses malicious peers can hand out before any real
#: peer has died (they behave exactly like dead peers: probes time out).
GHOST_ADDRESS_COUNT = 64

#: Default spacing of cache-health samples (seconds).
DEFAULT_HEALTH_SAMPLE_INTERVAL = 60.0


class GuessSimulation:
    """A complete, runnable GUESS network.

    Args:
        system: Table 1 parameters.
        protocol: Table 2 parameters (``MR*``/``LR*`` normalise
            automatically).
        seed: master seed; same seed + params = bit-identical run.
        warmup: measurement warmup in seconds (metrics before this time
            are discarded; protocol behaviour is unaffected).
        content: content model override (defaults calibrate the ~6%
            unsatisfiable floor at NetworkSize 1000).
        lifetime_model: lifetime model override (defaults to the
            synthetic Saroiu-like trace scaled by
            ``system.lifespan_multiplier``).
        file_model: shared-file-count model override.
        keep_queries: retain every individual query result in the report.
        health_sample_interval: spacing of cache-health samples; ``None``
            disables sampling (saves time in ping-only sweeps).
        latency: optional round-trip-time model for delivered probes
            (see :mod:`repro.network.latency`); defaults to the
            transport's constant model.  Affects only response-time
            metrics, never probe counts.
        faults: optional :class:`~repro.faults.plan.FaultPlan` making
            the wire unreliable (packet loss, brownouts, partitions,
            jitter).  ``None`` or an all-zeros plan builds no injector
            and reproduces the fault-free trace digest bit-for-bit.
            Fault randomness draws only from ``fault:*`` substreams, so
            protocol streams are never perturbed.
        trace_hash: enable the engine's determinism sanitizer — every
            fired event is folded into a digest exposed as
            :attr:`trace_digest`, so two same-``(seed, params)`` runs can
            be asserted bit-for-bit identical.
        scheduler: engine event-queue structure — ``"heap"`` (the
            reference oracle) or ``"wheel"`` (the timing wheel; use it
            for large populations).  Both fire events in exactly the
            same order, so the choice never affects results — only
            wall-clock (see :mod:`repro.sim.wheel`).
        observe: optional :class:`~repro.observe.plan.ObservationPlan`
            attaching query-span recording and/or a shared metrics
            registry.  ``None`` or a no-op plan builds no observers and
            keeps the exact pre-observability code path; an enabled plan
            must *still* leave the trace digest bit-identical —
            observation never perturbs the simulation (the invisibility
            contract, asserted by the determinism suite).
        scenarios: optional
            :class:`~repro.resilience.scenarios.ScenarioPlan` of
            correlated trouble — churn storms (mass departures) and
            flash crowds (query-arrival surges).  ``None`` or an all-noop
            plan builds no driver and reproduces the scenario-free trace
            digest bit-for-bit; an active plan draws only from the
            ``scenario:*`` substream.
        resilience: optional
            :class:`~repro.resilience.policy.ResiliencePolicy` arming
            per-peer graceful degradation (link-cache circuit breakers,
            retry-token budgets, graded load shedding).  ``None`` or an
            all-off policy is normalized away and keeps every pre-existing
            code path.
        satisfaction_window: width in seconds of the collector's
            satisfaction-tracking windows (feeds the time-to-recovery
            metric); ``None`` disables the channel.
        gossip: optional :class:`~repro.baselines.gossip.GossipPlan`
            arming gossip-assisted GUESS — every successful maintenance
            ping's pong harvest is additionally pushed epidemically to
            ``fanout`` link-cache contacts per hop for ``ttl`` hops.
            ``None`` or a no-op plan (``fanout=0`` or ``ttl=0``) builds
            no relay and reproduces the gossip-free trace digest
            bit-for-bit; an armed relay draws only from the
            ``gossip:*`` substreams.
        freshness: optional :class:`~repro.freshness.plan.FreshnessPlan`
            arming controlled cache-update propagation — departing (and
            breaker-tripped overloaded) peers push ``CacheUpdate``
            notices along interest paths so stale pointers are purged or
            demoted before they cost a dead probe — and heterogeneous,
            capacity-proportional per-peer link-cache sizing.  ``None``
            or a no-op plan builds no mediator and reproduces the
            freshness-free trace digest bit-for-bit; an armed mediator
            draws only from the ``freshness:*`` substreams.

    Example::

        sim = GuessSimulation(SystemParams(), ProtocolParams(), seed=7)
        sim.run(1800.0)
        report = sim.report()
        print(report.probes_per_query, report.unsatisfied_rate)
    """

    def __init__(
        self,
        system: SystemParams,
        protocol: ProtocolParams,
        *,
        seed: int = 0,
        warmup: float = 0.0,
        content: Optional[ContentModel] = None,
        lifetime_model: Optional[LifetimeModel] = None,
        file_model: Optional[FileCountModel] = None,
        keep_queries: bool = False,
        health_sample_interval: Optional[float] = DEFAULT_HEALTH_SAMPLE_INTERVAL,
        latency=None,
        faults: Optional[FaultPlan] = None,
        trace_hash: bool = False,
        scheduler: str = "heap",
        observe: Optional[ObservationPlan] = None,
        scenarios: Optional[ScenarioPlan] = None,
        resilience: Optional[ResiliencePolicy] = None,
        satisfaction_window: Optional[float] = None,
        gossip: Optional[GossipPlan] = None,
        freshness: Optional[FreshnessPlan] = None,
    ) -> None:
        self.system = system
        self.protocol = protocol.normalized()
        self.engine = Simulator(trace_hash=trace_hash, scheduler=scheduler)
        self.rng = RngRegistry(seed)
        self.faults = FaultInjector.from_plan(faults, self.rng)
        # Both follow the from_plan -> None invisibility contract: a
        # missing/no-op plan leaves the hot paths branch-free.
        self.scenario = ScenarioDriver.from_plan(scenarios, self.rng)
        self.resilience = ResiliencePolicy.normalize(resilience)
        # None for a missing/no-op plan (fanout=0 or ttl=0): the ping
        # success path then carries no gossip branch at all, and the
        # gossip:* substreams are never instantiated.
        self.gossip = GossipRelay.from_plan(gossip, self.rng)
        # None for a missing/no-op plan: uniform cache sizes, no
        # departure notices, and the freshness:* substreams are never
        # instantiated (the same from_plan -> None contract).
        self.freshness = FreshnessMediator.from_plan(freshness, self.rng)
        # None for a missing/no-op plan: the hot paths below then carry
        # no observer branches at all (the from_plan -> None contract).
        self.observation = Observation.from_plan(observe)
        self._span_recorder = (
            self.observation.spans if self.observation is not None else None
        )
        shared_registry = (
            self.observation.registry if self.observation is not None else None
        )
        self.transport = Transport(
            timeout=self.protocol.probe_spacing,
            latency=latency,
            faults=self.faults,
            metrics=shared_registry,
        )
        # None when probe_retries == 0: the ping path then takes the
        # exact single-send code path (no wrapper, no extra floats).
        self._retry = (
            RetryPolicy.from_protocol(self.protocol)
            if self.protocol.probe_retries > 0
            else None
        )
        self.collector = MetricsCollector(
            warmup=warmup,
            keep_queries=keep_queries,
            registry=shared_registry,
            satisfaction_window=satisfaction_window,
        )
        self.content = content or ContentModel()
        self.lifetimes = lifetime_model or LifetimeModel(
            multiplier=system.lifespan_multiplier
        )
        self.files = file_model or FileCountModel()
        self.policies = PolicySet.from_protocol(self.protocol)
        self.bursts = QueryBurstProcess(query_rate=system.query_rate)
        self.cache_seed_size = min(
            default_cache_seed_size(system.network_size),
            self.protocol.cache_size,
        )
        self._allocator = AddressAllocator()
        ghosts = self._allocator.allocate_many(GHOST_ADDRESS_COUNT)
        self.directory = AttackDirectory(ghost_addresses=ghosts)
        # Struct-of-arrays peer registry: the live-peer object map plus
        # scalar columns (alive/role/harvested flags, file counts,
        # capacities) indexed by dense address — the hot membership
        # checks below are bytearray loads, not dict/set hashing.
        self._store = PeerStore(reserve=GHOST_ADDRESS_COUNT)
        self._health_interval = health_sample_interval
        self._reported = False
        self._bootstrap()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.engine.now

    @property
    def trace_digest(self) -> Optional[str]:
        """Executed-event digest (None unless ``trace_hash=True``)."""
        return self.engine.trace_digest

    @property
    def span_recorder(self):
        """The attached :class:`~repro.observe.spans.SpanRecorder`, or None."""
        return self._span_recorder

    @property
    def metrics_registry(self):
        """The shared observability registry, or None when not observed."""
        return self.observation.registry if self.observation is not None else None

    @property
    def store(self) -> PeerStore:
        """The struct-of-arrays peer registry."""
        return self._store

    @property
    def live_peers(self) -> List[GuessPeer]:
        """All currently live peers."""
        return self._store.live_peers()

    @property
    def live_good_peers(self) -> List[GuessPeer]:
        """Currently live protocol-following peers."""
        return [p for p in self._store.values() if not p.malicious]

    def peer(self, address: Address) -> Optional[GuessPeer]:
        """The live peer at ``address``, or None."""
        return self._store.get(address)

    # ------------------------------------------------------------------
    # Bootstrap
    # ------------------------------------------------------------------

    def _bootstrap(self) -> None:
        """Create the initial population and seed every link cache."""
        n = self.system.network_size
        bad_count = round(self.system.bad_peer_fraction * n)
        faulty_count = round(self.system.faulty_reporter_fraction * n)
        # Three-valued roles: 2 = malicious, 1 = faulty reporter, 0 = good.
        # The shuffle's draw count depends only on the list length, so a
        # faulty_count of zero leaves the "churn" stream — and the trace
        # digest — exactly as the old two-valued spelling did.
        roles = (
            [2] * bad_count
            + [1] * faulty_count
            + [0] * (n - bad_count - faulty_count)
        )
        self.rng.stream("churn").shuffle(roles)
        peers = [
            self._spawn_peer(0.0, malicious=role == 2, faulty=role == 1)
            for role in roles
        ]

        # Seed each cache with CacheSeedSize random living peers.
        topology_rng = self.rng.stream("topology")
        addresses = [p.address for p in peers]
        for peer in peers:
            k = min(self.cache_seed_size, n - 1)
            picked: set[Address] = set()
            while len(picked) < k:
                candidate = addresses[topology_rng.randrange(n)]
                if candidate != peer.address:
                    picked.add(candidate)
            # Sorted so cache contents (hence ping-target order) never
            # depend on set iteration order.
            for address in sorted(picked):
                target = self._store.get(address)
                assert target is not None  # seeded from the live roster
                entry = CacheEntry(
                    address=address,
                    ts=0.0,
                    num_files=target.num_files,
                    num_res=0,
                )
                peer.link_cache.insert(
                    entry,
                    self.policies.replacement,
                    0.0,
                    self.rng.stream("policies"),
                )

        if self._health_interval is not None:
            self.engine.schedule(
                self._health_interval,
                self._sample_health,
                priority=EventPriority.METRICS,
                label="health-sample",
            )

        if self.scenario is not None:
            for storm in self.scenario.storms:
                self.engine.schedule(
                    storm.start,
                    self._churn_storm,
                    priority=EventPriority.DEATH,
                    label="storm",
                    args=(storm,),
                )

    # ------------------------------------------------------------------
    # Peer lifecycle
    # ------------------------------------------------------------------

    def _spawn_peer(
        self,
        now: float,
        malicious: bool,
        faulty: bool = False,
        friend: Optional[GuessPeer] = None,
        is_rebirth: bool = False,
    ) -> GuessPeer:
        """Create, register, and schedule one peer.

        Args:
            now: birth time.
            malicious: whether the newborn is a cache-poisoning attacker.
            faulty: whether the newborn is a faulty reporter (mutually
                exclusive with ``malicious``); it draws exactly like a
                good peer — real library, real lifetime — so arming the
                role changes no stream's draw count.
            friend: live peer whose cache the newborn copies (random
                friend seeding); None for the initial population, which
                is seeded separately.
            is_rebirth: True for churn replacements; only these count in
                the births metric (the bootstrap population is not churn).
        """
        address = self._allocator.allocate()
        num_files = self.files.sample(self.rng.stream("files"))
        library = (
            frozenset()
            if malicious
            else self.content.build_library(self.rng.stream("content"), num_files)
        )
        lifetime = self.lifetimes.sample(self.rng.stream("lifetimes"))
        cache_capacity = (
            self.freshness.cache_capacity(self.protocol.cache_size, num_files)
            if self.freshness is not None
            else None
        )
        common = dict(
            num_files=num_files,
            library=library,
            birth_time=now,
            death_time=now + lifetime,
            protocol=self.protocol,
            policies=self.policies,
            max_probes_per_second=self.system.max_probes_per_second,
            policy_rng=self.rng.stream("policies"),
            intro_rng=self.rng.stream("intro"),
            resilience=self.resilience,
            cache_capacity=cache_capacity,
        )
        if malicious:
            peer = MaliciousPeer(
                address,
                behavior=self.system.bad_pong_behavior,
                directory=self.directory,
                attack_rng=self.rng.stream("malicious"),
                **common,
            )
        elif faulty:
            peer = FaultyReporter(
                address,
                report_mode=self.system.faulty_reporter_mode,
                report_offset=self.system.faulty_report_offset,
                **common,
            )
        else:
            peer = GuessPeer(address, **common)

        self._store.add(peer)
        self.transport.register(address, peer)
        self.directory.record_birth(address, malicious)
        if is_rebirth:
            self.collector.record_birth(now)

        if friend is not None:
            self._seed_from_friend(peer, friend, now)

        self.engine.schedule(
            peer.death_time,
            self._on_death,
            priority=EventPriority.DEATH,
            label="death",
            args=(peer,),
        )
        # De-synchronise ping phases so capacity windows see smooth load.
        phase = self.rng.stream("phases").random() * self.protocol.ping_interval
        self.engine.schedule(
            now + phase,
            self._ping_cycle,
            priority=EventPriority.PROTOCOL,
            label="ping",
            args=(peer,),
        )
        if not malicious and self.system.query_rate > 0:
            delay = self.bursts.next_burst_delay(self.rng.stream("queries"))
            if self.scenario is not None:
                delay = self.scenario.warp_delay(now, delay)
            self.engine.schedule(
                now + delay,
                self._query_burst,
                priority=EventPriority.QUERY,
                label="burst",
                args=(peer,),
            )
        return peer

    def _seed_from_friend(
        self, newborn: GuessPeer, friend: GuessPeer, now: float
    ) -> None:
        """Random-friend seeding: copy the friend's cache, plus the friend."""
        policy_rng = self.rng.stream("policies")
        reset = self.policies.reset_num_results
        friend_entry = CacheEntry(
            address=friend.address,
            ts=now,
            num_files=friend.num_files,
            num_res=0,
            born=now,
        )
        newborn.link_cache.insert(
            friend_entry, self.policies.replacement, now, policy_rng
        )
        for entry in friend.link_cache.entries():
            newborn.link_cache.insert(
                entry.copy_for_import(reset, now),
                self.policies.replacement,
                now,
                policy_rng,
            )

    def _on_death(self, peer: GuessPeer) -> None:
        """Depart silently; a replacement is born in the same instant."""
        now = self.engine.now
        address = peer.address
        if self._store.remove(address) is None:  # already handled (defensive)
            return
        self.transport.unregister(address, time=now)
        self.directory.record_death(address)
        self.collector.record_death(now)
        self._harvest(peer)
        if self.freshness is not None and self.freshness.plan.invalidates:
            self._notify_departure(peer, now)

        # Rebirth keeps the live population at NetworkSize.  The newborn's
        # role is a coin flip, keeping PercentBadPeers (and
        # PercentFaultyReporters) stationary.  One roll decides both
        # roles so arming faulty reporters never adds a "churn" draw —
        # the digest-stability contract the bootstrap shuffle also keeps.
        roll = self.rng.stream("churn").random()
        bad_fraction = self.system.bad_peer_fraction
        malicious = roll < bad_fraction
        faulty = (not malicious) and roll < (
            bad_fraction + self.system.faulty_reporter_fraction
        )
        friend = self._pick_friend()
        self.engine.schedule(
            now,
            self._spawn_peer,
            priority=EventPriority.BIRTH,
            label="birth",
            args=(now, malicious, faulty, friend, True),
        )

    def _churn_storm(self, storm: ChurnStorm) -> None:
        """Onset of one churn storm: pick victims, schedule departures.

        Victims are sampled from the live roster (whose order is the
        store's deterministic insertion order) on the ``scenario:churn``
        substream and each gets a forced-death event at a uniform offset
        inside the storm window.  Only scheduled for enabled storms, so
        a noop plan never reaches this path.
        """
        now = self.engine.now
        live = self._store.live_peers()
        assert self.scenario is not None  # storms only exist with a driver
        for index, offset in self.scenario.draw_departures(storm, len(live)):
            self.engine.schedule(
                now + offset,
                self._storm_death,
                priority=EventPriority.DEATH,
                label="storm-death",
                args=(live[index],),
            )

    def _storm_death(self, peer: GuessPeer) -> None:
        """Force one storm victim to depart now.

        The victim goes through the ordinary death path (harvest, same-
        instant rebirth), so the population invariant holds — the storm's
        damage is the *staleness* it leaves in every cache that pointed
        at the victims.  A victim that already died naturally before its
        storm offset is skipped; its pre-scheduled natural-death event
        later no-ops through ``_on_death``'s defensive store check.
        """
        now = self.engine.now
        if not peer.is_alive(now):
            return
        peer.death_time = now
        self._on_death(peer)

    def _pick_friend(self) -> Optional[GuessPeer]:
        """One uniformly random live peer (the newborn's "friend").

        The store's live index mirrors the peer map's insertion order,
        so the k-th live address equals ``list(peers.keys())[k]``
        without the O(n) list rebuild — same RNG draw, same friend,
        same digest.
        """
        count = len(self._store)
        if not count:
            return None
        k = self.rng.stream("topology").randrange(count)
        return self._store.kth_live(k)

    def _harvest(self, peer: GuessPeer) -> None:
        """Absorb a peer's lifetime counters exactly once."""
        if not self._store.mark_harvested(peer.address):
            return
        self.collector.harvest_peer(
            peer.address,
            peer.probes_received,
            peer.probes_refused,
            peer.pings_shed,
        )

    # ------------------------------------------------------------------
    # Maintenance pings
    # ------------------------------------------------------------------

    def _ping_cycle(self, peer: GuessPeer) -> None:
        """Ping one entry, then reschedule (stops when the peer is dead)."""
        now = self.engine.now
        if not peer.is_alive(now):
            return
        self._do_ping(peer, now)
        self.engine.schedule_after(
            self.protocol.ping_interval,
            self._ping_cycle,
            priority=EventPriority.PROTOCOL,
            label="ping",
            args=(peer,),
        )

    def _do_ping(self, peer: GuessPeer, now: float) -> None:
        """One maintenance ping per Section 2.2.

        With ``probe_retries > 0`` a timed-out ping is re-sent per the
        retry policy before the entry is declared dead — over a lossy
        wire this is what separates corpse collection from wrongful
        eviction of live neighbours.
        """
        entry = peer.choose_ping_target(now)
        if entry is None:
            return
        breakers = peer.breakers
        if breakers is not None and not breakers.allow(entry.address, now):
            # Open breaker: spare the overloaded target this ping and
            # keep the entry cached for the half-open trial later.
            self.collector.record_suppressed_ping(now)
            return
        if self._retry is None:
            outcome = self.transport.probe(
                peer.address, entry.address, peer.ping_message(), now
            )
            retries = 0
            recovered = False
            denied = False
        else:
            attempt = probe_with_retry(
                self.transport,
                self._retry,
                peer.address,
                entry.address,
                peer.ping_message(),
                now,
                peer.retry_budget,
            )
            outcome = attempt.outcome
            retries = attempt.retries
            recovered = attempt.recovered
            denied = attempt.denied
        if outcome.status is ProbeStatus.TIMEOUT:
            evicted = peer.link_cache.evict(entry.address)
            if breakers is not None:
                breakers.discard(entry.address)
            # Omniscient fresh-vs-stale split: stale means the pointer
            # was acquired before its target departed (preventable by
            # push invalidation); dead-on-arrival imports and ghost
            # addresses count as fresh (no notice could have helped).
            departed_at = self.transport.departure_time(entry.address)
            self.collector.record_ping(
                dead=True,
                time=now,
                spurious=outcome.spurious,
                retries=retries,
                wrongful=outcome.spurious and evicted,
                dead_evicted=evicted,
                denied=denied,
                stale=departed_at is not None and entry.born < departed_at,
            )
            return
        if outcome.status is ProbeStatus.REFUSED:
            refusal_evicted = False
            if breakers is not None:
                # The breaker substitutes for refusal eviction: the
                # entry stays cached, probes stop once it trips.
                breakers.record_refusal(entry.address, now)
                if (
                    self.freshness is not None
                    and self.freshness.plan.on_overload
                    and self.freshness.plan.invalidates
                    and breakers.state_of(entry.address) == OPEN
                ):
                    # The refusal just tripped the breaker: the prober
                    # spreads the overload verdict so other holders
                    # demote (or purge) their pointer before paying
                    # their own refusals.
                    self.engine.schedule(
                        now + self.freshness.plan.notify_delay,
                        self._invalidation_hop,
                        priority=EventPriority.PROTOCOL,
                        label="freshness",
                        args=(
                            peer.address,
                            entry.address,
                            self.freshness.plan.depth,
                            {peer.address, entry.address},
                            False,
                        ),
                    )
            elif not self.protocol.do_backoff:
                refusal_evicted = peer.link_cache.evict(entry.address)
            self.collector.record_ping(
                dead=False,
                time=now,
                retries=retries,
                recovered=recovered,
                refusal_evicted=refusal_evicted,
                denied=denied,
            )
            return
        if breakers is not None:
            breakers.record_success(entry.address)
        peer.link_cache.touch(entry.address, now)
        peer.import_pong_to_link_cache(outcome.response, now)
        self.collector.record_ping(
            dead=False, time=now, retries=retries, recovered=recovered,
            denied=denied,
        )
        if self.gossip is not None and outcome.response.entries:
            self._seed_rumor(peer, outcome.response, now)

    # ------------------------------------------------------------------
    # Gossip-assisted dissemination (repro.baselines.gossip)
    # ------------------------------------------------------------------

    def _seed_rumor(self, carrier: GuessPeer, pong, now: float) -> None:
        """Start one epidemic rumor from a freshly harvested pong.

        The probing peer becomes the rumor's origin/first carrier; the
        first hop fires ``hop_delay`` later so dissemination rides the
        engine (both schedulers, the fault layer, and receiver rate
        limits all apply).  The per-rumor ``seen`` set is shared through
        event args — events fire deterministically, so the mutation
        order (hence every target choice) is reproducible.
        """
        relay = self.gossip
        assert relay is not None  # guarded at the call site
        self.collector.record_gossip_rumor(now)
        seen = {carrier.address, pong.sender}
        self.engine.schedule(
            now + relay.plan.hop_delay,
            self._gossip_hop,
            priority=EventPriority.PROTOCOL,
            label="gossip",
            args=(carrier.address, carrier.address, pong.entries, relay.plan.ttl, seen),
        )

    def _gossip_hop(
        self,
        carrier_address: Address,
        origin: Address,
        entries,
        ttl: int,
        seen: set,
    ) -> None:
        """Push the rumor from one carrier to up to ``fanout`` fresh contacts.

        Delivered pushes import entries at the receiver (attributed to
        the rumor's origin) and — while ``ttl`` lasts — make the
        receiver the next hop's carrier.  Malicious peers and
        suppress-mode faulty reporters accept rumors but never relay
        them (the suppression is counted).  A carrier that died before
        its hop fired drops the rumor, exactly like a lost packet.
        """
        now = self.engine.now
        carrier = self._store.get(carrier_address)
        if carrier is None or not carrier.is_alive(now):
            return
        relay = self.gossip
        assert relay is not None  # hops are only scheduled when armed
        targets = relay.pick_targets(
            [entry.address for entry in carrier.link_cache.entries()], seen
        )
        if not targets:
            return
        message = GossipPush(
            sender=carrier_address, origin=origin, entries=entries, ttl=ttl
        )
        for target_address in targets:
            seen.add(target_address)
            outcome = self.transport.probe(
                carrier_address, target_address, message, now
            )
            if outcome.status is ProbeStatus.DELIVERED:
                self.collector.record_gossip_push(
                    now, delivered=True, imported=outcome.response.imported
                )
                if ttl <= 1:
                    continue
                target = self._store.get(target_address)
                if target is None:
                    continue
                if target.malicious or target.suppresses_gossip:
                    self.collector.record_gossip_suppressed_forward(now)
                    continue
                self.engine.schedule(
                    now + relay.plan.hop_delay,
                    self._gossip_hop,
                    priority=EventPriority.PROTOCOL,
                    label="gossip",
                    args=(target_address, origin, entries, ttl - 1, seen),
                )
            else:
                self.collector.record_gossip_push(
                    now,
                    delivered=False,
                    refused=outcome.status is ProbeStatus.REFUSED,
                )

    # ------------------------------------------------------------------
    # Push invalidation (repro.freshness)
    # ------------------------------------------------------------------

    def _notify_departure(self, victim: GuessPeer, now: float) -> None:
        """Hop 0 of a departure notice: the victim warns its contacts.

        The dying peer's own link cache approximates "who holds a
        pointer to me" (the introduction rule makes acquaintance roughly
        symmetric).  Up to ``notify_budget`` contacts get a
        ``CacheUpdate(departed=True)`` in the death instant — the victim
        is already unregistered, but UDP sends need no live source.
        Contacts that actually held (and purged) the stale entry forward
        the notice along the interest path while depth lasts; the dead
        victim cannot ingest the acks' refresh pongs, so hop 0 imports
        nothing.
        """
        mediator = self.freshness
        assert mediator is not None  # guarded at the call site
        subject = victim.address
        seen = {subject}
        contacts = mediator.pick_contacts(
            [entry.address for entry in victim.link_cache.entries()], seen
        )
        if not contacts:
            return
        depth = mediator.plan.depth
        message = CacheUpdate(sender=subject, subject=subject, departed=True)
        for target_address in contacts:
            seen.add(target_address)
            outcome = self.transport.probe(subject, target_address, message, now)
            if outcome.status is ProbeStatus.DELIVERED:
                ack = outcome.response
                self.collector.record_freshness_notice(
                    now, delivered=True, purged=ack.purged
                )
                if ack.purged and depth > 1:
                    self.engine.schedule(
                        now + mediator.plan.notify_delay,
                        self._invalidation_hop,
                        priority=EventPriority.PROTOCOL,
                        label="freshness",
                        args=(target_address, subject, depth - 1, seen, True),
                    )
            else:
                self.collector.record_freshness_notice(
                    now,
                    delivered=False,
                    refused=outcome.status is ProbeStatus.REFUSED,
                )

    def _invalidation_hop(
        self,
        carrier_address: Address,
        subject: Address,
        ttl: int,
        seen: set,
        departed: bool,
    ) -> None:
        """Forward a cache-update notice one interest-path hop.

        The carrier (a peer that held — and purged or demoted — the
        stale entry) warns up to ``notify_budget`` of its own contacts.
        Only receivers that also held the entry (``ack.purged``) extend
        the path, so propagation follows interest and dies out where
        nobody cached the subject.  Each delivered ack piggybacks a
        pong the live carrier ingests — the purge doubles as a refresh.
        A carrier that died before its hop fired drops the notice.
        """
        now = self.engine.now
        carrier = self._store.get(carrier_address)
        if carrier is None or not carrier.is_alive(now):
            return
        mediator = self.freshness
        assert mediator is not None  # hops are only scheduled when armed
        contacts = mediator.pick_contacts(
            [entry.address for entry in carrier.link_cache.entries()], seen
        )
        if not contacts:
            return
        message = CacheUpdate(
            sender=carrier_address, subject=subject, departed=departed
        )
        for target_address in contacts:
            seen.add(target_address)
            outcome = self.transport.probe(
                carrier_address, target_address, message, now
            )
            if outcome.status is ProbeStatus.DELIVERED:
                ack = outcome.response
                self.collector.record_freshness_notice(
                    now, delivered=True, purged=ack.purged
                )
                if ack.pong.entries:
                    imported = carrier.import_pong_to_link_cache(ack.pong, now)
                    self.collector.record_freshness_refresh(now, imported)
                if ack.purged and ttl > 1:
                    self.engine.schedule(
                        now + mediator.plan.notify_delay,
                        self._invalidation_hop,
                        priority=EventPriority.PROTOCOL,
                        label="freshness",
                        args=(target_address, subject, ttl - 1, seen, departed),
                    )
            else:
                self.collector.record_freshness_notice(
                    now,
                    delivered=False,
                    refused=outcome.status is ProbeStatus.REFUSED,
                )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _query_burst(self, peer: GuessPeer) -> None:
        """Execute one burst of queries, then schedule the next burst."""
        now = self.engine.now
        if not peer.is_alive(now):
            return
        queries_rng = self.rng.stream("queries")
        size = self.bursts.burst_size(queries_rng)
        recorder = self._span_recorder
        cursor = now
        for _ in range(size):
            target = self.content.draw_query_target(queries_rng)
            span = (
                recorder.begin(peer.address, target, cursor)
                if recorder is not None
                else None
            )
            # With gossip armed, delivered query-reply pongs seed rumors
            # too (not just ping harvests); None keeps the query loop
            # append-free so the gossip-off digest is untouched.
            harvests: Optional[List] = [] if self.gossip is not None else None
            result = execute_query(
                peer,
                target,
                self.transport,
                cursor,
                rng=self.rng.stream("policies"),
                desired_results=self.system.num_desired_results,
                span=span,
                harvests=harvests,
            )
            if span is not None:
                recorder.finish(span, result)
            self.collector.record_query(result, cursor)
            if harvests:
                for pong in harvests:
                    self._seed_rumor(peer, pong, cursor)
            cursor += result.duration
        delay = self.bursts.next_burst_delay(queries_rng)
        if self.scenario is not None:
            delay = self.scenario.warp_delay(now, delay)
        if delay != float("inf"):
            self.engine.schedule_after(
                delay,
                self._query_burst,
                priority=EventPriority.QUERY,
                label="burst",
                args=(peer,),
            )

    # ------------------------------------------------------------------
    # Health sampling
    # ------------------------------------------------------------------

    def _sample_health(self) -> None:
        """Average link-cache health over live good peers, then reschedule.

        Accumulates running sums in iteration order (no per-peer entry
        list copies, no intermediate per-peer lists), which keeps every
        float operation — and hence the sampled values — bit-identical to
        the old list-then-``sum`` spelling.
        """
        now = self.engine.now
        # SoA columns: liveness/role per cache entry is a bytearray load
        # on the dense address, not a dict/set hash probe.  A live
        # address is in ``live_malicious`` exactly when its (immutable)
        # role column says malicious, so the counts — and the digest —
        # are unchanged.
        alive = self._store.alive_column
        mal = self._store.malicious_column
        fraction_sum = 0.0
        fraction_n = 0
        absolute_sum = 0.0
        good_sum = 0.0
        fill_sum = 0.0
        sampled = 0
        for peer in self._store.values():
            if peer.malicious:
                continue
            sampled += 1
            cache = peer.link_cache
            size = len(cache)
            if not size:
                continue  # contributes 0.0 to every sum but fraction's n
            live_count = 0
            good_count = 0
            for entry in cache.iter_entries():
                address = entry.address
                if alive[address]:
                    live_count += 1
                    if not mal[address]:
                        good_count += 1
            fill_sum += float(size)
            fraction_sum += live_count / size
            fraction_n += 1
            absolute_sum += float(live_count)
            good_sum += float(good_count)
        sample = CacheHealthSample(
            time=now,
            fraction_live=fraction_sum / fraction_n if fraction_n else 0.0,
            absolute_live=absolute_sum / sampled if sampled else 0.0,
            good_entries=good_sum / sampled if sampled else 0.0,
            cache_fill=fill_sum / sampled if sampled else 0.0,
        )
        self.collector.record_health_sample(sample)
        if self._health_interval is not None:
            self.engine.schedule_after(
                self._health_interval,
                self._sample_health,
                priority=EventPriority.METRICS,
                label="health-sample",
            )

    # ------------------------------------------------------------------
    # Driving and reporting
    # ------------------------------------------------------------------

    def run(self, duration: float) -> None:
        """Advance the simulation by ``duration`` seconds."""
        if duration < 0:
            raise SimulationError(f"duration must be >= 0, got {duration}")
        self.engine.run_until(self.engine.now + duration)

    def report(self) -> SimulationReport:
        """Freeze and return the run's metrics.

        Harvests the lifetime counters of still-live peers; callable once
        per simulation (a second call would double-harvest).
        """
        if self._reported:
            raise SimulationError("report() may only be called once per run")
        self._reported = True
        registry = self.metrics_registry
        if registry is not None:
            # Scheduler hygiene telemetry (satisfies the invisibility
            # contract trivially: gauges are read-and-set after the run).
            registry.gauge("engine_pending").set(self.engine.pending)
            registry.gauge("engine_tombstones").set(self.engine.tombstones)
            registry.gauge("engine_cancelled_ratio").set(
                self.engine.cancelled_ratio
            )
            registry.gauge("engine_compactions").set(self.engine.compactions)
        for peer in self._store.values():
            self._harvest(peer)
        self.collector.record_transport(
            probes_sent=self.transport.probes_sent,
            timeouts=self.transport.timeouts,
            refusals=self.transport.refusals,
            spurious_timeouts=self.transport.spurious_timeouts,
        )
        return self.collector.build_report(trace_digest=self.trace_digest)

    def snapshot_overlay(self) -> OverlaySnapshot:
        """The conceptual overlay among currently live peers."""
        live = set(self._store.addresses())
        contents = {
            peer.address: list(peer.link_cache.addresses())
            for peer in self._store.values()
        }
        return OverlaySnapshot.from_caches(live, contents)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GuessSimulation(n={self.system.network_size}, "
            f"t={self.engine.now:.0f}s, live={len(self._store)})"
        )
