"""Malicious peers (paper Sections 3.3 and 6.4).

A malicious peer's goal is to make the system unusable by **poisoning**
good peers' link caches through the Pong mechanism:

* it never returns query results;
* its pong entries are fabricated according to ``BadPongBehavior``:

  - ``DEAD``: addresses of departed peers (non-colluding attack) — every
    probe to them is wasted, and they dilute the cache;
  - ``BAD``: addresses of *other malicious peers* (colluding attack) —
    probed, they inject yet more bad entries, so bad entries enter caches
    faster than MR can evict them (the paper's key collusion result);
  - ``GOOD``: addresses of good peers (a camouflage control case);

* fabricated entries carry inflated ``NumFiles``/``NumRes`` so that the
  trusting MFS and (pong-carried) MR rankings prefer them — the paper's
  explanation for why MFS collapses and MR* survives.

Malicious peers are *passive* attackers here, as in the paper's model:
they respond to probes but originate no pings or queries of their own
(Section 6.4 describes them purely through their responses).

A second, milder adversary lives alongside them: the
:class:`FaultyReporter` (à la Consenzus), a peer with a *real* library
that follows the protocol except for misreporting query result counts —
inflating them by a fixed offset or suppressing them entirely (and, in
suppress mode, refusing to relay gossip rumors).  Replies carry the
omniscient ``true_results`` field so metrics can keep an honest
satisfaction channel next to the perceived one.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.core.entry import CacheEntry
from repro.core.messages import Pong, Query, QueryReply
from repro.core.params import BadPongBehavior
from repro.core.peer import GuessPeer
from repro.network.address import Address

#: Advertised library size: above the honest distribution's upper bound
#: (50k), so MFS always prefers a poisoned entry to any honest one.
FAKE_NUM_FILES = 60_000

#: Advertised past-results count carried on fabricated entries; large
#: enough that pong-trusting MR ranks them first.
FAKE_NUM_RES = 25


class AttackDirectory:
    """Shared intelligence the attacker coalition draws on.

    The simulation maintains one directory: the list of departed
    addresses (for ``DEAD`` pongs), the live malicious roster (for
    ``BAD`` pongs), the live good roster (for ``GOOD`` pongs), and a pool
    of "ghost" addresses that were never registered — used to fabricate
    dead targets before any real peer has died.
    """

    def __init__(self, ghost_addresses: Sequence[Address] = ()) -> None:
        self.dead_addresses: List[Address] = []
        self.live_malicious: set[Address] = set()
        self.live_good: set[Address] = set()
        self._ghosts: List[Address] = list(ghost_addresses)

    def record_death(self, address: Address) -> None:
        """A peer departed; its address is now poison material."""
        self.dead_addresses.append(address)
        self.live_malicious.discard(address)
        self.live_good.discard(address)

    def record_birth(self, address: Address, malicious: bool) -> None:
        """Register a newborn in the appropriate roster."""
        if malicious:
            self.live_malicious.add(address)
        else:
            self.live_good.add(address)

    def sample_dead(self, rng: random.Random, k: int) -> List[Address]:
        """Up to ``k`` dead addresses, padded with ghosts when churn is young."""
        if k <= 0:
            return []
        pool = self.dead_addresses
        picks: List[Address] = []
        if pool:
            for _ in range(k):
                picks.append(pool[rng.randrange(len(pool))])
        else:
            ghosts = self._ghosts
            if ghosts:
                for _ in range(k):
                    picks.append(ghosts[rng.randrange(len(ghosts))])
        return picks

    def sample_malicious(
        self, rng: random.Random, k: int, exclude: Address
    ) -> List[Address]:
        """Up to ``k`` live malicious addresses other than ``exclude``."""
        if k <= 0:
            return []
        # Sort the roster before sampling: the draw (and the pong entry
        # order when k >= len(pool)) must not depend on set iteration order.
        pool = [a for a in sorted(self.live_malicious) if a != exclude]
        if not pool:
            return []
        if k >= len(pool):
            return list(pool)
        return rng.sample(pool, k)

    def sample_good(self, rng: random.Random, k: int) -> List[Address]:
        """Up to ``k`` live good addresses."""
        if k <= 0 or not self.live_good:
            return []
        pool = sorted(self.live_good)
        if k >= len(pool):
            return pool
        return rng.sample(pool, k)


class MaliciousPeer(GuessPeer):
    """A cache-poisoning peer.

    Same constructor as :class:`GuessPeer` plus the attack wiring; it
    advertises :data:`FAKE_NUM_FILES` regardless of the (empty) library
    it actually holds, shares no files, and fabricates every pong.

    Args:
        behavior: what goes into its pongs (Table 1 ``BadPongBehavior``).
        directory: the shared :class:`AttackDirectory`.
        attack_rng: stream for fabrication randomness.
    """

    malicious = True

    __slots__ = ("behavior", "_directory", "_attack_rng")

    def __init__(
        self,
        *args,
        behavior: BadPongBehavior,
        directory: AttackDirectory,
        attack_rng: random.Random,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.behavior = behavior
        self._directory = directory
        self._attack_rng = attack_rng
        # The lie: advertise a huge library no matter what we hold.
        self.num_files = FAKE_NUM_FILES
        self.library = frozenset()

    def make_pong(self, pong_policy, time: float) -> Pong:
        """Fabricate a poisoned pong (ignores the cache and the policy)."""
        del pong_policy  # malicious peers do not consult real caches
        k = self.protocol.pong_size
        rng = self._attack_rng
        if self.behavior is BadPongBehavior.DEAD:
            addresses = self._directory.sample_dead(rng, k)
        elif self.behavior is BadPongBehavior.BAD:
            addresses = self._directory.sample_malicious(
                rng, k, exclude=self.address
            )
        else:
            addresses = self._directory.sample_good(rng, k)
        entries = tuple(
            CacheEntry(
                address=address,
                ts=time,
                num_files=FAKE_NUM_FILES,
                num_res=FAKE_NUM_RES,
            )
            for address in addresses
        )
        return Pong(sender=self.address, entries=entries)

    def _handle_query(self, message, time: float):
        """Answer with zero results and a poisoned pong (Section 6.4)."""
        self.queries_received += 1
        reply = super()._handle_query(message, time)
        # super() counted a match against our (empty) library: force zero
        # results explicitly for clarity and future-proofing.
        if reply.num_results:
            raise AssertionError("malicious peers must not return results")
        return reply


class FaultyReporter(GuessPeer):
    """A protocol-following peer that lies about result counts.

    Same constructor as :class:`GuessPeer` plus the misreporting knobs.
    Unlike :class:`MaliciousPeer` it holds a real library, serves honest
    pongs, pings, and queries of its own — only the ``num_results`` claim
    in its query replies is falsified:

    * ``"inflate"``: claim ``true + report_offset`` results, so even a
      peer with no match advertises hits (and the inflated claim feeds
      the trusting MR ranking at the prober);
    * ``"suppress"``: claim zero results and refuse to relay gossip
      rumors (:attr:`suppresses_gossip`).

    Every falsified reply carries ``true_results`` so collectors can
    account satisfaction honestly while ``results_per_query`` shows the
    perceived (inflated/deflated) count.

    Args:
        report_mode: ``"inflate"`` or ``"suppress"``.
        report_offset: results added per reply in inflate mode.
    """

    faulty = True

    __slots__ = ("report_mode", "report_offset", "suppresses_gossip")

    def __init__(
        self,
        *args,
        report_mode: str = "inflate",
        report_offset: int = 3,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if report_mode not in ("inflate", "suppress"):
            raise ValueError(
                f"report_mode must be 'inflate' or 'suppress', "
                f"got {report_mode!r}"
            )
        if report_offset < 1:
            raise ValueError(
                f"report_offset must be >= 1, got {report_offset}"
            )
        self.report_mode = report_mode
        self.report_offset = int(report_offset)
        self.suppresses_gossip = report_mode == "suppress"

    def _handle_query(self, message: Query, time: float) -> QueryReply:
        """The honest reply, with the claim falsified per the mode."""
        reply = super()._handle_query(message, time)
        true_results = reply.num_results
        if self.report_mode == "inflate":
            claimed = true_results + self.report_offset
        else:
            claimed = 0
        if claimed == true_results:
            return reply  # suppressing a zero is not a lie
        return QueryReply(
            sender=reply.sender,
            num_results=claimed,
            pong=reply.pong,
            true_results=true_results,
        )
