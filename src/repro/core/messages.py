"""GUESS wire messages.

Four message kinds cover the protocol (paper Section 2):

* :class:`Ping` — link-cache maintenance probe.
* :class:`Query` — a search probe carrying the target descriptor.
* :class:`Pong` — the reply to a Ping, and also piggybacked on every
  query reply; carries copied cache entries for sharing.
* :class:`QueryReply` — results count plus the piggybacked Pong.

Every probe carries the sender's address and advertised file count so the
receiver can apply the introduction rule (add the prober to its own cache
with probability ``IntroProb``) without a separate handshake.

The gossip-assisted GUESS hybrid (:mod:`repro.baselines.gossip`) adds a
fifth exchange: :class:`GossipPush` carries an epidemically disseminated
pong harvest and is answered by a :class:`GossipAck`.

The freshness layer (:mod:`repro.freshness`) adds a sixth:
:class:`CacheUpdate` carries a CUP-style push-invalidation notice about
a departed (or overloaded) address and is answered by a
:class:`CacheUpdateAck` whose piggybacked Pong offers replacement
candidates — a purge is also a refresh opportunity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.entry import CacheEntry
from repro.network.address import Address


@dataclass(frozen=True, slots=True)
class Ping:
    """Maintenance probe: "are you alive, and who do you know?"."""

    sender: Address
    sender_num_files: int = 0


@dataclass(frozen=True, slots=True)
class Query:
    """Search probe for ``target_file`` (a content-catalog rank)."""

    sender: Address
    target_file: int
    sender_num_files: int = 0


@dataclass(frozen=True, slots=True)
class Pong:
    """Cache-entry sharing payload.

    Entries are copies of the responder's link-cache entries (selected by
    its PingPong or QueryPong policy); receivers must never mutate a
    pong's entries in place — they import copies.
    """

    sender: Address
    entries: Tuple[CacheEntry, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not isinstance(self.entries, tuple):
            object.__setattr__(self, "entries", tuple(self.entries))


@dataclass(frozen=True, slots=True)
class QueryReply:
    """Reply to a Query probe.

    Attributes:
        sender: responder address.
        num_results: results found for the query (0 if none) — the
            *claimed* count; a faulty reporter may misstate it.
        pong: piggybacked cache-entry sharing (Section 2.3: a probed peer
            returns a Pong whether or not it found a match).
        true_results: omniscient-observer field (never visible to the
            protocol): the responder's actual match count when it differs
            from the claim.  ``None`` means the claim is honest.
    """

    sender: Address
    num_results: int
    pong: Pong
    true_results: Optional[int] = None

    @property
    def verified_results(self) -> int:
        """The honest result count (the claim, unless it was a lie)."""
        return (
            self.num_results if self.true_results is None else self.true_results
        )


@dataclass(frozen=True, slots=True)
class Refusal:
    """Overload notice: "back off" (paper Section 5.1/6.3)."""

    sender: Address


@dataclass(frozen=True, slots=True)
class GossipPush:
    """Epidemic pong-harvest rumor (gossip-assisted GUESS).

    Attributes:
        sender: the peer forwarding the rumor (this hop's carrier).
        origin: the peer whose ping harvest seeded the rumor.
        entries: the disseminated cache-entry copies.
        ttl: remaining forwarding hops after this delivery.
    """

    sender: Address
    origin: Address
    entries: Tuple[CacheEntry, ...] = field(default_factory=tuple)
    ttl: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.entries, tuple):
            object.__setattr__(self, "entries", tuple(self.entries))


@dataclass(frozen=True, slots=True)
class GossipAck:
    """Reply to a :class:`GossipPush`.

    Attributes:
        sender: the acknowledging peer.
        imported: entries the receiver actually admitted to its cache.
    """

    sender: Address
    imported: int = 0


@dataclass(frozen=True, slots=True)
class CacheUpdate:
    """Push-invalidation notice (CUP-style controlled update propagation).

    Attributes:
        sender: the peer (or departing peer) sending the notice — hop 0
            of a departure wave is sent *by* the subject as it leaves.
        subject: the address the notice is about.
        departed: True for a departure (receivers purge the entry);
            False for an overload report (receivers with circuit
            breakers record a remote refusal instead of purging).
    """

    sender: Address
    subject: Address
    departed: bool = True


@dataclass(frozen=True, slots=True)
class CacheUpdateAck:
    """Reply to a :class:`CacheUpdate`.

    Attributes:
        sender: the acknowledging peer.
        purged: whether the receiver actually held (and purged or
            breaker-flagged) the stale entry — the interest-path signal
            gating further propagation.
        pong: replacement candidates from the receiver's cache, imported
            by live notifiers so every purge doubles as a refresh.
    """

    sender: Address
    purged: bool
    pong: Pong
