"""Query execution (paper Sections 2.3, 3.1, 6.2).

The querying peer iterates over candidate targets — link-cache entries
first-class, query-cache entries as pongs arrive — ordered by the
QueryProbe policy, probing one at a time until ``NumDesiredResults``
results are in hand or no unprobed candidate remains.

Timing: the GUESS spec serialises probes with a 0.2 s spacing, so probe
*i* of a query issued at ``t0`` carries virtual timestamp
``t0 + (i // k) * spacing`` where ``k`` is the number of parallel walkers
(k = 1 is the spec's strictly serial mode).  Those timestamps drive both
liveness (a peer that died mid-query stops answering) and the target-side
per-second capacity windows.

Outcome accounting matches the paper's metrics: **good** probes reach a
live peer, **dead** probes time out ("DeadIPs" / wasted probes), and
**refused** probes hit an overloaded peer.

Under fault injection (:mod:`repro.faults`) a timeout no longer implies
a dead peer, so the loop optionally retries timed-out probes via
:class:`~repro.faults.retry.RetryPolicy` (``ProtocolParams.probe_retries``
et al.).  Retry waiting is charged honestly: every backoff gap shifts the
remaining waves' virtual timestamps, extends the query's duration, and is
folded into the satisfying reply's response time.  With retries disabled
the loop is bit-identical to the pre-retry code.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.core.entry import CacheEntry
from repro.core.messages import Pong, QueryReply
from repro.core.peer import GuessPeer
from repro.core.policies import Policy
from repro.core.query_cache import QueryCache
from repro.faults.retry import RetryPolicy, probe_with_retry
from repro.network.transport import ProbeStatus, Transport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observe.spans import QuerySpan


class CandidatePool:
    """Best-first pool of probe candidates under a QueryProbe policy.

    For key-based policies the pool is a max-heap on
    ``(key, -address)`` — keys are fixed at admission, which is exact for
    every policy in the paper (an entry's rank only changes when it is
    probed, at which point it has already left the pool).  For the Random
    policy the pool is an array with O(1) swap-remove random pops.
    """

    __slots__ = ("_policy", "_rng", "_now", "_heap", "_bag")

    def __init__(self, policy: Policy, rng: random.Random, now: float) -> None:
        self._policy = policy
        self._rng = rng
        self._now = now
        self._heap: List[Tuple[float, int, CacheEntry]] = []
        self._bag: List[CacheEntry] = []

    def add(self, entry: CacheEntry) -> None:
        """Admit one candidate (caller guarantees address-uniqueness)."""
        if self._policy.randomized:
            self._bag.append(entry)
        else:
            key = self._policy.key(entry, self._now)
            heapq.heappush(self._heap, (-key, entry.address, entry))

    def pop(self) -> Optional[CacheEntry]:
        """Remove and return the most-preferred candidate, or None."""
        if self._policy.randomized:
            bag = self._bag
            if not bag:
                return None
            index = self._rng.randrange(len(bag))
            bag[index], bag[-1] = bag[-1], bag[index]
            return bag.pop()
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._bag) if self._policy.randomized else len(self._heap)


@dataclass(frozen=True, slots=True)
class QueryResult:
    """Everything the metrics layer wants to know about one query.

    Attributes:
        satisfied: whether ``NumDesiredResults`` results were obtained.
        results: results actually obtained.
        probes: total probes issued (= good + dead + refused).
        good_probes: probes answered by live peers.
        dead_probes: probes that timed out (the paper's "DeadIPs").
        stale_dead_probes: the subset of ``dead_probes`` whose candidate
            entry was acquired *before* the target's departure — the
            prober held a pointer that went stale in place, exactly the
            waste push invalidation (:mod:`repro.freshness`) can
            prevent.  The remainder were dead-on-arrival: imported
            after the death (stale pongs, poison) or pointing at
            never-registered ghosts.
        refused_probes: probes refused by overloaded peers.
        duration: seconds of virtual time the query occupied (includes
            retry backoff waiting).
        response_time: seconds from issue to the satisfying reply
            (``None`` for unsatisfied queries).
        pool_exhausted: True if the query ended by running out of
            candidates rather than by satisfaction.
        spurious_timeouts: dead-probe outcomes whose target was actually
            live (fault-injected losses) — the subset of ``dead_probes``
            that corrupts the paper's DeadIPs accounting.
        retries: extra probe sends beyond the first attempt, summed over
            the query's probes.
        retry_recoveries: probes that timed out at least once but were
            resolved (delivered or refused) by a retry.
        wrongful_evictions: live link-cache entries evicted because a
            lost probe masqueraded as a death.
        dead_evictions: link-cache entries evicted because a probe timed
            out (includes the wrongful subset above).
        refusal_evictions: link-cache entries evicted because a probe
            was refused under ``do_backoff=False`` — the reflex the
            circuit breaker replaces.
        suppressed_probes: candidate probes skipped because the target's
            circuit breaker was open.
        retries_denied: probes whose retry schedule was cut short by an
            exhausted retry-token budget.
        honest_results: omniscient-observer result count with faulty
            reporters' lies undone (``None`` = identical to ``results``,
            the case whenever no reply was falsified).
        honest_satisfied: whether the honest count met
            ``NumDesiredResults`` (``None`` = identical to ``satisfied``).
    """

    satisfied: bool
    results: int
    probes: int
    good_probes: int
    dead_probes: int
    refused_probes: int
    duration: float
    response_time: Optional[float]
    pool_exhausted: bool
    stale_dead_probes: int = 0
    spurious_timeouts: int = 0
    retries: int = 0
    retry_recoveries: int = 0
    wrongful_evictions: int = 0
    dead_evictions: int = 0
    refusal_evictions: int = 0
    suppressed_probes: int = 0
    retries_denied: int = 0
    honest_results: Optional[int] = None
    honest_satisfied: Optional[bool] = None

    @property
    def verified_results(self) -> int:
        """The honest result count (equals ``results`` absent liars)."""
        return self.results if self.honest_results is None else self.honest_results

    @property
    def verified_satisfied(self) -> bool:
        """Honest satisfaction (equals ``satisfied`` absent liars)."""
        return (
            self.satisfied
            if self.honest_satisfied is None
            else self.honest_satisfied
        )


def execute_query(
    peer: GuessPeer,
    target_file: int,
    transport: Transport,
    now: float,
    *,
    rng: random.Random,
    desired_results: int = 1,
    max_probes: Optional[int] = None,
    span: Optional["QuerySpan"] = None,
    harvests: Optional[List["Pong"]] = None,
) -> QueryResult:
    """Run one GUESS query from ``peer`` for ``target_file``.

    Args:
        peer: the querying peer (its link cache is read and updated).
        target_file: content-catalog rank being searched for.
        transport: the probe transport.
        now: query issue time.
        rng: policy randomness stream.
        desired_results: the ``NumDesiredResults`` stopping threshold.
        max_probes: optional hard cap on probes (used by extent ablations;
            the protocol itself probes to exhaustion).
        span: optional :class:`~repro.observe.spans.QuerySpan` receiving
            one :class:`~repro.observe.spans.ProbeRecord` per probe.
            Recording is pure bookkeeping on the span object — it never
            touches peer, cache, RNG, or transport state, so a traced
            query is bit-identical to an untraced one.
        harvests: optional sink the non-empty pong of every delivered
            query reply is appended to, so the caller can seed gossip
            rumors from query harvests exactly like ping harvests
            (gossip-assisted GUESS).  ``None`` (the default, and the
            only value ever passed when the gossip plan is disabled)
            keeps the loop append-free and the trace digest untouched.

    Returns:
        A :class:`QueryResult`.
    """
    protocol = peer.protocol
    policies = peer.policies
    spacing = protocol.probe_spacing
    walkers = protocol.parallel_probes

    pool = CandidatePool(policies.query_probe, rng, now)
    link_entries = peer.link_cache.entries()
    for entry in link_entries:
        pool.add(entry)
    # QueryCache copies this set, so reusing it below for span origin
    # tagging ("link" vs "query" target) reads the same frozen snapshot.
    link_addresses = {entry.address for entry in link_entries}
    query_cache = QueryCache(
        owner=peer.address,
        excluded=link_addresses,
    )

    message = peer.query_message(target_file)
    results = 0
    honest_results = 0
    falsified = False
    good = dead = stale_dead = refused = 0
    spurious = retries = recoveries = wrongful = 0
    dead_evictions = refusal_evictions = suppressed = denied = 0
    probes = 0
    waves = 0
    response_time: Optional[float] = None
    retry = (
        RetryPolicy.from_protocol(protocol)
        if protocol.probe_retries > 0
        else None
    )
    # Cumulative timestamp slip from retry backoff: every second spent
    # waiting on re-sends pushes the remaining waves later.  Stays 0.0
    # without retries, leaving all timestamps bit-identical.
    slip = 0.0

    # Probes go out in waves of ``walkers`` (k = 1 is the spec's strictly
    # serial mode).  Every probe of a wave is in flight together, so a
    # wave is always fully charged even if its first reply satisfies the
    # query — this is exactly why the paper bounds the overhead of
    # k-parallel probing at k-1 extra probes.
    while results < desired_results:
        wave: list[CacheEntry] = []
        while len(wave) < walkers:
            if max_probes is not None and probes + len(wave) >= max_probes:
                break
            entry = pool.pop()
            if entry is None:
                break
            wave.append(entry)
        if not wave:
            break
        wave_offset = waves * spacing + slip
        wave_time = now + wave_offset
        waves += 1
        wave_slip = 0.0
        defense = peer.defense
        breakers = peer.breakers
        for entry in wave:
            address = entry.address
            query_cache.mark_seen(address)
            if breakers is not None and not breakers.allow(address, wave_time):
                # Open breaker: the target recently shed load, so spare
                # it this probe and keep the entry cached for later.
                suppressed += 1
                if span is not None:
                    span.record_probe(
                        wave=waves - 1,
                        time=wave_time,
                        target=address,
                        origin="link" if address in link_addresses else "query",
                        status="suppressed",
                    )
                continue
            if defense is not None and defense.blocked(address):
                blocked_evicted = peer.link_cache.evict(address)
                if span is not None:
                    span.record_probe(
                        wave=waves - 1,
                        time=wave_time,
                        target=address,
                        origin="link" if address in link_addresses else "query",
                        status="blocked",
                        evicted=blocked_evicted,
                        eviction_cause="blocked" if blocked_evicted else None,
                    )
                continue
            if retry is None:
                outcome = transport.probe(
                    peer.address, address, message, wave_time
                )
            else:
                attempt = probe_with_retry(
                    transport, retry, peer.address, address, message,
                    wave_time, peer.retry_budget,
                )
                outcome = attempt.outcome
                retries += attempt.retries
                if attempt.recovered:
                    recoveries += 1
                if attempt.denied:
                    denied += 1
                # Walkers of one wave wait concurrently, so the wave
                # slips by its slowest probe's backoff, not the sum.
                if attempt.delay > wave_slip:
                    wave_slip = attempt.delay
            probes += 1

            if outcome.status is ProbeStatus.TIMEOUT:
                dead += 1
                # Stale = the pointer predates the target's departure
                # (push invalidation could have purged it in time);
                # dead-on-arrival pointers and ghosts stay "fresh".
                departed_at = transport.departure_time(address)
                if departed_at is not None and entry.born < departed_at:
                    stale_dead += 1
                # Discovered-dead entries leave the link cache immediately.
                evicted = peer.link_cache.evict(address)
                if evicted:
                    dead_evictions += 1
                if outcome.spurious:
                    spurious += 1
                    if evicted:
                        wrongful += 1
                if breakers is not None:
                    breakers.discard(address)
                if defense is not None:
                    defense.record_dead(address)
                if span is not None:
                    span.record_probe(
                        wave=waves - 1,
                        time=wave_time,
                        target=address,
                        origin="link" if address in link_addresses else "query",
                        status="timeout",
                        rtt=outcome.rtt,
                        retries=0 if retry is None else attempt.retries,
                        spurious=outcome.spurious,
                        evicted=evicted,
                        eviction_cause="dead" if evicted else None,
                    )
                continue

            if outcome.status is ProbeStatus.REFUSED:
                refused += 1
                refusal_evicted = False
                if breakers is not None:
                    # The breaker substitutes for refusal eviction: the
                    # entry stays cached, probes stop once it trips.
                    breakers.record_refusal(address, wave_time)
                elif not protocol.do_backoff:
                    # The paper's inherent throttling: treat the refusal
                    # like a death so the entry stops circulating in pongs.
                    refusal_evicted = peer.link_cache.evict(address)
                    if refusal_evicted:
                        refusal_evictions += 1
                if span is not None:
                    span.record_probe(
                        wave=waves - 1,
                        time=wave_time,
                        target=address,
                        origin="link" if address in link_addresses else "query",
                        status="refused",
                        rtt=outcome.rtt,
                        retries=0 if retry is None else attempt.retries,
                        recovered=False if retry is None else attempt.recovered,
                        evicted=refusal_evicted,
                        eviction_cause="refusal" if refusal_evicted else None,
                    )
                continue

            good += 1
            if breakers is not None:
                breakers.record_success(address)
            reply = outcome.response
            if not isinstance(reply, QueryReply):
                raise TypeError(f"query probe returned {reply!r}")

            # Reset NumRes from this response (Section 2.1); refresh TS.
            entry.record_results(reply.num_results, wave_time)
            peer.link_cache.record_results(address, reply.num_results, wave_time)
            if reply.num_results > 0 and address not in peer.link_cache:
                # A productive query-cache entry qualifies for the link
                # cache ("qualifying entries may be inserted", §2.3).
                peer.offer_entry_to_link_cache(entry, wave_time)

            results += reply.num_results
            honest_results += reply.verified_results
            if reply.true_results is not None:
                falsified = True
            if results >= desired_results and response_time is None:
                # outcome.rtt already folds in any retry waiting.
                response_time = wave_offset + outcome.rtt

            if defense is not None:
                defense.record_answer(address, reply.num_results)

            if harvests is not None and reply.pong.entries:
                harvests.append(reply.pong)

            # Ingest the piggybacked pong: query cache feeds the pool,
            # and every shared entry is offered to the link cache too.
            reset = policies.reset_num_results
            admitted = 0
            for shared in reply.pong.entries:
                if defense is not None:
                    if defense.blocked(shared.address):
                        continue
                    defense.record_import(shared.address, reply.pong.sender)
                imported = shared.copy_for_import(reset, wave_time)
                if query_cache.add(imported):
                    pool.add(imported)
                    peer.offer_entry_to_link_cache(imported, wave_time)
                    admitted += 1

            if span is not None:
                span.record_probe(
                    wave=waves - 1,
                    time=wave_time,
                    target=address,
                    origin="link" if address in link_addresses else "query",
                    status="delivered",
                    rtt=outcome.rtt,
                    retries=0 if retry is None else attempt.retries,
                    recovered=False if retry is None else attempt.recovered,
                    results=reply.num_results,
                    pong_entries=len(reply.pong.entries),
                    admitted=admitted,
                )

        slip += wave_slip

    satisfied = results >= desired_results
    duration = waves * spacing + slip
    query_cache.clear()
    return QueryResult(
        satisfied=satisfied,
        results=results,
        probes=probes,
        good_probes=good,
        dead_probes=dead,
        refused_probes=refused,
        stale_dead_probes=stale_dead,
        duration=duration,
        response_time=response_time if satisfied else None,
        pool_exhausted=not satisfied and pool.pop() is None,
        spurious_timeouts=spurious,
        retries=retries,
        retry_recoveries=recoveries,
        wrongful_evictions=wrongful,
        dead_evictions=dead_evictions,
        refusal_evictions=refusal_evictions,
        suppressed_probes=suppressed,
        retries_denied=denied,
        # The None sentinel keeps falsification-free queries (the
        # overwhelmingly common case) carrying no redundant state.
        honest_results=honest_results if falsified else None,
        honest_satisfied=(
            honest_results >= desired_results if falsified else None
        ),
    )
