"""Query execution (paper Sections 2.3, 3.1, 6.2).

The querying peer iterates over candidate targets — link-cache entries
first-class, query-cache entries as pongs arrive — ordered by the
QueryProbe policy, probing one at a time until ``NumDesiredResults``
results are in hand or no unprobed candidate remains.

Timing: the GUESS spec serialises probes with a 0.2 s spacing, so probe
*i* of a query issued at ``t0`` carries virtual timestamp
``t0 + (i // k) * spacing`` where ``k`` is the number of parallel walkers
(k = 1 is the spec's strictly serial mode).  Those timestamps drive both
liveness (a peer that died mid-query stops answering) and the target-side
per-second capacity windows.

Outcome accounting matches the paper's metrics: **good** probes reach a
live peer, **dead** probes time out ("DeadIPs" / wasted probes), and
**refused** probes hit an overloaded peer.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.entry import CacheEntry
from repro.core.messages import QueryReply
from repro.core.peer import GuessPeer
from repro.core.policies import Policy
from repro.core.query_cache import QueryCache
from repro.network.transport import ProbeStatus, Transport


class CandidatePool:
    """Best-first pool of probe candidates under a QueryProbe policy.

    For key-based policies the pool is a max-heap on
    ``(key, -address)`` — keys are fixed at admission, which is exact for
    every policy in the paper (an entry's rank only changes when it is
    probed, at which point it has already left the pool).  For the Random
    policy the pool is an array with O(1) swap-remove random pops.
    """

    __slots__ = ("_policy", "_rng", "_now", "_heap", "_bag")

    def __init__(self, policy: Policy, rng: random.Random, now: float) -> None:
        self._policy = policy
        self._rng = rng
        self._now = now
        self._heap: List[Tuple[float, int, CacheEntry]] = []
        self._bag: List[CacheEntry] = []

    def add(self, entry: CacheEntry) -> None:
        """Admit one candidate (caller guarantees address-uniqueness)."""
        if self._policy.randomized:
            self._bag.append(entry)
        else:
            key = self._policy.key(entry, self._now)
            heapq.heappush(self._heap, (-key, entry.address, entry))

    def pop(self) -> Optional[CacheEntry]:
        """Remove and return the most-preferred candidate, or None."""
        if self._policy.randomized:
            bag = self._bag
            if not bag:
                return None
            index = self._rng.randrange(len(bag))
            bag[index], bag[-1] = bag[-1], bag[index]
            return bag.pop()
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._bag) if self._policy.randomized else len(self._heap)


@dataclass(frozen=True, slots=True)
class QueryResult:
    """Everything the metrics layer wants to know about one query.

    Attributes:
        satisfied: whether ``NumDesiredResults`` results were obtained.
        results: results actually obtained.
        probes: total probes issued (= good + dead + refused).
        good_probes: probes answered by live peers.
        dead_probes: probes that timed out (the paper's "DeadIPs").
        refused_probes: probes refused by overloaded peers.
        duration: seconds of virtual time the query occupied.
        response_time: seconds from issue to the satisfying reply
            (``None`` for unsatisfied queries).
        pool_exhausted: True if the query ended by running out of
            candidates rather than by satisfaction.
    """

    satisfied: bool
    results: int
    probes: int
    good_probes: int
    dead_probes: int
    refused_probes: int
    duration: float
    response_time: Optional[float]
    pool_exhausted: bool


def execute_query(
    peer: GuessPeer,
    target_file: int,
    transport: Transport,
    now: float,
    *,
    rng: random.Random,
    desired_results: int = 1,
    max_probes: Optional[int] = None,
) -> QueryResult:
    """Run one GUESS query from ``peer`` for ``target_file``.

    Args:
        peer: the querying peer (its link cache is read and updated).
        target_file: content-catalog rank being searched for.
        transport: the probe transport.
        now: query issue time.
        rng: policy randomness stream.
        desired_results: the ``NumDesiredResults`` stopping threshold.
        max_probes: optional hard cap on probes (used by extent ablations;
            the protocol itself probes to exhaustion).

    Returns:
        A :class:`QueryResult`.
    """
    protocol = peer.protocol
    policies = peer.policies
    spacing = protocol.probe_spacing
    walkers = protocol.parallel_probes

    pool = CandidatePool(policies.query_probe, rng, now)
    link_entries = peer.link_cache.entries()
    for entry in link_entries:
        pool.add(entry)
    query_cache = QueryCache(
        owner=peer.address,
        excluded={entry.address for entry in link_entries},
    )

    message = peer.query_message(target_file)
    results = 0
    good = dead = refused = 0
    probes = 0
    waves = 0
    response_time: Optional[float] = None

    # Probes go out in waves of ``walkers`` (k = 1 is the spec's strictly
    # serial mode).  Every probe of a wave is in flight together, so a
    # wave is always fully charged even if its first reply satisfies the
    # query — this is exactly why the paper bounds the overhead of
    # k-parallel probing at k-1 extra probes.
    while results < desired_results:
        wave: list[CacheEntry] = []
        while len(wave) < walkers:
            if max_probes is not None and probes + len(wave) >= max_probes:
                break
            entry = pool.pop()
            if entry is None:
                break
            wave.append(entry)
        if not wave:
            break
        wave_time = now + waves * spacing
        waves += 1
        defense = peer.defense
        for entry in wave:
            address = entry.address
            query_cache.mark_seen(address)
            if defense is not None and defense.blocked(address):
                peer.link_cache.evict(address)
                continue
            outcome = transport.probe(peer.address, address, message, wave_time)
            probes += 1

            if outcome.status is ProbeStatus.TIMEOUT:
                dead += 1
                # Discovered-dead entries leave the link cache immediately.
                peer.link_cache.evict(address)
                if defense is not None:
                    defense.record_dead(address)
                continue

            if outcome.status is ProbeStatus.REFUSED:
                refused += 1
                if not protocol.do_backoff:
                    # The paper's inherent throttling: treat the refusal
                    # like a death so the entry stops circulating in pongs.
                    peer.link_cache.evict(address)
                continue

            good += 1
            reply = outcome.response
            if not isinstance(reply, QueryReply):
                raise TypeError(f"query probe returned {reply!r}")

            # Reset NumRes from this response (Section 2.1); refresh TS.
            entry.record_results(reply.num_results, wave_time)
            peer.link_cache.record_results(address, reply.num_results, wave_time)
            if reply.num_results > 0 and address not in peer.link_cache:
                # A productive query-cache entry qualifies for the link
                # cache ("qualifying entries may be inserted", §2.3).
                peer.offer_entry_to_link_cache(entry, wave_time)

            results += reply.num_results
            if results >= desired_results and response_time is None:
                response_time = (waves - 1) * spacing + outcome.rtt

            if defense is not None:
                defense.record_answer(address, reply.num_results)

            # Ingest the piggybacked pong: query cache feeds the pool,
            # and every shared entry is offered to the link cache too.
            reset = policies.reset_num_results
            for shared in reply.pong.entries:
                if defense is not None:
                    if defense.blocked(shared.address):
                        continue
                    defense.record_import(shared.address, reply.pong.sender)
                imported = shared.copy_for_import(reset)
                if query_cache.add(imported):
                    pool.add(imported)
                    peer.offer_entry_to_link_cache(imported, wave_time)

    satisfied = results >= desired_results
    duration = waves * spacing
    query_cache.clear()
    return QueryResult(
        satisfied=satisfied,
        results=results,
        probes=probes,
        good_probes=good,
        dead_probes=dead,
        refused_probes=refused,
        duration=duration,
        response_time=response_time if satisfied else None,
        pool_exhausted=not satisfied and pool.pop() is None,
    )
