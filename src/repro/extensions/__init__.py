"""Extensions beyond the paper's evaluated system.

The paper closes several threads with "future work"; this subpackage
implements them on top of the reproduced core so they can be measured
with the same harness:

* :mod:`repro.extensions.adaptive_ping` — runtime PingInterval control
  (§6.1's concluding guidance: shrink the interval when probes keep
  finding corpses, relax it when everything is live).
* :mod:`repro.extensions.adaptive_search` — adaptive k-parallel probing
  (§6.2: double the probe rate when successive waves return nothing).
* :mod:`repro.extensions.detection` — malicious-peer detection from pong
  provenance (§6.4: flag sources whose shared entries keep turning out
  dead or that only ever advertise each other), with blacklisting wired
  into the core import paths via the ``GuessPeer.defense`` hook.
* :mod:`repro.extensions.selfish` — the §3.3 selfish-peer threat model
  (probe everyone at once) and the probe-payment budget proposed to
  deter it.

Everything here is explicitly an *extension*: the experiment modules for
the paper's figures never import it.
"""

from repro.extensions.adaptive_ping import AdaptivePingController
from repro.extensions.adaptive_ping_sim import AdaptiveMaintenanceSimulation
from repro.extensions.adaptive_search import execute_adaptive_query
from repro.extensions.detection import DefenseConfig, PongDefense
from repro.extensions.selfish import ProbeBudget, execute_selfish_query
from repro.extensions.selfish_sim import SelfishGuessSimulation, SelfishReport

__all__ = [
    "AdaptivePingController",
    "AdaptiveMaintenanceSimulation",
    "execute_adaptive_query",
    "DefenseConfig",
    "PongDefense",
    "ProbeBudget",
    "execute_selfish_query",
    "SelfishGuessSimulation",
    "SelfishReport",
]
