"""Adaptive PingInterval control (paper §6.1, concluding guidance).

    "While sending query or Ping messages, if a peer discovers that many
    of its probes are to dead addresses, the peer should decrease its
    PingInterval.  On the other hand, if a peer discovers that almost
    all its entries are live, then it may increase its PingInterval."

:class:`AdaptivePingController` implements exactly that feedback loop as
a per-peer controller: probe outcomes stream in, and the controller
multiplicatively tightens or relaxes the interval against a target live
fraction, clamped to a safe band.
"""

from __future__ import annotations

from repro.errors import ConfigError


class AdaptivePingController:
    """Multiplicative-adjustment controller for one peer's PingInterval.

    Args:
        initial_interval: starting PingInterval in seconds.
        target_live_fraction: desired fraction of live probe outcomes;
            below it the interval tightens, comfortably above it the
            interval relaxes.
        min_interval / max_interval: clamp band.
        window: probe outcomes per adjustment decision.
        tighten_factor: interval multiplier when too many probes are
            dead (< 1).
        relax_factor: interval multiplier when nearly everything is
            live (> 1).
        relax_threshold: live fraction above which relaxing is allowed
            (the paper says "almost all entries are live").

    Example::

        controller = AdaptivePingController(30.0)
        controller.observe(dead=True)
        ...
        interval = controller.interval   # use for the next ping
    """

    def __init__(
        self,
        initial_interval: float,
        target_live_fraction: float = 0.8,
        min_interval: float = 5.0,
        max_interval: float = 600.0,
        window: int = 10,
        tighten_factor: float = 0.5,
        relax_factor: float = 1.25,
        relax_threshold: float = 0.95,
    ) -> None:
        if initial_interval <= 0:
            raise ConfigError(
                f"initial_interval must be > 0, got {initial_interval}"
            )
        if not 0.0 < target_live_fraction < 1.0:
            raise ConfigError(
                f"target_live_fraction must be in (0, 1), got {target_live_fraction}"
            )
        if not 0 < min_interval <= max_interval:
            raise ConfigError(
                f"need 0 < min_interval <= max_interval, got "
                f"[{min_interval}, {max_interval}]"
            )
        if window < 1:
            raise ConfigError(f"window must be >= 1, got {window}")
        if not 0.0 < tighten_factor < 1.0:
            raise ConfigError(
                f"tighten_factor must be in (0, 1), got {tighten_factor}"
            )
        if relax_factor <= 1.0:
            raise ConfigError(
                f"relax_factor must be > 1, got {relax_factor}"
            )
        if not target_live_fraction <= relax_threshold <= 1.0:
            raise ConfigError(
                "relax_threshold must lie in [target_live_fraction, 1], "
                f"got {relax_threshold}"
            )
        self._interval = min(max(initial_interval, min_interval), max_interval)
        self.target_live_fraction = target_live_fraction
        self.min_interval = min_interval
        self.max_interval = max_interval
        self.window = window
        self.tighten_factor = tighten_factor
        self.relax_factor = relax_factor
        self.relax_threshold = relax_threshold
        self._live = 0
        self._dead = 0
        self.adjustments = 0

    @property
    def interval(self) -> float:
        """The interval to use for the next ping."""
        return self._interval

    def observe(self, dead: bool) -> None:
        """Feed one probe outcome; adjusts once per ``window`` outcomes."""
        if dead:
            self._dead += 1
        else:
            self._live += 1
        if self._live + self._dead >= self.window:
            self._adjust()

    def _adjust(self) -> None:
        total = self._live + self._dead
        live_fraction = self._live / total
        if live_fraction < self.target_live_fraction:
            self._interval = max(
                self.min_interval, self._interval * self.tighten_factor
            )
            self.adjustments += 1
        elif live_fraction >= self.relax_threshold:
            self._interval = min(
                self.max_interval, self._interval * self.relax_factor
            )
            self.adjustments += 1
        self._live = 0
        self._dead = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AdaptivePingController(interval={self._interval:.1f}s, "
            f"adjustments={self.adjustments})"
        )
