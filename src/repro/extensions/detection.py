"""Malicious-peer detection from pong provenance (paper §6.4 future work).

    "Detecting malicious peers can be accomplished using heuristics —
    for example, if a group of peers constantly include each other in
    pongs, or if a peer consistently returns many dead IP addresses in
    its Pong."

:class:`PongDefense` implements both heuristics for one good peer and
plugs into the core through the ``GuessPeer.defense`` hook (the import
paths report provenance; the search loop reports probe outcomes and
skips blacklisted targets):

* **dead-pong heuristic** — every imported entry remembers which source
  shared it; when a probed entry turns out dead, its sources are
  charged.  A source whose shared entries keep dying gets blacklisted.
* **clique heuristic** — a source whose shared entries never answer a
  query (zero results across many observations) while pointing at a
  small repeating set of addresses is charged as a suspected colluder.

Blacklisting is deliberately local and conservative: false positives
merely cost one peer some pointers, exactly the autonomy-preserving
stance the paper takes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Set

from repro.errors import ConfigError
from repro.network.address import Address


@dataclass(frozen=True)
class DefenseConfig:
    """Tuning for :class:`PongDefense`.

    Attributes:
        min_observations: entries a source must have shared before it
            can be judged (avoids blacklisting on noise).
        dead_fraction_threshold: fraction of a source's shared entries
            found dead that triggers blacklisting.
        barren_fraction_threshold: fraction of a source's shared entries
            probed-with-zero-results that triggers blacklisting (the
            colluding-clique signature: alive but never useful).
    """

    min_observations: int = 10
    dead_fraction_threshold: float = 0.6
    barren_fraction_threshold: float = 0.9

    def __post_init__(self) -> None:
        if self.min_observations < 1:
            raise ConfigError(
                f"min_observations must be >= 1, got {self.min_observations}"
            )
        for name, value in (
            ("dead_fraction_threshold", self.dead_fraction_threshold),
            ("barren_fraction_threshold", self.barren_fraction_threshold),
        ):
            if not 0.0 < value <= 1.0:
                raise ConfigError(f"{name} must be in (0, 1], got {value}")


@dataclass
class _SourceRecord:
    shared: int = 0
    dead: int = 0
    barren: int = 0     # shared entries probed that returned 0 results
    productive: int = 0  # shared entries probed that returned results


class PongDefense:
    """Provenance tracker + blacklist for one good peer.

    Implements the informal protocol the core hooks expect:
    ``record_import``, ``record_dead``, ``record_answer``, ``blocked``.
    """

    def __init__(self, config: DefenseConfig | None = None) -> None:
        self.config = config or DefenseConfig()
        self._sources: Dict[Address, _SourceRecord] = defaultdict(_SourceRecord)
        # entry address -> sources that shared it (an entry can be
        # advertised by several peers; all are charged for its fate).
        self._provenance: Dict[Address, Set[Address]] = defaultdict(set)
        self._blacklist: Set[Address] = set()

    # ------------------------------------------------------------------
    # Core hooks
    # ------------------------------------------------------------------

    def record_import(self, entry_address: Address, source: Address) -> None:
        """An entry for ``entry_address`` arrived in a pong from ``source``."""
        if source in self._blacklist:
            return
        self._provenance[entry_address].add(source)
        self._sources[source].shared += 1

    def record_dead(self, address: Address) -> None:
        """A probe to ``address`` timed out; charge everyone who shared it."""
        for source in self._provenance.pop(address, ()):  # consume fate once
            record = self._sources[source]
            record.dead += 1
            self._judge(source, record)

    def record_answer(self, address: Address, num_results: int) -> None:
        """A probe to ``address`` was answered with ``num_results`` results."""
        for source in self._provenance.pop(address, ()):
            record = self._sources[source]
            if num_results > 0:
                record.productive += 1
            else:
                record.barren += 1
                self._judge(source, record)

    def blocked(self, address: Address) -> bool:
        """Whether ``address`` is blacklisted."""
        return address in self._blacklist

    # ------------------------------------------------------------------
    # Judgement
    # ------------------------------------------------------------------

    def _judge(self, source: Address, record: _SourceRecord) -> None:
        observed = record.dead + record.barren + record.productive
        if observed < self.config.min_observations:
            return
        if record.dead / observed >= self.config.dead_fraction_threshold:
            self._blacklist.add(source)
            return
        if record.productive == 0 and (
            record.barren / observed >= self.config.barren_fraction_threshold
        ):
            self._blacklist.add(source)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def blacklist(self) -> Set[Address]:
        """Addresses this peer refuses to deal with (copy)."""
        return set(self._blacklist)

    def source_stats(self, source: Address) -> tuple[int, int, int, int]:
        """``(shared, dead, barren, productive)`` for ``source``."""
        record = self._sources.get(source, _SourceRecord())
        return (record.shared, record.dead, record.barren, record.productive)


def install_defense(sim, config: DefenseConfig | None = None) -> None:
    """Equip every current *and future* good peer of ``sim`` with defense.

    Wraps the simulation's peer spawner so newborns are protected too.
    """
    for peer in sim.live_peers:
        if not peer.malicious:
            peer.defense = PongDefense(config)

    original_spawn = sim._spawn_peer

    def spawning(now, malicious, faulty=False, friend=None,
                 is_rebirth=False):
        peer = original_spawn(
            now, malicious, faulty=faulty, friend=friend,
            is_rebirth=is_rebirth,
        )
        if not peer.malicious:
            peer.defense = PongDefense(config)
        return peer

    sim._spawn_peer = spawning
