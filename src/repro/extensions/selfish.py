"""Selfish peers and probe payments (paper §3.3).

    "Rather than iteratively probe peers on a query, a selfish peer can
    simply probe thousands of peers at a time. ... One straightforward
    proposal is to have peers 'pay' for each probe."

Two pieces:

* :func:`execute_selfish_query` — the threat: the querying peer blasts
  every candidate it knows (link cache plus chained pongs) in maximal
  parallel waves, ignoring the serial protocol.  Response time is
  excellent; the probe bill lands on everyone else.
* :class:`ProbeBudget` — the deterrent: a token bucket charging one
  credit per probe, refilled at a sustainable rate.  Passing a budget to
  either search caps the damage a selfish peer can do and leaves
  protocol-abiding peers unaffected (their probe rate sits far below
  any sane refill rate).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.peer import GuessPeer
from repro.core.search import QueryResult, execute_query
from repro.errors import ConfigError
from repro.network.transport import Transport


class ProbeBudget:
    """Token-bucket probe allowance.

    Args:
        refill_rate: credits per second of sustainable probing.
        capacity: bucket depth (burst allowance).
        initial: starting credit (defaults to a full bucket).

    Example::

        budget = ProbeBudget(refill_rate=1.0, capacity=50)
        allowance = budget.available(now)   # how many probes I may send
        budget.spend(now, probes_used)
    """

    def __init__(
        self,
        refill_rate: float,
        capacity: float,
        initial: Optional[float] = None,
    ) -> None:
        if refill_rate < 0:
            raise ConfigError(f"refill_rate must be >= 0, got {refill_rate}")
        if capacity <= 0:
            raise ConfigError(f"capacity must be > 0, got {capacity}")
        self.refill_rate = float(refill_rate)
        self.capacity = float(capacity)
        self._credit = float(capacity if initial is None else initial)
        if not 0 <= self._credit <= capacity:
            raise ConfigError(
                f"initial credit must be in [0, {capacity}], got {initial}"
            )
        self._last_refill = 0.0

    def _refill(self, now: float) -> None:
        if now > self._last_refill:
            self._credit = min(
                self.capacity,
                self._credit + (now - self._last_refill) * self.refill_rate,
            )
            self._last_refill = now

    def available(self, now: float) -> int:
        """Whole probes affordable at time ``now``."""
        self._refill(now)
        return int(self._credit)

    def spend(self, now: float, probes: int) -> None:
        """Debit ``probes`` credits (clamped at zero; overdraft means the
        spender is cut off until the bucket refills)."""
        if probes < 0:
            raise ConfigError(f"probes must be >= 0, got {probes}")
        self._refill(now)
        self._credit = max(0.0, self._credit - probes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProbeBudget(credit={self._credit:.1f}/{self.capacity:.0f}, "
            f"rate={self.refill_rate}/s)"
        )


def execute_selfish_query(
    peer: GuessPeer,
    target_file: int,
    transport: Transport,
    now: float,
    *,
    rng: random.Random,
    desired_results: int = 1,
    budget: Optional[ProbeBudget] = None,
) -> QueryResult:
    """The selfish strategy: probe everything at once.

    Implemented as the core search with the wave width thrown wide open
    (every known candidate goes out in the first wave; chained pong
    candidates go out in the next).  With a :class:`ProbeBudget`, the
    probe count is capped at the spender's current allowance — the
    paper's payment-based deterrent.

    Returns:
        A :class:`~repro.core.search.QueryResult`.  ``duration`` is near
        zero (that is the point of being selfish); the cost shows up in
        everyone else's load.
    """
    max_probes: Optional[int] = None
    if budget is not None:
        max_probes = budget.available(now)
        if max_probes == 0:
            # Broke: the selfish peer cannot probe at all this round.
            return QueryResult(
                satisfied=False, results=0, probes=0, good_probes=0,
                dead_probes=0, refused_probes=0, duration=0.0,
                response_time=None, pool_exhausted=False,
            )

    # A "wave" as wide as the whole network: every candidate the peer
    # ever learns of during the query is in flight essentially at once.
    selfish_protocol = peer.protocol.with_(
        parallel_probes=max(1, len(peer.link_cache) * 64)
    )
    original_protocol = peer.protocol
    peer.protocol = selfish_protocol
    try:
        result = execute_query(
            peer,
            target_file,
            transport,
            now,
            rng=rng,
            desired_results=desired_results,
            max_probes=max_probes,
        )
    finally:
        peer.protocol = original_protocol
    if budget is not None:
        budget.spend(now, result.probes)
    return result
