"""A GUESS network with adaptive per-peer PingIntervals.

:class:`AdaptiveMaintenanceSimulation` closes the loop on the §6.1
guidance that :class:`~repro.extensions.adaptive_ping.AdaptivePingController`
implements: every good peer owns a controller, feeds it the outcome of
each maintenance ping, and schedules its *next* ping at the controller's
current interval.  Under heavy churn peers converge to tight intervals
(fresh caches at higher ping cost); in calm networks they relax and
save traffic — without any global coordination, as the paper requires.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.network_sim import GuessSimulation
from repro.core.peer import GuessPeer
from repro.extensions.adaptive_ping import AdaptivePingController
from repro.network.address import Address
from repro.network.transport import ProbeStatus
from repro.sim.events import EventPriority

ControllerFactory = Callable[[float], AdaptivePingController]


class AdaptiveMaintenanceSimulation(GuessSimulation):
    """GuessSimulation with controller-driven ping scheduling.

    Args:
        controller_factory: builds each peer's controller from the
            protocol's base PingInterval; defaults to the controller's
            own defaults.
        Remaining arguments as for :class:`GuessSimulation`.
    """

    def __init__(
        self,
        *args,
        controller_factory: Optional[ControllerFactory] = None,
        **kwargs,
    ) -> None:
        self._controller_factory = (
            controller_factory or AdaptivePingController
        )
        self._controllers: Dict[Address, AdaptivePingController] = {}
        super().__init__(*args, **kwargs)

    def controller_for(self, address: Address) -> Optional[AdaptivePingController]:
        """The live controller for ``address`` (None for malicious/dead)."""
        return self._controllers.get(address)

    def mean_ping_interval(self) -> float:
        """Average current interval across live controllers (diagnostics)."""
        if not self._controllers:
            return self.protocol.ping_interval
        intervals = [c.interval for c in self._controllers.values()]
        return sum(intervals) / len(intervals)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _spawn_peer(self, now, malicious, faulty=False, friend=None,
                    is_rebirth=False):
        peer = super()._spawn_peer(
            now, malicious, faulty=faulty, friend=friend,
            is_rebirth=is_rebirth,
        )
        if not malicious:
            self._controllers[peer.address] = self._controller_factory(
                self.protocol.ping_interval
            )
        return peer

    def _on_death(self, peer):
        self._controllers.pop(peer.address, None)
        super()._on_death(peer)

    # ------------------------------------------------------------------
    # Adaptive ping cycle
    # ------------------------------------------------------------------

    def _ping_cycle(self, peer: GuessPeer) -> None:
        now = self.engine.now
        if not peer.is_alive(now):
            return
        controller = self._controllers.get(peer.address)
        self._do_adaptive_ping(peer, now, controller)
        interval = (
            controller.interval
            if controller is not None
            else self.protocol.ping_interval
        )
        self.engine.schedule_after(
            interval,
            lambda: self._ping_cycle(peer),
            priority=EventPriority.PROTOCOL,
            label="adaptive-ping",
        )

    def _do_adaptive_ping(
        self,
        peer: GuessPeer,
        now: float,
        controller: Optional[AdaptivePingController],
    ) -> None:
        """One maintenance ping, with the outcome fed to the controller."""
        entry = peer.choose_ping_target(now)
        if entry is None:
            return
        outcome = self.transport.probe(
            peer.address, entry.address, peer.ping_message(), now
        )
        if outcome.status is ProbeStatus.TIMEOUT:
            peer.link_cache.evict(entry.address)
            self.collector.record_ping(dead=True, time=now)
            if controller is not None:
                controller.observe(dead=True)
            return
        if outcome.status is ProbeStatus.REFUSED:
            if not self.protocol.do_backoff:
                peer.link_cache.evict(entry.address)
            self.collector.record_ping(dead=False, time=now)
            # A refusal proves liveness; the controller counts it live.
            if controller is not None:
                controller.observe(dead=False)
            return
        peer.link_cache.touch(entry.address, now)
        peer.import_pong_to_link_cache(outcome.response, now)
        self.collector.record_ping(dead=False, time=now)
        if controller is not None:
            controller.observe(dead=False)
