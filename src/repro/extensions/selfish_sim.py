"""A GUESS network with a selfish minority (paper §3.3, quantified).

The paper argues qualitatively that GUESS is easy to game — a selfish
peer "can simply probe thousands of peers at a time", and if everyone
did, "the system might fail as if under a DoS attack" — and proposes
per-probe payments as the deterrent.  :class:`SelfishGuessSimulation`
turns that argument into an experiment:

* a configurable fraction of good peers is *selfish*: they follow the
  protocol in every respect except query execution, where they blast
  every candidate at once (:func:`~repro.extensions.selfish.execute_selfish_query`);
* optionally, every selfish peer carries a
  :class:`~repro.extensions.selfish.ProbeBudget` — the payment scheme —
  capping its probes per unit time;
* metrics split: the base report covers *honest* peers' experience (so
  the damage to the protocol-abiding majority is directly visible), and
  :meth:`selfish_report` summarises what the cheaters got out of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Set

from repro.core.network_sim import GuessSimulation
from repro.core.peer import GuessPeer
from repro.errors import ConfigError
from repro.extensions.selfish import ProbeBudget, execute_selfish_query
from repro.metrics.summary import mean, ratio
from repro.network.address import Address
from repro.sim.events import EventPriority

BudgetFactory = Callable[[], ProbeBudget]


@dataclass(frozen=True)
class SelfishReport:
    """What the selfish minority experienced.

    Attributes:
        queries: selfish queries executed.
        satisfied: of those, how many were satisfied.
        probes_per_query: average probes each selfish query fired.
        mean_response_time: average response time of satisfied selfish
            queries (near zero without payments — the cheater's payoff).
        broke_queries: queries that could not probe at all because the
            budget was empty (payments biting).
    """

    queries: int
    satisfied: int
    probes_per_query: float
    mean_response_time: Optional[float]
    broke_queries: int

    @property
    def unsatisfied_rate(self) -> float:
        if self.queries == 0:
            return 0.0
        return 1.0 - self.satisfied / self.queries


class SelfishGuessSimulation(GuessSimulation):
    """GuessSimulation plus a selfish minority.

    Args:
        percent_selfish: percentage (0-100) of *good* peers that are
            selfish.  (Malicious peers are a separate axis; combining
            both is allowed but not what the paper discusses.)
        budget_factory: when given, every selfish peer gets its own
            :class:`ProbeBudget` from this factory — the payment scheme.
        Remaining arguments as for :class:`GuessSimulation`.
    """

    def __init__(
        self,
        *args,
        percent_selfish: float = 0.0,
        budget_factory: Optional[BudgetFactory] = None,
        **kwargs,
    ) -> None:
        if not 0.0 <= percent_selfish <= 100.0:
            raise ConfigError(
                f"percent_selfish must be in [0, 100], got {percent_selfish}"
            )
        # Set before super().__init__ because bootstrap spawns peers.
        self._selfish_fraction = percent_selfish / 100.0
        self._budget_factory = budget_factory
        self._selfish: Set[Address] = set()
        self._budgets: Dict[Address, ProbeBudget] = {}
        self._selfish_queries = 0
        self._selfish_satisfied = 0
        self._selfish_probes = 0
        self._selfish_rt_sum = 0.0
        self._selfish_rt_count = 0
        self._selfish_broke = 0
        super().__init__(*args, **kwargs)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _spawn_peer(self, now, malicious, faulty=False, friend=None,
                    is_rebirth=False):
        peer = super()._spawn_peer(
            now, malicious, faulty=faulty, friend=friend,
            is_rebirth=is_rebirth,
        )
        if not malicious and self._selfish_fraction > 0.0:
            if self.rng.stream("selfish").random() < self._selfish_fraction:
                self._selfish.add(peer.address)
                if self._budget_factory is not None:
                    self._budgets[peer.address] = self._budget_factory()
        return peer

    def _on_death(self, peer):
        self._selfish.discard(peer.address)
        self._budgets.pop(peer.address, None)
        super()._on_death(peer)

    # ------------------------------------------------------------------
    # Query routing
    # ------------------------------------------------------------------

    def _query_burst(self, peer: GuessPeer) -> None:
        if peer.address not in self._selfish:
            super()._query_burst(peer)
            return
        now = self.engine.now
        if not peer.is_alive(now):
            return
        queries_rng = self.rng.stream("queries")
        size = self.bursts.burst_size(queries_rng)
        budget = self._budgets.get(peer.address)
        for _ in range(size):
            target = self.content.draw_query_target(queries_rng)
            result = execute_selfish_query(
                peer,
                target,
                self.transport,
                now,
                rng=self.rng.stream("policies"),
                desired_results=self.system.num_desired_results,
                budget=budget,
            )
            self._record_selfish(result, now)
        delay = self.bursts.next_burst_delay(queries_rng)
        if delay != float("inf"):
            self.engine.schedule_after(
                delay,
                lambda: self._query_burst(peer),
                priority=EventPriority.QUERY,
                label="selfish-burst",
            )

    def _record_selfish(self, result, time: float) -> None:
        if time < self.collector.warmup:
            return
        self._selfish_queries += 1
        if result.satisfied:
            self._selfish_satisfied += 1
        self._selfish_probes += result.probes
        if result.response_time is not None:
            self._selfish_rt_sum += result.response_time
            self._selfish_rt_count += 1
        if result.probes == 0 and not result.pool_exhausted:
            self._selfish_broke += 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @property
    def selfish_peers(self) -> Set[Address]:
        """Addresses of currently live selfish peers (copy)."""
        return set(self._selfish)

    def selfish_report(self) -> SelfishReport:
        """Summary of the selfish minority's own experience."""
        return SelfishReport(
            queries=self._selfish_queries,
            satisfied=self._selfish_satisfied,
            probes_per_query=ratio(self._selfish_probes, self._selfish_queries),
            mean_response_time=(
                self._selfish_rt_sum / self._selfish_rt_count
                if self._selfish_rt_count
                else None
            ),
            broke_queries=self._selfish_broke,
        )
