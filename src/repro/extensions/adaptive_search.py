"""Adaptive k-parallel probing (paper §6.2, left to future work).

    "A more sophisticated solution may adaptively increase k if
    successive sets of parallel probes are unsuccessful."

:func:`execute_adaptive_query` reuses the core candidate-pool machinery
but escalates the wave width: the query starts serial (or at
``initial_walkers``), and every ``escalation_period`` consecutive
result-free waves the width doubles, up to ``max_walkers``.  Popular
items keep the serial protocol's minimal cost; rare items trade bounded
extra probes for far better worst-case response time.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.entry import CacheEntry
from repro.core.messages import QueryReply
from repro.core.peer import GuessPeer
from repro.core.query_cache import QueryCache
from repro.core.search import CandidatePool, QueryResult
from repro.errors import ConfigError
from repro.network.transport import ProbeStatus, Transport


def execute_adaptive_query(
    peer: GuessPeer,
    target_file: int,
    transport: Transport,
    now: float,
    *,
    rng: random.Random,
    desired_results: int = 1,
    initial_walkers: int = 1,
    max_walkers: int = 32,
    escalation_period: int = 5,
) -> QueryResult:
    """Run one query with adaptively escalating parallelism.

    Args:
        initial_walkers: wave width at query start.
        max_walkers: escalation ceiling.
        escalation_period: consecutive result-free waves before the wave
            width doubles.

    Returns:
        A :class:`~repro.core.search.QueryResult`; ``duration`` reflects
        the escalated wave schedule.
    """
    if initial_walkers < 1:
        raise ConfigError(f"initial_walkers must be >= 1, got {initial_walkers}")
    if max_walkers < initial_walkers:
        raise ConfigError(
            f"max_walkers {max_walkers} must be >= initial_walkers "
            f"{initial_walkers}"
        )
    if escalation_period < 1:
        raise ConfigError(
            f"escalation_period must be >= 1, got {escalation_period}"
        )

    protocol = peer.protocol
    policies = peer.policies
    spacing = protocol.probe_spacing

    pool = CandidatePool(policies.query_probe, rng, now)
    link_entries = peer.link_cache.entries()
    for entry in link_entries:
        pool.add(entry)
    query_cache = QueryCache(
        owner=peer.address,
        excluded={entry.address for entry in link_entries},
    )

    message = peer.query_message(target_file)
    results = 0
    good = dead = refused = 0
    probes = 0
    waves = 0
    walkers = initial_walkers
    dry_waves = 0
    response_time: Optional[float] = None

    while results < desired_results:
        wave: list[CacheEntry] = []
        while len(wave) < walkers:
            entry = pool.pop()
            if entry is None:
                break
            wave.append(entry)
        if not wave:
            break
        wave_time = now + waves * spacing
        waves += 1
        wave_results = 0
        for entry in wave:
            address = entry.address
            query_cache.mark_seen(address)
            outcome = transport.probe(peer.address, address, message, wave_time)
            probes += 1
            if outcome.status is ProbeStatus.TIMEOUT:
                dead += 1
                peer.link_cache.evict(address)
                continue
            if outcome.status is ProbeStatus.REFUSED:
                refused += 1
                if not protocol.do_backoff:
                    peer.link_cache.evict(address)
                continue
            good += 1
            reply = outcome.response
            if not isinstance(reply, QueryReply):
                raise TypeError(f"query probe returned {reply!r}")
            entry.record_results(reply.num_results, wave_time)
            peer.link_cache.record_results(address, reply.num_results, wave_time)
            if reply.num_results > 0 and address not in peer.link_cache:
                peer.offer_entry_to_link_cache(entry, wave_time)
            wave_results += reply.num_results
            results += reply.num_results
            if results >= desired_results and response_time is None:
                response_time = (waves - 1) * spacing + outcome.rtt
            reset = policies.reset_num_results
            for shared in reply.pong.entries:
                imported = shared.copy_for_import(reset)
                if query_cache.add(imported):
                    pool.add(imported)
                    peer.offer_entry_to_link_cache(imported, wave_time)

        # Escalation: double the wave width after a dry spell.
        if wave_results == 0:
            dry_waves += 1
            if dry_waves >= escalation_period and walkers < max_walkers:
                walkers = min(max_walkers, walkers * 2)
                dry_waves = 0
        else:
            dry_waves = 0

    satisfied = results >= desired_results
    query_cache.clear()
    return QueryResult(
        satisfied=satisfied,
        results=results,
        probes=probes,
        good_probes=good,
        dead_probes=dead,
        refused_probes=refused,
        duration=waves * spacing,
        response_time=response_time if satisfied else None,
        pool_exhausted=not satisfied and len(pool) == 0,
    )
