"""Tests for the link cache."""

from __future__ import annotations

import random

import pytest

from repro.core.link_cache import LinkCache
from repro.core.policies import get_replacement_policy
from repro.errors import ConfigError
from tests.conftest import make_entry


@pytest.fixture
def rng():
    return random.Random(21)


@pytest.fixture
def random_replacement():
    return get_replacement_policy("Random")


@pytest.fixture
def lfs():
    return get_replacement_policy("LFS")


class TestBasics:
    def test_insert_and_lookup(self, random_replacement, rng):
        cache = LinkCache(capacity=3, owner=0)
        assert cache.insert(make_entry(1), random_replacement, 0.0, rng)
        assert 1 in cache
        assert cache.get(1).address == 1
        assert len(cache) == 1

    def test_own_address_refused(self, random_replacement, rng):
        cache = LinkCache(capacity=3, owner=7)
        assert not cache.insert(make_entry(7), random_replacement, 0.0, rng)
        assert 7 not in cache

    def test_duplicate_refused_and_fields_untouched(self, random_replacement, rng):
        """Paper §2.2: re-received entries do not update cached fields."""
        cache = LinkCache(capacity=3, owner=0)
        cache.insert(make_entry(1, ts=5.0, num_files=10), random_replacement, 0.0, rng)
        assert not cache.insert(
            make_entry(1, ts=99.0, num_files=999), random_replacement, 1.0, rng
        )
        assert cache.get(1).ts == 5.0
        assert cache.get(1).num_files == 10

    def test_capacity_validated(self):
        # Zero is legal (heterogeneous CacheSizing can assign it);
        # negative capacities are always a bug.
        with pytest.raises(ConfigError):
            LinkCache(capacity=-1, owner=0)

    def test_evict(self, random_replacement, rng):
        cache = LinkCache(capacity=3, owner=0)
        cache.insert(make_entry(1), random_replacement, 0.0, rng)
        assert cache.evict(1) is True
        assert cache.evict(1) is False
        assert 1 not in cache

    def test_clear(self, random_replacement, rng):
        cache = LinkCache(capacity=3, owner=0)
        cache.insert(make_entry(1), random_replacement, 0.0, rng)
        cache.clear()
        assert len(cache) == 0

    def test_entries_snapshot(self, random_replacement, rng):
        cache = LinkCache(capacity=5, owner=0)
        for a in (1, 2, 3):
            cache.insert(make_entry(a), random_replacement, 0.0, rng)
        snapshot = cache.entries()
        snapshot.clear()
        assert len(cache) == 3  # snapshot list, not the live store

    def test_addresses(self, random_replacement, rng):
        cache = LinkCache(capacity=5, owner=0)
        cache.insert(make_entry(2), random_replacement, 0.0, rng)
        cache.insert(make_entry(4), random_replacement, 0.0, rng)
        assert sorted(cache.addresses()) == [2, 4]


class TestEvictionContest:
    def test_full_cache_evicts_policy_victim(self, lfs, rng):
        cache = LinkCache(capacity=2, owner=0)
        cache.insert(make_entry(1, num_files=100), lfs, 0.0, rng)
        cache.insert(make_entry(2, num_files=5), lfs, 0.0, rng)
        assert cache.is_full
        # Newcomer with 50 files beats the 5-file resident under LFS.
        assert cache.insert(make_entry(3, num_files=50), lfs, 1.0, rng)
        assert 2 not in cache
        assert {1, 3} == set(cache.addresses())

    def test_losing_newcomer_rejected(self, lfs, rng):
        cache = LinkCache(capacity=2, owner=0)
        cache.insert(make_entry(1, num_files=100), lfs, 0.0, rng)
        cache.insert(make_entry(2, num_files=50), lfs, 0.0, rng)
        assert not cache.insert(make_entry(3, num_files=1), lfs, 1.0, rng)
        assert set(cache.addresses()) == {1, 2}
        assert len(cache) == 2

    def test_size_never_exceeds_capacity(self, random_replacement, rng):
        cache = LinkCache(capacity=4, owner=0)
        for a in range(1, 50):
            cache.insert(make_entry(a), random_replacement, 0.0, rng)
            assert len(cache) <= 4


class TestFieldUpdates:
    def test_touch_updates_ts(self, random_replacement, rng):
        cache = LinkCache(capacity=3, owner=0)
        cache.insert(make_entry(1, ts=0.0), random_replacement, 0.0, rng)
        cache.touch(1, 9.0)
        assert cache.get(1).ts == 9.0

    def test_touch_missing_is_noop(self, random_replacement, rng):
        LinkCache(capacity=3, owner=0).touch(5, 1.0)  # must not raise

    def test_record_results(self, random_replacement, rng):
        cache = LinkCache(capacity=3, owner=0)
        cache.insert(make_entry(1), random_replacement, 0.0, rng)
        cache.record_results(1, 3, 2.0)
        assert cache.get(1).num_res == 3
        assert cache.get(1).ts == 2.0

    def test_record_results_missing_is_noop(self, random_replacement, rng):
        LinkCache(capacity=3, owner=0).record_results(5, 1, 1.0)
