"""Tests for the GuessPeer.defense hooks in the core paths.

The hooks exist for :mod:`repro.extensions.detection`, but their
contract — provenance reported on import, dead/answer outcomes reported
from the search loop, blacklisted peers skipped everywhere — is core
behaviour and is tested here with a scriptable fake.
"""

from __future__ import annotations

import random

import pytest

from repro.core.messages import Pong
from repro.core.params import ProtocolParams
from repro.core.search import execute_query
from repro.network.transport import Transport
from tests.conftest import make_entry
from tests.core.helpers import make_peer


class FakeDefense:
    """Records every hook call; blocks a configurable address set."""

    def __init__(self, blocked=()):
        self._blocked = set(blocked)
        self.imports = []
        self.deaths = []
        self.answers = []

    def record_import(self, entry_address, source):
        self.imports.append((entry_address, source))

    def record_dead(self, address):
        self.deaths.append(address)

    def record_answer(self, address, num_results):
        self.answers.append((address, num_results))

    def blocked(self, address):
        return address in self._blocked


@pytest.fixture
def rng():
    return random.Random(41)


class TestImportHooks:
    def test_ping_pong_import_reports_provenance(self):
        peer = make_peer(1)
        peer.defense = FakeDefense()
        pong = Pong(sender=9, entries=(make_entry(5), make_entry(6)))
        peer.import_pong_to_link_cache(pong, 1.0)
        assert peer.defense.imports == [(5, 9), (6, 9)]

    def test_blocked_source_pong_ignored(self):
        peer = make_peer(1)
        peer.defense = FakeDefense(blocked={9})
        pong = Pong(sender=9, entries=(make_entry(5),))
        assert peer.import_pong_to_link_cache(pong, 1.0) == 0
        assert 5 not in peer.link_cache

    def test_blocked_entry_skipped_but_rest_imported(self):
        peer = make_peer(1)
        peer.defense = FakeDefense(blocked={5})
        pong = Pong(sender=9, entries=(make_entry(5), make_entry(6)))
        assert peer.import_pong_to_link_cache(pong, 1.0) == 1
        assert 5 not in peer.link_cache
        assert 6 in peer.link_cache

    def test_no_defense_means_plain_import(self):
        peer = make_peer(1)
        pong = Pong(sender=9, entries=(make_entry(5),))
        assert peer.import_pong_to_link_cache(pong, 1.0) == 1


class TestSearchHooks:
    def _network(self, defense):
        protocol = ProtocolParams(cache_size=20)
        querier = make_peer(0, protocol=protocol, library=frozenset())
        querier.defense = defense
        transport = Transport()
        transport.register(0, querier)
        dead_addr = 7  # never registered: probing it times out
        live = make_peer(3, protocol=protocol, library=frozenset({42}))
        transport.register(3, live)
        for address in (dead_addr, 3):
            querier.link_cache.insert(
                make_entry(address), querier.policies.replacement,
                0.0, querier._policy_rng,
            )
        return querier, transport

    def test_dead_and_answer_outcomes_reported(self, rng):
        defense = FakeDefense()
        querier, transport = self._network(defense)
        result = execute_query(querier, 42, transport, 0.0, rng=rng)
        assert result.satisfied
        assert defense.deaths in ([7], [])  # dead peer may not be probed
        if defense.deaths:
            assert defense.deaths == [7]
        assert (3, 1) in defense.answers or result.probes == 1

    def test_blocked_target_never_probed(self, rng):
        defense = FakeDefense(blocked={3})
        querier, transport = self._network(defense)
        result = execute_query(querier, 42, transport, 0.0, rng=rng)
        # The only owner is blacklisted: query cannot satisfy, and the
        # blocked peer was evicted without a probe.
        assert not result.satisfied
        assert 3 not in querier.link_cache
        assert transport.endpoint(3).probes_received == 0

    def test_blocked_pong_entries_not_pooled(self, rng):
        protocol = ProtocolParams(cache_size=20, pong_size=5)
        querier = make_peer(0, protocol=protocol, library=frozenset())
        querier.defense = FakeDefense(blocked={50})
        relay = make_peer(2, protocol=protocol, library=frozenset())
        owner_blocked = make_peer(50, protocol=protocol, library=frozenset({42}))
        transport = Transport()
        for peer in (querier, relay, owner_blocked):
            transport.register(peer.address, peer)
        relay.link_cache.insert(
            make_entry(50), relay.policies.replacement, 0.0, relay._policy_rng
        )
        querier.link_cache.insert(
            make_entry(2), querier.policies.replacement, 0.0,
            querier._policy_rng,
        )
        result = execute_query(querier, 42, transport, 0.0, rng=rng)
        # The pong pointed at the blocked owner; it must not be probed.
        assert not result.satisfied
        assert owner_blocked.probes_received == 0
