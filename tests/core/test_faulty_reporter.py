"""Tests for the faulty-reporter adversary and honest accounting."""

from __future__ import annotations

import random

import pytest

from repro.core.malicious import FaultyReporter
from repro.core.messages import Query
from repro.core.network_sim import GuessSimulation
from repro.core.params import ProtocolParams, SystemParams
from repro.core.policies import PolicySet


def make_faulty_reporter(
    address: int,
    *,
    report_mode: str = "inflate",
    report_offset: int = 3,
    library: frozenset[int] = frozenset({1, 2, 3}),
    seed: int = 0,
) -> FaultyReporter:
    """A standalone faulty reporter with self-contained RNGs."""
    protocol = ProtocolParams(cache_size=10).normalized()
    return FaultyReporter(
        address,
        report_mode=report_mode,
        report_offset=report_offset,
        num_files=len(library),
        library=library,
        birth_time=0.0,
        death_time=1e9,
        protocol=protocol,
        policies=PolicySet.from_protocol(protocol),
        max_probes_per_second=None,
        policy_rng=random.Random(seed),
        intro_rng=random.Random(seed + 1),
    )


class TestFaultyReporterReplies:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            make_faulty_reporter(1, report_mode="exaggerate")
        with pytest.raises(ValueError):
            make_faulty_reporter(1, report_offset=0)

    def test_is_faulty_not_malicious(self):
        peer = make_faulty_reporter(1)
        assert peer.faulty is True
        assert peer.malicious is False

    def test_inflate_adds_offset_and_carries_truth(self):
        peer = make_faulty_reporter(1, report_offset=5)
        _, reply = peer.receive_probe(Query(sender=2, target_file=1), 1.0)
        assert reply.num_results == 1 + 5  # owns file 1, claims 6
        assert reply.true_results == 1
        assert reply.verified_results == 1

    def test_inflate_claims_results_even_without_a_match(self):
        peer = make_faulty_reporter(1, report_offset=3)
        _, reply = peer.receive_probe(Query(sender=2, target_file=99), 1.0)
        assert reply.num_results == 3
        assert reply.true_results == 0
        assert reply.verified_results == 0

    def test_suppress_claims_zero_and_carries_truth(self):
        peer = make_faulty_reporter(1, report_mode="suppress")
        _, reply = peer.receive_probe(Query(sender=2, target_file=1), 1.0)
        assert reply.num_results == 0
        assert reply.true_results == 1
        assert peer.suppresses_gossip is True

    def test_suppressing_a_zero_is_not_a_lie(self):
        """A suppressed no-match reply is the honest reply: no
        ``true_results`` tag, so collectors don't count a falsification."""
        peer = make_faulty_reporter(1, report_mode="suppress")
        _, reply = peer.receive_probe(Query(sender=2, target_file=99), 1.0)
        assert reply.num_results == 0
        assert reply.true_results is None

    def test_inflaters_do_not_suppress_gossip(self):
        assert make_faulty_reporter(1).suppresses_gossip is False


def run_sim(seed=13, *, percent_faulty=0.0, mode="inflate", offset=3):
    sim = GuessSimulation(
        SystemParams(
            network_size=80,
            percent_faulty_reporters=percent_faulty,
            faulty_reporter_mode=mode,
            faulty_report_offset=offset,
        ),
        ProtocolParams(cache_size=20),
        seed=seed,
    )
    sim.run(200.0)
    return sim.report()


class TestHonestAccounting:
    def test_inflaters_inflate_only_the_claimed_channel(self):
        report = run_sim(percent_faulty=30.0, mode="inflate")
        assert report.queries > 0
        assert report.results_per_query > report.honest_results_per_query
        assert report.satisfaction_rate >= report.honest_satisfaction_rate

    def test_suppressors_deflate_the_claimed_channel(self):
        report = run_sim(percent_faulty=30.0, mode="suppress")
        assert report.queries > 0
        assert report.results_per_query < report.honest_results_per_query

    def test_bigger_offset_claims_more(self):
        small = run_sim(percent_faulty=30.0, offset=1)
        large = run_sim(percent_faulty=30.0, offset=10)
        assert large.results_per_query > small.results_per_query
        # The honest channel ignores the offset entirely.
        assert large.honest_results_per_query == pytest.approx(
            small.honest_results_per_query
        )

    def test_no_reporters_means_channels_agree(self):
        report = run_sim(percent_faulty=0.0)
        assert report.honest_results_per_query == report.results_per_query
        assert report.honest_satisfaction_rate == report.satisfaction_rate

    def test_reporter_population_is_deterministic(self):
        a = run_sim(percent_faulty=20.0, mode="suppress")
        b = run_sim(percent_faulty=20.0, mode="suppress")
        assert a == b

    def test_params_reject_overfull_adversary_mix(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            SystemParams(
                network_size=50,
                percent_bad_peers=60.0,
                percent_faulty_reporters=50.0,
            )
