"""Tests for the query-execution loop."""

from __future__ import annotations

import random

import pytest

from repro.core.params import ProtocolParams
from repro.core.policies import get_ordering_policy
from repro.core.search import CandidatePool, execute_query
from repro.network.transport import Transport
from tests.conftest import make_entry
from tests.core.helpers import make_peer


@pytest.fixture
def rng():
    return random.Random(13)


def wire(querier, others, protocol_timeout=0.2):
    """Register peers on a fresh transport."""
    transport = Transport(timeout=protocol_timeout)
    transport.register(querier.address, querier)
    for peer in others:
        transport.register(peer.address, peer)
    return transport


def cache_entries_for(querier, peers):
    """Put entries for ``peers`` into the querier's link cache."""
    for peer in peers:
        querier.link_cache.insert(
            make_entry(peer.address, num_files=peer.num_files),
            querier.policies.replacement,
            0.0,
            querier._policy_rng,
        )


class TestCandidatePool:
    def test_key_policy_pops_best_first(self, rng):
        pool = CandidatePool(get_ordering_policy("MFS"), rng, 0.0)
        pool.add(make_entry(1, num_files=5))
        pool.add(make_entry(2, num_files=50))
        pool.add(make_entry(3, num_files=20))
        assert [pool.pop().address for _ in range(3)] == [2, 3, 1]
        assert pool.pop() is None

    def test_random_policy_pops_everything(self, rng):
        pool = CandidatePool(get_ordering_policy("Random"), rng, 0.0)
        for a in range(10):
            pool.add(make_entry(a))
        popped = {pool.pop().address for _ in range(10)}
        assert popped == set(range(10))
        assert pool.pop() is None

    def test_len(self, rng):
        pool = CandidatePool(get_ordering_policy("MR"), rng, 0.0)
        pool.add(make_entry(1))
        pool.add(make_entry(2))
        assert len(pool) == 2
        pool.pop()
        assert len(pool) == 1

    def test_dynamic_insert_during_pops(self, rng):
        pool = CandidatePool(get_ordering_policy("MFS"), rng, 0.0)
        pool.add(make_entry(1, num_files=10))
        assert pool.pop().address == 1
        pool.add(make_entry(2, num_files=99))
        assert pool.pop().address == 2


class TestQueryBasics:
    def test_satisfied_on_first_owner(self, rng):
        querier = make_peer(0, library=frozenset())
        owner = make_peer(1, library=frozenset({42}))
        transport = wire(querier, [owner])
        cache_entries_for(querier, [owner])
        result = execute_query(querier, 42, transport, 0.0, rng=rng)
        assert result.satisfied
        assert result.results == 1
        assert result.probes == 1
        assert result.good_probes == 1
        assert result.response_time is not None

    def test_unsatisfied_when_nobody_owns(self, rng):
        querier = make_peer(0, library=frozenset())
        others = [make_peer(i, library=frozenset({7})) for i in (1, 2, 3)]
        transport = wire(querier, others)
        cache_entries_for(querier, others)
        result = execute_query(querier, 42, transport, 0.0, rng=rng)
        assert not result.satisfied
        assert result.probes == 3
        assert result.pool_exhausted
        assert result.response_time is None

    def test_empty_cache_means_zero_probes(self, rng):
        querier = make_peer(0)
        transport = wire(querier, [])
        result = execute_query(querier, 42, transport, 0.0, rng=rng)
        assert result.probes == 0
        assert not result.satisfied

    def test_dead_target_counted_and_evicted(self, rng):
        querier = make_peer(0)
        dead = make_peer(1, death_time=5.0)
        transport = wire(querier, [dead])
        cache_entries_for(querier, [dead])
        result = execute_query(querier, 42, transport, 10.0, rng=rng)
        assert result.dead_probes == 1
        assert 1 not in querier.link_cache

    def test_desired_results_greater_than_one(self, rng):
        querier = make_peer(0, library=frozenset())
        owners = [make_peer(i, library=frozenset({42})) for i in (1, 2, 3)]
        transport = wire(querier, owners)
        cache_entries_for(querier, owners)
        result = execute_query(
            querier, 42, transport, 0.0, rng=rng, desired_results=2
        )
        assert result.satisfied
        assert result.results == 2
        assert result.probes == 2

    def test_max_probes_cap(self, rng):
        querier = make_peer(0, library=frozenset())
        others = [make_peer(i, library=frozenset()) for i in range(1, 9)]
        transport = wire(querier, others)
        cache_entries_for(querier, others)
        result = execute_query(
            querier, 42, transport, 0.0, rng=rng, max_probes=3
        )
        assert result.probes == 3
        assert not result.satisfied
        assert not result.pool_exhausted


class TestPongChaining:
    def test_query_cache_extends_reach(self, rng):
        """The querier only caches peer 1, but 1's pong points at owner 2."""
        protocol = ProtocolParams(cache_size=10, pong_size=5)
        querier = make_peer(0, protocol=protocol, library=frozenset())
        relay = make_peer(1, protocol=protocol, library=frozenset())
        owner = make_peer(2, protocol=protocol, library=frozenset({42}))
        relay.link_cache.insert(
            make_entry(2, num_files=5),
            relay.policies.replacement, 0.0, relay._policy_rng,
        )
        transport = wire(querier, [relay, owner])
        cache_entries_for(querier, [relay])
        result = execute_query(querier, 42, transport, 0.0, rng=rng)
        assert result.satisfied
        assert result.probes == 2

    def test_no_duplicate_probes(self, rng):
        """Pongs pointing back at probed/cached peers must not re-probe."""
        protocol = ProtocolParams(cache_size=10, pong_size=5)
        querier = make_peer(0, protocol=protocol, library=frozenset())
        a = make_peer(1, protocol=protocol, library=frozenset())
        b = make_peer(2, protocol=protocol, library=frozenset())
        # a and b point at each other: the pong chain cycles.
        a.link_cache.insert(make_entry(2), a.policies.replacement, 0.0, a._policy_rng)
        b.link_cache.insert(make_entry(1), b.policies.replacement, 0.0, b._policy_rng)
        transport = wire(querier, [a, b])
        cache_entries_for(querier, [a, b])
        result = execute_query(querier, 42, transport, 0.0, rng=rng)
        assert result.probes == 2  # each probed exactly once

    def test_productive_query_cache_entry_graduates(self, rng):
        protocol = ProtocolParams(cache_size=10, pong_size=5)
        querier = make_peer(0, protocol=protocol, library=frozenset())
        relay = make_peer(1, protocol=protocol, library=frozenset())
        owner = make_peer(2, protocol=protocol, library=frozenset({42}))
        relay.link_cache.insert(
            make_entry(2), relay.policies.replacement, 0.0, relay._policy_rng
        )
        transport = wire(querier, [relay, owner])
        cache_entries_for(querier, [relay])
        execute_query(querier, 42, transport, 0.0, rng=rng)
        # The owner answered; it should now be in the querier's link cache
        # with its NumRes recorded.
        entry = querier.link_cache.get(2)
        assert entry is not None
        assert entry.num_res == 1


class TestCapacityAndBackoff:
    def _overloaded_pair(self, do_backoff):
        protocol = ProtocolParams(cache_size=10, do_backoff=do_backoff)
        querier = make_peer(0, protocol=protocol, library=frozenset())
        busy = make_peer(1, protocol=protocol, max_probes_per_second=0)
        transport = wire(querier, [busy])
        cache_entries_for(querier, [busy])
        return querier, busy, transport

    def test_refused_probe_counted(self, rng):
        querier, _, transport = self._overloaded_pair(do_backoff=False)
        result = execute_query(querier, 42, transport, 0.0, rng=rng)
        assert result.refused_probes == 1

    def test_refusal_evicts_without_backoff(self, rng):
        querier, _, transport = self._overloaded_pair(do_backoff=False)
        execute_query(querier, 42, transport, 0.0, rng=rng)
        assert 1 not in querier.link_cache

    def test_refusal_keeps_entry_with_backoff(self, rng):
        querier, _, transport = self._overloaded_pair(do_backoff=True)
        execute_query(querier, 42, transport, 0.0, rng=rng)
        assert 1 in querier.link_cache


class TestTimingAndParallelism:
    def test_serial_probe_spacing(self, rng):
        protocol = ProtocolParams(cache_size=10, probe_spacing=0.2)
        querier = make_peer(0, protocol=protocol, library=frozenset())
        others = [make_peer(i, library=frozenset()) for i in range(1, 6)]
        transport = wire(querier, others)
        cache_entries_for(querier, others)
        result = execute_query(querier, 42, transport, 0.0, rng=rng)
        assert result.probes == 5
        assert result.duration == pytest.approx(0.2 * 5)

    def test_parallel_probes_shrink_duration(self, rng):
        protocol = ProtocolParams(
            cache_size=10, probe_spacing=0.2, parallel_probes=5
        )
        querier = make_peer(0, protocol=protocol, library=frozenset())
        others = [make_peer(i, library=frozenset()) for i in range(1, 6)]
        transport = wire(querier, others)
        cache_entries_for(querier, others)
        result = execute_query(querier, 42, transport, 0.0, rng=rng)
        assert result.probes == 5
        # 5 probes in one wave of 5 walkers: duration one spacing.
        assert result.duration == pytest.approx(0.2)

    def test_response_time_reflects_wave_position(self, rng):
        protocol = ProtocolParams(
            cache_size=10, probe_spacing=0.2, parallel_probes=2,
            query_probe="MFS",
        )
        querier = make_peer(0, protocol=protocol, library=frozenset())
        misses = [
            make_peer(i, library=frozenset(), num_files=100 - i)
            for i in range(1, 4)
        ]
        owner = make_peer(9, library=frozenset({42}), num_files=1)
        transport = wire(querier, misses + [owner])
        cache_entries_for(querier, misses + [owner])
        result = execute_query(querier, 42, transport, 0.0, rng=rng)
        # Owner has fewest files -> probed last (4th probe, wave index 1).
        assert result.satisfied
        assert result.response_time == pytest.approx(0.2 + transport._latency(0, 9))

    def test_probe_timestamps_respect_mid_query_death(self, rng):
        """A peer dying between waves must not answer a later probe."""
        protocol = ProtocolParams(
            cache_size=10, probe_spacing=1.0, query_probe="MFS"
        )
        querier = make_peer(0, protocol=protocol, library=frozenset())
        early = make_peer(1, library=frozenset(), num_files=100)
        dies_mid_query = make_peer(
            2, library=frozenset({42}), num_files=1, death_time=0.5
        )
        transport = wire(querier, [early, dies_mid_query])
        cache_entries_for(querier, [early, dies_mid_query])
        result = execute_query(querier, 42, transport, 0.0, rng=rng)
        # Probe to peer 2 happens at t=1.0 > death at 0.5 -> dead probe.
        assert not result.satisfied
        assert result.dead_probes == 1
