"""Tests for cache entries."""

from __future__ import annotations

import pytest

from repro.core.entry import CacheEntry


class TestCopy:
    def test_copy_is_independent(self):
        original = CacheEntry(address=1, ts=5.0, num_files=10, num_res=2)
        duplicate = original.copy()
        duplicate.ts = 99.0
        duplicate.num_res = 7
        assert original.ts == 5.0
        assert original.num_res == 2

    def test_copy_preserves_fields(self):
        entry = CacheEntry(address=3, ts=1.5, num_files=42, num_res=6)
        copy = entry.copy()
        assert (copy.address, copy.ts, copy.num_files, copy.num_res) == (
            3, 1.5, 42, 6,
        )

    def test_copy_for_import_resets_num_res(self):
        entry = CacheEntry(address=1, ts=2.0, num_files=5, num_res=9)
        imported = entry.copy_for_import(reset_num_results=True)
        assert imported.num_res == 0
        assert imported.num_files == 5  # only NumRes is distrusted

    def test_copy_for_import_without_reset(self):
        entry = CacheEntry(address=1, num_res=9)
        assert entry.copy_for_import(reset_num_results=False).num_res == 9


class TestTouch:
    def test_touch_advances_ts(self):
        entry = CacheEntry(address=1, ts=1.0)
        entry.touch(5.0)
        assert entry.ts == 5.0

    def test_touch_is_monotone(self):
        # Virtual probe timestamps can arrive out of order; TS must not
        # roll back.
        entry = CacheEntry(address=1, ts=10.0)
        entry.touch(4.0)
        assert entry.ts == 10.0


class TestRecordResults:
    def test_sets_num_res_and_ts(self):
        entry = CacheEntry(address=1, ts=0.0, num_res=5)
        entry.record_results(2, now=3.0)
        assert entry.num_res == 2
        assert entry.ts == 3.0

    def test_zero_results_resets(self):
        entry = CacheEntry(address=1, num_res=5)
        entry.record_results(0, now=1.0)
        assert entry.num_res == 0

    def test_negative_results_rejected(self):
        with pytest.raises(ValueError):
            CacheEntry(address=1).record_results(-1, now=1.0)
