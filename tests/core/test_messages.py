"""Tests for wire messages."""

from __future__ import annotations

from repro.core.messages import Ping, Pong, Query, QueryReply, Refusal
from tests.conftest import make_entry


class TestMessages:
    def test_ping_fields(self):
        ping = Ping(sender=3, sender_num_files=7)
        assert ping.sender == 3
        assert ping.sender_num_files == 7

    def test_query_fields(self):
        query = Query(sender=1, target_file=42, sender_num_files=5)
        assert query.target_file == 42

    def test_pong_coerces_entries_to_tuple(self):
        pong = Pong(sender=1, entries=[make_entry(2), make_entry(3)])
        assert isinstance(pong.entries, tuple)
        assert [e.address for e in pong.entries] == [2, 3]

    def test_pong_default_empty(self):
        assert Pong(sender=1).entries == ()

    def test_query_reply_carries_pong(self):
        pong = Pong(sender=2, entries=(make_entry(9),))
        reply = QueryReply(sender=2, num_results=1, pong=pong)
        assert reply.num_results == 1
        assert reply.pong.entries[0].address == 9

    def test_refusal(self):
        assert Refusal(sender=5).sender == 5

    def test_messages_are_frozen(self):
        ping = Ping(sender=1)
        try:
            ping.sender = 2
            raised = False
        except AttributeError:
            raised = True
        assert raised
