"""Tests for the policy framework and concrete policies."""

from __future__ import annotations

import random

import pytest

from repro.core.params import ProtocolParams
from repro.core.policies import (
    REPLACEMENT_KEY_POLICY,
    PolicySet,
    get_ordering_policy,
    get_replacement_policy,
    registered_policy_names,
)
from repro.errors import PolicyError
from tests.conftest import make_entry


@pytest.fixture
def rng():
    return random.Random(17)


@pytest.fixture
def entries():
    """Entries with distinguishable fields for every policy."""
    return [
        make_entry(1, ts=10.0, num_files=500, num_res=0),
        make_entry(2, ts=50.0, num_files=5, num_res=3),
        make_entry(3, ts=30.0, num_files=100, num_res=1),
        make_entry(4, ts=5.0, num_files=50, num_res=2),
    ]


class TestRegistry:
    def test_all_policies_registered(self):
        assert registered_policy_names() == ["LRU", "MFS", "MR", "MRU", "Random"]

    def test_unknown_ordering_policy(self):
        with pytest.raises(PolicyError):
            get_ordering_policy("bogus")

    def test_unknown_replacement_policy(self):
        with pytest.raises(PolicyError):
            get_replacement_policy("bogus")

    def test_star_resolves_to_base(self):
        assert get_ordering_policy("MR*").name == "MR"

    def test_replacement_reversal_table(self):
        # Replacement names are what gets *evicted*; the key policy is
        # the retain-goal's ordering.
        assert REPLACEMENT_KEY_POLICY["LFS"] == "MFS"
        assert REPLACEMENT_KEY_POLICY["LR"] == "MR"
        assert REPLACEMENT_KEY_POLICY["LRU"] == "MRU"
        assert REPLACEMENT_KEY_POLICY["MRU"] == "LRU"


class TestOrderingSemantics:
    def test_mru_prefers_recent(self, entries, rng):
        policy = get_ordering_policy("MRU")
        assert policy.select_best(entries, 100.0, rng).address == 2

    def test_lru_prefers_stale(self, entries, rng):
        policy = get_ordering_policy("LRU")
        assert policy.select_best(entries, 100.0, rng).address == 4

    def test_mfs_prefers_many_files(self, entries, rng):
        policy = get_ordering_policy("MFS")
        assert policy.select_best(entries, 100.0, rng).address == 1

    def test_mr_prefers_many_results(self, entries, rng):
        policy = get_ordering_policy("MR")
        assert policy.select_best(entries, 100.0, rng).address == 2

    def test_order_is_sorted_by_key(self, entries, rng):
        policy = get_ordering_policy("MFS")
        ordered = policy.order(entries, 100.0, rng)
        assert [e.address for e in ordered] == [1, 3, 4, 2]

    def test_select_top_k(self, entries, rng):
        policy = get_ordering_policy("MFS")
        top2 = policy.select_top(entries, 2, 100.0, rng)
        assert [e.address for e in top2] == [1, 3]

    def test_select_top_zero(self, entries, rng):
        assert get_ordering_policy("MFS").select_top(entries, 0, 0.0, rng) == []

    def test_select_best_empty(self, rng):
        assert get_ordering_policy("MFS").select_best([], 0.0, rng) is None

    def test_deterministic_tiebreak_on_address(self, rng):
        policy = get_ordering_policy("MFS")
        tied = [make_entry(7, num_files=10), make_entry(3, num_files=10)]
        assert policy.select_best(tied, 0.0, rng).address == 3


class TestEvictionSemantics:
    def test_lfs_evicts_fewest_files(self, entries, rng):
        policy = get_replacement_policy("LFS")
        assert policy.choose_victim(entries, 100.0, rng).address == 2

    def test_lr_evicts_fewest_results(self, entries, rng):
        policy = get_replacement_policy("LR")
        assert policy.choose_victim(entries, 100.0, rng).address == 1

    def test_lru_evicts_stalest(self, entries, rng):
        policy = get_replacement_policy("LRU")
        assert policy.choose_victim(entries, 100.0, rng).address == 4

    def test_mru_evicts_freshest(self, entries, rng):
        policy = get_replacement_policy("MRU")
        assert policy.choose_victim(entries, 100.0, rng).address == 2

    def test_choose_victim_empty(self, rng):
        assert get_replacement_policy("LFS").choose_victim([], 0.0, rng) is None


class TestRandomPolicy:
    def test_randomized_flag(self):
        assert get_ordering_policy("Random").randomized is True
        assert get_ordering_policy("MFS").randomized is False

    def test_select_best_uniform(self, entries):
        policy = get_ordering_policy("Random")
        rng = random.Random(0)
        picks = {policy.select_best(entries, 0.0, rng).address for _ in range(200)}
        assert picks == {1, 2, 3, 4}

    def test_order_is_permutation(self, entries):
        policy = get_ordering_policy("Random")
        ordered = policy.order(entries, 0.0, random.Random(1))
        assert sorted(e.address for e in ordered) == [1, 2, 3, 4]

    def test_select_top_k_distinct(self, entries):
        policy = get_ordering_policy("Random")
        top = policy.select_top(entries, 3, 0.0, random.Random(2))
        addresses = [e.address for e in top]
        assert len(addresses) == 3
        assert len(set(addresses)) == 3

    def test_select_top_k_larger_than_pool(self, entries):
        policy = get_ordering_policy("Random")
        top = policy.select_top(entries, 10, 0.0, random.Random(3))
        assert sorted(e.address for e in top) == [1, 2, 3, 4]

    def test_victim_uniform(self, entries):
        policy = get_replacement_policy("Random")
        rng = random.Random(4)
        victims = {policy.choose_victim(entries, 0.0, rng).address for _ in range(200)}
        assert victims == {1, 2, 3, 4}


class TestPolicySet:
    def test_from_protocol_default(self):
        policies = PolicySet.from_protocol(ProtocolParams())
        assert policies.query_probe.name == "Random"
        assert policies.replacement.name == "Random"
        assert policies.reset_num_results is False

    def test_from_protocol_mfs_lfs(self):
        policies = PolicySet.from_protocol(
            ProtocolParams(query_pong="MFS", cache_replacement="LFS")
        )
        assert policies.query_pong.name == "MFS"
        assert policies.replacement.name == "MFS"  # LFS key = MFS ordering

    def test_from_protocol_star_sets_reset(self):
        policies = PolicySet.from_protocol(ProtocolParams(query_probe="MR*"))
        assert policies.query_probe.name == "MR"
        assert policies.reset_num_results is True


class TestChooseVictimFrom:
    """The no-copy eviction contest must mirror the combined-list one.

    ``choose_victim_from(residents, n, candidate, ...)`` is the hot-path
    replacement for ``choose_victim(list(residents) + [candidate], ...)``
    — same victim, same RNG consumption — for every registered policy
    and for custom subclasses that only override ``choose_victim``.
    """

    @pytest.mark.parametrize(
        "name", ["LFS", "LR", "LR*", "LRU", "MRU", "Random"]
    )
    def test_matches_combined_list_spelling(self, name, entries):
        policy = get_replacement_policy(name)
        candidate = make_entry(9, ts=20.0, num_files=75, num_res=1)
        rng_a = random.Random(99)
        rng_b = random.Random(99)
        expected = policy.choose_victim(entries + [candidate], 60.0, rng_a)
        actual = policy.choose_victim_from(
            entries, len(entries), candidate, 60.0, rng_b
        )
        assert actual is expected or actual == expected
        # Identical RNG consumption: the streams stay in lockstep.
        assert rng_a.random() == rng_b.random()

    def test_candidate_can_be_the_victim(self, entries):
        policy = get_replacement_policy("LRU")
        # LRU evicts the oldest ts; make the candidate oldest.
        candidate = make_entry(9, ts=1.0)
        victim = policy.choose_victim_from(
            entries, len(entries), candidate, 60.0, random.Random(0)
        )
        assert victim is candidate

    def test_custom_subclass_fallback(self, entries):
        """Overriding only choose_victim still works through the base."""
        from repro.core.policies import Policy

        class EvictHighestAddress(Policy):
            def key(self, entry, now):
                return 0.0

            def choose_victim(self, contestants, now, rng):
                return max(contestants, key=lambda e: e.address)

        policy = EvictHighestAddress()
        candidate = make_entry(999)
        victim = policy.choose_victim_from(
            entries, len(entries), candidate, 0.0, random.Random(0)
        )
        assert victim is candidate
