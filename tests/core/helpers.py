"""Shared construction helpers for core-protocol tests."""

from __future__ import annotations

import random

from repro.core.malicious import AttackDirectory, MaliciousPeer
from repro.core.params import BadPongBehavior, ProtocolParams
from repro.core.peer import GuessPeer
from repro.core.policies import PolicySet
from repro.resilience.policy import ResiliencePolicy


def make_peer(
    address: int,
    *,
    protocol: ProtocolParams | None = None,
    num_files: int = 10,
    library: frozenset[int] = frozenset({1, 2, 3}),
    birth_time: float = 0.0,
    death_time: float = 1e9,
    max_probes_per_second: int | None = None,
    seed: int = 0,
    resilience: ResiliencePolicy | None = None,
    cache_capacity: int | None = None,
) -> GuessPeer:
    """A standalone good peer with self-contained RNGs."""
    protocol = (protocol or ProtocolParams(cache_size=10)).normalized()
    return GuessPeer(
        address,
        num_files=num_files,
        library=library,
        birth_time=birth_time,
        death_time=death_time,
        protocol=protocol,
        policies=PolicySet.from_protocol(protocol),
        max_probes_per_second=max_probes_per_second,
        policy_rng=random.Random(seed),
        intro_rng=random.Random(seed + 1),
        resilience=resilience,
        cache_capacity=cache_capacity,
    )


def make_malicious_peer(
    address: int,
    *,
    behavior: BadPongBehavior = BadPongBehavior.DEAD,
    directory: AttackDirectory | None = None,
    protocol: ProtocolParams | None = None,
    seed: int = 0,
) -> MaliciousPeer:
    """A standalone malicious peer."""
    protocol = (protocol or ProtocolParams(cache_size=10)).normalized()
    return MaliciousPeer(
        address,
        behavior=behavior,
        directory=directory or AttackDirectory(ghost_addresses=[9001, 9002]),
        attack_rng=random.Random(seed + 2),
        num_files=0,
        library=frozenset(),
        birth_time=0.0,
        death_time=1e9,
        protocol=protocol,
        policies=PolicySet.from_protocol(protocol),
        max_probes_per_second=None,
        policy_rng=random.Random(seed),
        intro_rng=random.Random(seed + 1),
    )
