"""Tests for SystemParams / ProtocolParams — asserts the paper's Tables 1-2."""

from __future__ import annotations

import pytest

from repro.core.params import (
    BadPongBehavior,
    ProtocolParams,
    SystemParams,
    default_cache_seed_size,
)
from repro.errors import ConfigError


class TestTable1Defaults:
    """The defaults must match paper Table 1 exactly."""

    def test_defaults(self):
        params = SystemParams()
        assert params.network_size == 1000
        assert params.num_desired_results == 1
        assert params.lifespan_multiplier == 1.0
        assert params.query_rate == pytest.approx(9.26e-3)
        assert params.max_probes_per_second == 100
        assert params.percent_bad_peers == 0.0
        assert params.bad_pong_behavior is BadPongBehavior.DEAD


class TestTable2Defaults:
    """The defaults must match paper Table 2 exactly."""

    def test_defaults(self):
        params = ProtocolParams()
        assert params.query_probe == "Random"
        assert params.query_pong == "Random"
        assert params.ping_probe == "Random"
        assert params.ping_pong == "Random"
        assert params.cache_replacement == "Random"
        assert params.ping_interval == 30.0
        assert params.cache_size == 100
        assert params.reset_num_results is False
        assert params.do_backoff is False
        assert params.pong_size == 5
        assert params.intro_prob == pytest.approx(0.1)


class TestSystemValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"network_size": 1},
            {"num_desired_results": 0},
            {"lifespan_multiplier": 0.0},
            {"query_rate": -1.0},
            {"max_probes_per_second": 0},
            {"percent_bad_peers": -1.0},
            {"percent_bad_peers": 101.0},
            {"bad_pong_behavior": "Dead"},  # must be the enum
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigError):
            SystemParams(**kwargs)

    def test_unlimited_capacity_allowed(self):
        assert SystemParams(max_probes_per_second=None).max_probes_per_second is None

    def test_bad_fraction(self):
        assert SystemParams(percent_bad_peers=20.0).bad_peer_fraction == 0.2

    def test_with_(self):
        params = SystemParams().with_(network_size=500)
        assert params.network_size == 500
        assert params.query_rate == pytest.approx(9.26e-3)


class TestProtocolValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"query_probe": "LFS"},          # replacement-only name
            {"query_pong": "bogus"},
            {"cache_replacement": "MFS"},    # ordering-only name
            {"ping_interval": 0.0},
            {"cache_size": 0},
            {"pong_size": -1},
            {"intro_prob": 1.5},
            {"probe_spacing": 0.0},
            {"parallel_probes": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigError):
            ProtocolParams(**kwargs)

    def test_star_policies_accepted(self):
        assert ProtocolParams(query_probe="MR*").query_probe == "MR*"
        assert ProtocolParams(cache_replacement="LR*").cache_replacement == "LR*"


class TestNormalization:
    def test_starred_policy_sets_reset_flag(self):
        params = ProtocolParams(query_probe="MR*").normalized()
        assert params.query_probe == "MR"
        assert params.reset_num_results is True

    def test_unstarred_unchanged(self):
        params = ProtocolParams(query_probe="MR")
        assert params.normalized() is params

    def test_replacement_star_normalises(self):
        params = ProtocolParams(cache_replacement="LR*").normalized()
        assert params.cache_replacement == "LR"
        assert params.reset_num_results is True

    def test_uses_starred_policy(self):
        assert ProtocolParams(query_pong="MR*").uses_starred_policy()
        assert not ProtocolParams(query_pong="MR").uses_starred_policy()


class TestAllSamePolicy:
    def test_mfs_maps_replacement_to_lfs(self):
        params = ProtocolParams.all_same_policy("MFS")
        assert params.query_probe == "MFS"
        assert params.query_pong == "MFS"
        assert params.ping_probe == "Random"   # pings stay Random (§6.4)
        assert params.ping_pong == "Random"
        assert params.cache_replacement == "LFS"

    def test_mru_swaps_to_lru(self):
        assert ProtocolParams.all_same_policy("MRU").cache_replacement == "LRU"
        assert ProtocolParams.all_same_policy("LRU").cache_replacement == "MRU"

    def test_mr_star(self):
        params = ProtocolParams.all_same_policy("MR*").normalized()
        assert params.query_probe == "MR"
        assert params.cache_replacement == "LR"
        assert params.reset_num_results is True

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            ProtocolParams.all_same_policy("LFS")

    def test_overrides_forwarded(self):
        params = ProtocolParams.all_same_policy("MFS", cache_size=50)
        assert params.cache_size == 50


class TestCacheSeedSize:
    def test_paper_rule(self):
        assert default_cache_seed_size(1000) == 10
        assert default_cache_seed_size(5000) == 50

    def test_floor_of_two(self):
        assert default_cache_seed_size(50) == 2

    def test_tiny_network_rejected(self):
        with pytest.raises(ConfigError):
            default_cache_seed_size(1)
