"""Tests for the good-peer behaviour."""

from __future__ import annotations

import pytest

from repro.core.messages import Ping, Pong, Query, QueryReply, Refusal
from repro.core.params import ProtocolParams
from tests.conftest import make_entry
from tests.core.helpers import make_peer


class TestLiveness:
    def test_alive_within_lifetime(self):
        peer = make_peer(1, birth_time=10.0, death_time=20.0)
        assert not peer.is_alive(9.9)
        assert peer.is_alive(10.0)
        assert peer.is_alive(19.9)
        assert not peer.is_alive(20.0)

    def test_death_must_follow_birth(self):
        with pytest.raises(ValueError):
            make_peer(1, birth_time=5.0, death_time=5.0)


class TestPingHandling:
    def test_ping_returns_pong(self):
        peer = make_peer(1)
        accepted, response = peer.receive_probe(Ping(sender=2), 1.0)
        assert accepted
        assert isinstance(response, Pong)
        assert peer.pings_received == 1

    def test_pong_entries_are_copies(self):
        peer = make_peer(1)
        cached = make_entry(5, ts=1.0, num_files=3)
        peer.link_cache.insert(cached, peer.policies.replacement, 0.0, peer._policy_rng)
        _, pong = peer.receive_probe(Ping(sender=2), 1.0)
        pong.entries[0].ts = 999.0
        assert peer.link_cache.get(5).ts == 1.0

    def test_pong_respects_pong_size(self):
        protocol = ProtocolParams(cache_size=20, pong_size=3)
        peer = make_peer(1, protocol=protocol)
        for a in range(2, 12):
            peer.link_cache.insert(
                make_entry(a), peer.policies.replacement, 0.0, peer._policy_rng
            )
        _, pong = peer.receive_probe(Ping(sender=99), 1.0)
        assert len(pong.entries) == 3

    def test_pong_from_empty_cache(self):
        peer = make_peer(1)
        _, pong = peer.receive_probe(Ping(sender=2), 1.0)
        assert pong.entries == ()


class TestQueryHandling:
    def test_match_returns_result(self):
        peer = make_peer(1, library=frozenset({42}))
        accepted, reply = peer.receive_probe(
            Query(sender=2, target_file=42), 1.0
        )
        assert accepted
        assert isinstance(reply, QueryReply)
        assert reply.num_results == 1
        assert peer.results_served == 1

    def test_no_match_returns_zero_with_pong(self):
        peer = make_peer(1, library=frozenset({42}))
        _, reply = peer.receive_probe(Query(sender=2, target_file=7), 1.0)
        assert reply.num_results == 0
        assert isinstance(reply.pong, Pong)

    def test_queries_counted(self):
        peer = make_peer(1)
        peer.receive_probe(Query(sender=2, target_file=1), 1.0)
        peer.receive_probe(Query(sender=3, target_file=2), 1.0)
        assert peer.queries_received == 2

    def test_unknown_message_type_rejected(self):
        peer = make_peer(1)
        with pytest.raises(TypeError):
            peer.receive_probe("garbage", 1.0)


class TestCapacity:
    def test_refuses_beyond_limit(self):
        peer = make_peer(1, max_probes_per_second=2)
        assert peer.receive_probe(Ping(sender=2), 0.1)[0]
        assert peer.receive_probe(Ping(sender=3), 0.2)[0]
        accepted, response = peer.receive_probe(Ping(sender=4), 0.3)
        assert not accepted
        assert isinstance(response, Refusal)
        assert peer.probes_refused == 1
        assert peer.probes_received == 3

    def test_fresh_second_accepts_again(self):
        peer = make_peer(1, max_probes_per_second=1)
        assert peer.receive_probe(Ping(sender=2), 0.5)[0]
        assert not peer.receive_probe(Ping(sender=3), 0.6)[0]
        assert peer.receive_probe(Ping(sender=4), 1.5)[0]

    def test_unlimited_never_refuses(self):
        peer = make_peer(1, max_probes_per_second=None)
        for i in range(100):
            assert peer.receive_probe(Ping(sender=2), 0.01)[0]


class TestIntroduction:
    def test_prober_introduced_with_probability(self):
        protocol = ProtocolParams(cache_size=50, intro_prob=1.0)
        peer = make_peer(1, protocol=protocol)
        peer.receive_probe(Ping(sender=2, sender_num_files=9), 3.0)
        entry = peer.link_cache.get(2)
        assert entry is not None
        assert entry.num_files == 9
        assert entry.ts == 3.0
        assert entry.num_res == 0

    def test_no_introduction_at_zero_prob(self):
        protocol = ProtocolParams(cache_size=50, intro_prob=0.0)
        peer = make_peer(1, protocol=protocol)
        peer.receive_probe(Ping(sender=2), 1.0)
        assert 2 not in peer.link_cache

    def test_introduction_rate_statistical(self):
        protocol = ProtocolParams(cache_size=10_000, intro_prob=0.1)
        peer = make_peer(1, protocol=protocol)
        for sender in range(2, 2002):
            peer.receive_probe(Ping(sender=sender), 1.0)
        assert 120 <= len(peer.link_cache) <= 280  # ~200 expected

    def test_existing_entry_not_reintroduced(self):
        protocol = ProtocolParams(cache_size=50, intro_prob=1.0)
        peer = make_peer(1, protocol=protocol)
        peer.receive_probe(Ping(sender=2, sender_num_files=9), 3.0)
        peer.receive_probe(Ping(sender=2, sender_num_files=77), 5.0)
        assert peer.link_cache.get(2).num_files == 9


class TestImportPong:
    def test_import_inserts_copies(self):
        peer = make_peer(1)
        shared = make_entry(5, num_files=10)
        pong = Pong(sender=2, entries=(shared,))
        inserted = peer.import_pong_to_link_cache(pong, 1.0)
        assert inserted == 1
        shared.num_files = 999
        assert peer.link_cache.get(5).num_files == 10

    def test_import_honours_reset_num_results(self):
        protocol = ProtocolParams(cache_size=10, reset_num_results=True)
        peer = make_peer(1, protocol=protocol)
        pong = Pong(sender=2, entries=(make_entry(5, num_res=9),))
        peer.import_pong_to_link_cache(pong, 1.0)
        assert peer.link_cache.get(5).num_res == 0

    def test_import_without_reset_keeps_num_res(self):
        peer = make_peer(1)
        pong = Pong(sender=2, entries=(make_entry(5, num_res=9),))
        peer.import_pong_to_link_cache(pong, 1.0)
        assert peer.link_cache.get(5).num_res == 9

    def test_import_skips_own_address(self):
        peer = make_peer(1)
        pong = Pong(sender=2, entries=(make_entry(1),))
        assert peer.import_pong_to_link_cache(pong, 1.0) == 0


class TestInitiatorHelpers:
    def test_choose_ping_target_empty_cache(self):
        assert make_peer(1).choose_ping_target(0.0) is None

    def test_choose_ping_target_uses_policy(self):
        protocol = ProtocolParams(cache_size=10, ping_probe="MFS")
        peer = make_peer(1, protocol=protocol)
        for a, files in ((2, 5), (3, 50), (4, 1)):
            peer.link_cache.insert(
                make_entry(a, num_files=files),
                peer.policies.replacement, 0.0, peer._policy_rng,
            )
        assert peer.choose_ping_target(1.0).address == 3

    def test_ping_and_query_messages(self):
        peer = make_peer(1, num_files=12)
        assert peer.ping_message() == Ping(sender=1, sender_num_files=12)
        query = peer.query_message(8)
        assert query.target_file == 8
        assert query.sender_num_files == 12
